//! Minimal stand-in for the `bytes` crate: a growable byte buffer plus the
//! little-endian `Buf`/`BufMut` accessors the workspace codecs use.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

/// Write-side accessors (little-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor accessors (little-endian). Implemented for `&[u8]`,
/// which is consumed from the front as values are read.
///
/// # Panics
///
/// Like the real crate, accessors panic when fewer bytes remain than the
/// read requires; callers bounds-check with [`Buf::remaining`] / `len()`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads an `i64`, little-endian.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads an `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor.remaining(), 3);
        cursor.advance(1);
        assert_eq!(cursor, b"yz");
    }
}
