//! Minimal stand-in for `rand` 0.8: a deterministic xoshiro256++ `StdRng`,
//! the `Rng`/`SeedableRng` traits (the subset the workspace uses), and
//! `seq::SliceRandom::shuffle`.
//!
//! Seed-stable and reproducible like the real `StdRng`, but the stream
//! differs from upstream rand — seeds reproduce runs within this
//! repository only.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a single uniformly random `u64`.
pub trait Standard: Sized {
    /// Maps one random word onto the type.
    fn from_u64(word: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(word: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_u64(word: u64) -> Self {
        (word >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128) - (lo as i128) + i128::from(inclusive);
                assert!(span > 0, "empty range in gen_range");
                let draw = (rng.next_u64() as i128) % span;
                ((lo as i128) + draw) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let unit = f64::from_u64(rng.next_u64());
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let unit = f32::from_u64(rng.next_u64());
        lo + unit * (hi - lo)
    }
}

/// A range that can be sampled uniformly. The single blanket impl per
/// range shape keeps integer-literal inference working the way real
/// rand's does (`gen_range(0..n)` adopts `n`'s type).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The random-value trait: a source of random words plus derived samplers.
pub trait Rng {
    /// The next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workhorse generator: xoshiro256++ (same state size and quality
    /// class as real `StdRng`, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: u64 = r.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
