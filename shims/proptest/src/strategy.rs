//! Strategies: random-value generators with the combinators the workspace
//! test-suites use.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynGen<V> {
    fn generate_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynGen<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynGen<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut StdRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason);
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Fixed-size vectors of generated elements.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// `&'static str` character-class patterns (`"[a-z0-9_]{1,12}"`): a
/// character class followed by a `{min,max}` repetition, the only regex
/// shape the workspace tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (shim supports \"[class]{{m,n}}\" only)")
        });
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize]).collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn class_pattern_generates_within_alphabet_and_length() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-c0-1_]{2,5}".generate(&mut r);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| "abc01_".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut r = rng();
        for _ in 0..200 {
            let v = crate::prop::collection::vec(0u64..10, 1..4).generate(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let u = Union::new(vec![(0u64..1).boxed(), (100u64..101).boxed()]);
        let mut r = rng();
        let draws: std::collections::HashSet<u64> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert_eq!(draws, [0u64, 100].into_iter().collect());
    }

    #[test]
    fn filter_and_map_compose() {
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(s.generate(&mut r) % 2, 1);
        }
    }
}
