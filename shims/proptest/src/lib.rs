//! Minimal stand-in for `proptest`: random-input property testing with the
//! strategy combinators the workspace test-suites use. No shrinking — a
//! failing case panics with the generated inputs visible via `Debug` in
//! the assertion message.

#![forbid(unsafe_code)]

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Test-runner configuration.
pub mod config {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Deterministic per-test RNG derivation.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the RNG for one property, seeded from its full path so every
    /// test has an independent, reproducible stream.
    pub fn rng_for(test_path: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy::new(element, size)
        }
    }

    /// Boolean strategies.
    pub mod bool {
        /// Uniform `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// The uniform boolean strategy.
        pub const ANY: BoolAny = BoolAny;

        impl crate::strategy::Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
                rand::Rng::gen(rng)
            }
        }
    }
}

/// `any::<T>()` — the canonical strategy for a primitive type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Primitives with a canonical full-range strategy.
    pub trait ArbPrim: Sized {
        /// Draws a full-range value.
        fn arb(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbPrim for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arb(rng: &mut StdRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbPrim for bool {
        fn arb(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbPrim for f64 {
        fn arb(rng: &mut StdRng) -> Self {
            // Full bit coverage (infinities and NaNs included), matching
            // real proptest's spirit; filter NaN at the use site if needed.
            f64::from_bits(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    /// The canonical full-range strategy for `A`.
    pub fn any<A: ArbPrim>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: ArbPrim> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arb(rng)
        }
    }
}

/// The standard glob import for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Each `fn name(input in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::config::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
