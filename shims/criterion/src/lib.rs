//! Minimal stand-in for `criterion`: runs each benchmark closure for a
//! fixed wall-clock budget and prints mean time per iteration. No
//! statistics, plots or comparisons — enough to execute `cargo bench`
//! targets and eyeball relative cost.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up round, result deliberately kept out of the measurement.
        let _ = black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            let _ = black_box(f());
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, label: &str) {
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters_done.max(1));
        println!("bench {label:<48} {per_iter:>12} ns/iter ({} iters)", self.iters_done);
    }
}

/// Opaque-to-the-optimizer identity (best-effort without intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: self.budget };
        f(&mut b);
        b.report(name);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Hint accepted for API compatibility; the shim's fixed time budget
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&label, f);
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&label, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
