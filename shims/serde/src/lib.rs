//! No-op stand-in for `serde`'s derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its vocabulary types
//! for forward compatibility but never serialises through serde (all wire
//! and WAL codecs are hand-rolled). These derives therefore expand to
//! nothing, which keeps the annotations compiling without the real crate.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
