//! Minimal stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning, `Result`-free guard API, over `std::sync` primitives.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `Result`-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
