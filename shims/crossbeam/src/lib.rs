//! Minimal stand-in for `crossbeam`: just the `channel` module surface the
//! RPC fabric uses, implemented over `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer channels (bounded and unbounded).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// Sending half of a channel. Clonable; all clones feed one receiver.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: Inner<T>,
    }

    #[derive(Debug)]
    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
                Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Fails when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Inner::Unbounded(tx) => tx.send(msg),
                Inner::Bounded(tx) => tx.send(msg),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails when every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// Fails on timeout or when every sender has been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: Inner::Unbounded(tx) }, Receiver { inner: rx })
    }

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: Inner::Bounded(tx) }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_round_trip_across_threads() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn bounded_reply_channel() {
        let (tx, rx) = channel::bounded(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(1)).unwrap(), "reply");
    }

    #[test]
    fn dropped_receiver_errors_send() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }
}
