//! Quickstart: single-node Propeller — create indices, feed files, capture
//! a causality trace (the paper's Figure 4 walkthrough) and search.
//!
//! Run with: `cargo run --example quickstart`

use propeller::types::{AttrName, Error, FileId, InodeAttrs, OpenMode, ProcessId, Timestamp};
use propeller::{
    FileRecord, IndexSpec, Projection, Propeller, PropellerConfig, SearchRequest, SortKey,
};

fn main() -> Result<(), Error> {
    let mut service = Propeller::new(PropellerConfig::default());

    // A user-defined index (paper §IV "Workflow": users create named
    // indices with globally unique names).
    service.create_index(IndexSpec::btree("owner_idx", AttrName::Uid))?;

    // Index a small namespace inline.
    println!("indexing 1000 files inline...");
    for i in 0..1000u64 {
        service.index_file(
            FileRecord::new(
                FileId::new(i),
                InodeAttrs::builder()
                    .size(i * 1024 * 64) // 0..64 MB
                    .mtime(Timestamp::from_secs(i))
                    .uid(500 + (i % 3) as u32)
                    .build(),
            )
            .with_keyword(if i % 100 == 0 { "report" } else { "data" }),
        )?;
    }

    // Searches are consistent with every acknowledged update.
    let big = service.search_text("size>16m")?;
    println!("files > 16 MB: {}", big.len());
    let mine = service.search_text("uid=501 & size>1m")?;
    println!("uid 501 and > 1 MB: {}", mine.len());
    let reports = service.search_text("keyword:report")?;
    println!("keyword 'report': {}", reports.len());

    // The canonical request API: the 5 largest files with their sizes
    // projected back, computed with a bounded per-ACG top-k heap.
    let request = SearchRequest::parse("size>16m", service.now())?
        .with_limit(5)
        .sorted_by(SortKey::Descending(AttrName::Size))
        .with_projection(Projection::Attrs(vec![AttrName::Size]));
    let top = service.search_with(&request)?;
    println!("top-5 largest (of {} candidates scanned):", top.stats.candidates_scanned);
    for hit in &top.hits {
        println!("  {} {:?}", hit.file, hit.attrs);
    }
    if top.cursor.is_some() {
        println!("  ...more pages available via the continuation cursor");
    }

    // The Figure 4 walkthrough: a program reads i0..i2 and writes o0..o2;
    // the captured causality becomes ACG edges.
    let pid = ProcessId::new(99);
    let (i0, i1, i2) = (FileId::new(1), FileId::new(2), FileId::new(3));
    let (o0, o1, o2) = (FileId::new(500), FileId::new(501), FileId::new(502));
    for f in [i0, i1, i2] {
        service.observe_open(pid, f, OpenMode::Read);
    }
    for f in [o0, o1, o2] {
        service.observe_open(pid, f, OpenMode::Write);
    }
    service.end_process(pid);
    let edges = service.flush_acg()?;
    println!("causality edges flushed to index nodes: {edges}");

    // A query-directory request, the namespace-facing interface.
    let via_dir = service.search_dir("/data/?size>32m")?;
    println!("via query directory /data/?size>32m: {}", via_dir.len());

    println!("service stats: {:?}", service.stats());
    Ok(())
}
