//! Real-time consistency under churn: Propeller vs a crawling engine on a
//! live namespace (the scenario of the paper's Figures 1 and 11).
//!
//! A background "copier" keeps adding files while a foreground loop
//! queries both systems. Propeller's recall never leaves 100%; the
//! crawler's recall depends on how far its queue lags.
//!
//! Run with: `cargo run --release --example dynamic_namespace`

use propeller::baselines::{recall, SpotlightConfig, SpotlightEngine};
use propeller::types::{Error, FileId, InodeAttrs, Timestamp};
use propeller::workloads::FpsCopier;
use propeller::{FileRecord, Propeller, PropellerConfig, SearchRequest};

fn main() -> Result<(), Error> {
    let mut service = Propeller::new(PropellerConfig::default());
    let mut crawler = SpotlightEngine::new(SpotlightConfig {
        supported_fraction: 1.0,
        crawl_rate: 3.0,
        reindex_backlog: usize::MAX,
        ..Default::default()
    });
    let request = SearchRequest::parse("size>16m", Timestamp::EPOCH)?;

    // Import a base snapshot into both systems.
    let mut truth: Vec<FileId> = Vec::new();
    for i in 0..10_000u64 {
        let attrs = InodeAttrs::builder().size((i % 64) << 20).build();
        let rec = FileRecord::new(FileId::new(i), attrs);
        if attrs.size > 16 << 20 {
            truth.push(rec.file);
        }
        service.index_file(rec.clone())?;
        crawler.notify(rec, Timestamp::EPOCH);
    }
    let t0 = Timestamp::from_secs(10_000);
    crawler.pump(t0); // crawler fully settles on the snapshot

    // Live churn at 8 files/second for five virtual minutes.
    println!("time   propeller-recall   crawler-recall   crawler-backlog");
    let copier = FpsCopier::new(8, t0, 7);
    let events: Vec<_> = copier.take_for_secs(300).collect();
    let mut cursor = 0;
    for sec in (0..=300u64).step_by(30) {
        let now = t0 + propeller::types::Duration::from_secs(sec);
        while cursor < events.len() && events[cursor].0 <= now {
            let (t, _, mut attrs) = events[cursor].clone();
            cursor += 1;
            attrs.size = attrs.size.max(17 << 20);
            let id = FileId::new(1_000_000 + cursor as u64);
            truth.push(id);
            service.index_file(FileRecord::new(id, attrs))?; // inline
            crawler.notify(FileRecord::new(id, attrs), t); // async
        }
        let pp = service.search_with(&request)?.file_ids();
        let sl = crawler.search_with(&request, now).file_ids();
        println!(
            "{sec:>4}s        {:>6.1}%          {:>6.1}%            {:>5}",
            recall(&pp, &truth) * 100.0,
            recall(&sl, &truth) * 100.0,
            crawler.backlog(),
        );
    }
    println!("\npropeller recall is 100% at every sample: updates are indexed inline");
    Ok(())
}
