//! Distributed Propeller: an 8-Index-Node cluster serving parallel
//! fan-out searches from multiple client threads, with background
//! maintenance splitting oversized ACGs (paper §IV, Figure 6).
//!
//! Run with: `cargo run --release --example cluster_search`

use propeller::types::{AttrName, Error, FileId, InodeAttrs, Timestamp};
use propeller::{Cluster, ClusterConfig, FanOutPolicy, FileRecord, SearchRequest, SortKey};

fn main() -> Result<(), Error> {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 8,
        group_capacity: 15_000,
        split_threshold: 10_000,
        ..Default::default()
    });
    println!("cluster up: 1 master + 8 index nodes");

    // Four application clients ingest their datasets in parallel; each
    // client's batches fan out to the owning index nodes concurrently.
    std::thread::scope(|s| {
        for app in 0..4u64 {
            let mut client = cluster.client();
            s.spawn(move || {
                let base = app * 100_000;
                let records: Vec<FileRecord> = (0..25_000)
                    .map(|i| {
                        FileRecord::new(
                            FileId::new(base + i),
                            InodeAttrs::builder()
                                .size((i % 100) << 20)
                                .mtime(Timestamp::from_secs(i))
                                .uid(app as u32)
                                .build(),
                        )
                    })
                    .collect();
                for chunk in records.chunks(1_000) {
                    client.index_files(chunk.to_vec()).expect("index batch");
                }
                println!("client {app}: 25k files indexed");
            });
        }
    });

    // Background maintenance: heartbeats, timed commits, ACG splits.
    let splits = cluster.run_maintenance()?;
    println!("maintenance round: {splits} ACG splits performed");

    // Parallel fan-out search from a fresh client.
    let client = cluster.client();
    let t0 = std::time::Instant::now();
    let big = client.search_text("size>90m")?;
    println!(
        "cluster-wide search 'size>90m': {} hits in {:.2} ms",
        big.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t0 = std::time::Instant::now();
    let owned = client.search_text("uid=2 & size>50m")?;
    println!(
        "cluster-wide search 'uid=2 & size>50m': {} hits in {:.2} ms",
        owned.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // The canonical request API: per-node top-k fan-out, k-way merged,
    // tolerating node failures down to a 4-node quorum.
    let request = SearchRequest::parse("size>90m", Timestamp::EPOCH)?
        .with_limit(10)
        .sorted_by(SortKey::Descending(AttrName::Size))
        .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 4 });
    let resp = client.search_with(&request)?;
    println!(
        "top-10 'size>90m': {} hits, complete={}, {} ACGs consulted, {} candidates scanned",
        resp.hits.len(),
        resp.complete,
        resp.stats.acgs_consulted,
        resp.stats.candidates_scanned,
    );

    // Consistency across the cluster: a just-indexed file is immediately
    // visible to any client.
    let mut writer = cluster.client();
    writer.index_files(vec![FileRecord::new(
        FileId::new(999_999),
        InodeAttrs::builder().size(1 << 40).build(),
    )])?;
    let reader = cluster.client();
    let hit = reader.search_text("size>=1t")?;
    assert_eq!(hit, vec![FileId::new(999_999)]);
    println!("fresh write visible cluster-wide: ok");

    cluster.shutdown();
    println!("cluster shut down cleanly");
    Ok(())
}
