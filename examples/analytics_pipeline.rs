//! The paper's motivating workload (§II): a drug-discovery analytics
//! pipeline (Molegro Virtual Docker-style) that stores one protein
//! structure per file and uses the file-search service to *filter* its
//! input set between computation rounds, instead of re-scanning millions
//! of files.
//!
//! Run with: `cargo run --release --example analytics_pipeline`

use propeller::types::{AttrName, Error, FileId, InodeAttrs, Timestamp, Value};
use propeller::{
    FileRecord, IndexSpec, Projection, Propeller, PropellerConfig, SearchRequest, SortKey,
};

const PROTEINS: u64 = 50_000;

fn main() -> Result<(), Error> {
    let mut service = Propeller::new(PropellerConfig::default());

    // Custom attributes: binding energy and residue count per structure —
    // "hundreds of different attributes from each protein" (§II).
    service.create_index(IndexSpec::btree("energy_idx", AttrName::custom("energy")))?;
    service.create_index(IndexSpec::btree("residues_idx", AttrName::custom("residues")))?;

    println!("ingesting {PROTEINS} protein structure files...");
    for i in 0..PROTEINS {
        // Deterministic pseudo-chemistry.
        let energy = -((i * 37 % 1000) as f64) / 100.0; // 0 .. -9.99
        let residues = 50 + (i * 13 % 450);
        service.index_file(
            FileRecord::new(
                FileId::new(i),
                InodeAttrs::builder()
                    .size(200 * residues)
                    .mtime(Timestamp::from_secs(i / 10))
                    .build(),
            )
            .with_custom("energy", Value::F64(energy))
            .with_custom("residues", Value::U64(residues)),
        )?;
    }

    // Round 1: coarse docking pass — keep strong binders.
    let round1 = service.search_text("energy<-8.0")?;
    println!("round 1 candidates (energy < -8.0): {}", round1.len());

    // The computation refines some structures: re-dock and *update* their
    // energies inline; the next query must see the refinement immediately.
    println!("refining {} structures...", round1.len().min(500));
    for &f in round1.iter().take(500) {
        let refined = -9.99;
        service.index_file(
            FileRecord::new(f, InodeAttrs::builder().size(4096).build())
                .with_custom("energy", Value::F64(refined))
                .with_custom("residues", Value::U64(100)),
        )?;
    }

    // Round 2: tighter filter over refined data — consistent by
    // construction, no crawl delay to wait out.
    let round2 = service.search_text("energy<-9.9 & residues<=100")?;
    println!("round 2 candidates (energy < -9.9, small): {}", round2.len());
    assert!(round2.len() >= round1.len().min(500));

    // Final selection joins a metadata constraint.
    let fresh = service.search_text("energy<-9.9 & mtime>100")?;
    println!("fresh final candidates: {}", fresh.len());

    // Shortlist via the request API: the 10 most recently re-docked
    // strong binders, energies projected back — no client-side re-fetch,
    // no full result materialization anywhere in the pipeline.
    let request = SearchRequest::parse("energy<-9.9", service.now())?
        .with_limit(10)
        .sorted_by(SortKey::Descending(AttrName::Mtime))
        .with_projection(Projection::Attrs(vec![AttrName::custom("energy")]));
    let shortlist = service.search_with(&request)?;
    println!("shortlist ({} candidates scanned):", shortlist.stats.candidates_scanned);
    for hit in shortlist.hits.iter().take(3) {
        println!("  {} {:?}", hit.file, hit.attrs);
    }

    println!("pipeline complete; stats: {:?}", service.stats());
    Ok(())
}
