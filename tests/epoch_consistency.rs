//! Epoch-pinned read consistency under concurrent ingest.
//!
//! The Index Node commits `IndexBatch` ops on its actor thread while
//! searches execute on the worker pool against pinned epochs. These
//! properties pin down what that concurrency is allowed to look like:
//!
//! * every search answer equals a brute-force oracle evaluated at *some*
//!   published epoch — i.e. after a whole prefix of the committed batches,
//!   never a half-applied batch or a mix of epochs;
//! * a paginated session serves **all** of its pages from the single epoch
//!   pinned at open time, no matter how many commits land between pulls.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Sender};

use propeller::cluster::{IndexNode, IndexNodeConfig, Request, Response};
use propeller::index::IndexOp;
use propeller::query::SearchRequest;
use propeller::types::{AcgId, FileId, InodeAttrs, NodeId, Timestamp};
use propeller::FileRecord;
use proptest::prelude::*;

/// One generated WAL op: upsert `file` at `size`, or remove it.
type Op = (u64, u64, bool);

type Envelope = (Request, Sender<Response>);

/// Spawns an actor thread owning `node`, mirroring the cluster's deferred
/// actor loop: batches commit on the actor, searches reply from pool jobs.
fn spawn_actor(node: IndexNode) -> (Sender<Envelope>, std::thread::JoinHandle<()>) {
    let (tx, rx) = channel::<Envelope>();
    let handle = std::thread::spawn(move || {
        let mut node = node;
        while let Ok((req, reply)) = rx.recv() {
            if matches!(req, Request::Shutdown) {
                let _ = reply.send(Response::Ok);
                break;
            }
            node.handle_deferred(req, move |resp| {
                let _ = reply.send(resp);
            });
        }
    });
    (tx, handle)
}

fn call(tx: &Sender<Envelope>, req: Request) -> Response {
    let (rtx, rrx) = channel();
    tx.send((req, rtx)).expect("actor alive");
    rrx.recv().expect("reply delivered")
}

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

/// The brute-force oracle: live `file → size` maps after each whole prefix
/// of `batches` (index 0 = empty node), reduced to the sorted hit set for
/// `size > threshold`.
fn prefix_hit_sets(batches: &[Vec<Op>], threshold: u64) -> Vec<Vec<u64>> {
    let mut state: BTreeMap<u64, u64> = BTreeMap::new();
    let mut sets = Vec::with_capacity(batches.len() + 1);
    let hits = |state: &BTreeMap<u64, u64>| -> Vec<u64> {
        state.iter().filter(|(_, &size)| size > threshold).map(|(&f, _)| f).collect()
    };
    sets.push(hits(&state));
    for batch in batches {
        for &(file, size, remove) in batch {
            if remove {
                state.remove(&file);
            } else {
                state.insert(file, size);
            }
        }
        sets.push(hits(&state));
    }
    sets
}

fn hit_files(hits: &[propeller::query::Hit]) -> Vec<u64> {
    let mut files: Vec<u64> = hits.iter().map(|h| h.file.raw()).collect();
    files.sort_unstable();
    files
}

fn to_ops(batch: &[Op]) -> Vec<IndexOp> {
    batch
        .iter()
        .map(|&(file, size, remove)| {
            if remove {
                IndexOp::Remove(FileId::new(file))
            } else {
                IndexOp::Upsert(record(file, size))
            }
        })
        .collect()
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(
        prop::collection::vec((0u64..48, 1u64..1_000_000, prop::bool::ANY), 1..8),
        1..10,
    )
}

/// Stress: a commit hammer (batches + lazy-commit ticks) races several
/// search hammers — one-shot searches and paginated sessions — against one
/// node for a fixed bout. No request may error, every search must pin all
/// its epochs, every session's concatenated pages must be duplicate-free
/// (a torn cross-epoch read would re-ship or drop hits), and the node's
/// counters must account for everything afterwards.
#[test]
fn commit_and_search_hammers_race_without_torn_reads() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const ACGS: u64 = 8;
    const PER_ACG: u64 = 250;
    const SEARCHERS: u64 = 3;
    const ITERS: u64 = 40;

    let mut node = IndexNode::new(NodeId::new(1), IndexNodeConfig::default());
    for acg in 0..ACGS {
        node.handle(Request::IndexBatch {
            acg: AcgId::new(acg + 1),
            ops: (0..PER_ACG)
                .map(|i| {
                    let id = acg * PER_ACG + i;
                    IndexOp::Upsert(record(id, 1 + id))
                })
                .collect(),
            now: Timestamp::from_secs(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
    }
    let (tx, actor) = spawn_actor(node);
    let all_acgs: Vec<AcgId> = (1..=ACGS).map(AcgId::new).collect();
    let request =
        SearchRequest::parse("size>0", Timestamp::from_secs(1)).unwrap().with_limit(5_000);

    // Commit hammer: churn upserts and removes through one group per
    // round, then tick past the 5 s lazy-commit timeout so the round's
    // batch publishes a fresh epoch.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let acg = round % ACGS;
                let ops: Vec<IndexOp> = (0..16)
                    .map(|i| {
                        let id = acg * PER_ACG + (round + i) % PER_ACG;
                        if (round + i).is_multiple_of(5) {
                            IndexOp::Remove(FileId::new(id))
                        } else {
                            IndexOp::Upsert(record(id, 1 + id + round))
                        }
                    })
                    .collect();
                let now = Timestamp::from_secs(100 + round * 10);
                match call(
                    &tx,
                    Request::IndexBatch {
                        acg: AcgId::new(acg + 1),
                        ops,
                        now,
                        ctx: propeller_obs::TraceContext::NONE,
                    },
                ) {
                    Response::BatchLogged { .. } => {}
                    other => panic!("writer: {other:?}"),
                }
                call(&tx, Request::Tick { now: Timestamp::from_secs(100 + round * 10 + 6) });
                round += 1;
            }
        })
    };

    let searchers: Vec<_> = (0..SEARCHERS)
        .map(|s| {
            let tx = tx.clone();
            let request = request.clone();
            let all_acgs = all_acgs.clone();
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let now = Timestamp::from_secs(10_000 + s * 1_000 + i);
                    if i.is_multiple_of(4) {
                        // Paginated session: pull to exhaustion while the
                        // hammer keeps committing between pulls.
                        let (mut session, mut pages, mut exhausted) = match call(
                            &tx,
                            Request::OpenSearch {
                                acgs: all_acgs.clone(),
                                request: request.clone(),
                                client: s,
                                page: 64,
                                now,
                                ctx: propeller_obs::TraceContext::NONE,
                            },
                        ) {
                            Response::SearchPage { session, hits, exhausted, .. } => {
                                (session, hits, exhausted)
                            }
                            other => panic!("open: {other:?}"),
                        };
                        while !exhausted {
                            match call(
                                &tx,
                                Request::PullHits {
                                    session,
                                    page: 64,
                                    ctx: propeller_obs::TraceContext::NONE,
                                },
                            ) {
                                Response::SearchPage {
                                    session: sid,
                                    hits,
                                    exhausted: done,
                                    ..
                                } => {
                                    pages.extend(hits);
                                    session = sid;
                                    exhausted = done;
                                }
                                other => panic!("pull: {other:?}"),
                            }
                        }
                        let unique: std::collections::HashSet<u64> =
                            pages.iter().map(|h| h.file.raw()).collect();
                        assert_eq!(
                            unique.len(),
                            pages.len(),
                            "a session shipped a duplicate hit — pages mixed epochs"
                        );
                        assert!(pages.len() <= (ACGS * PER_ACG) as usize);
                    } else {
                        match call(
                            &tx,
                            Request::Search {
                                acgs: all_acgs.clone(),
                                request: request.clone(),
                                now,
                                ctx: propeller_obs::TraceContext::NONE,
                            },
                        ) {
                            Response::SearchHits { hits, stats } => {
                                assert_eq!(stats.epoch_pins, ACGS as usize);
                                assert!(hits.len() <= (ACGS * PER_ACG) as usize);
                            }
                            other => panic!("search: {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();

    for s in searchers {
        s.join().expect("searcher");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");

    match call(&tx, Request::NodeStats) {
        Response::NodeStatsReport { searches_served, open_sessions, commits_published, .. } => {
            assert_eq!(searches_served, SEARCHERS * ITERS, "every hammer request was served");
            assert_eq!(open_sessions, 0, "every session drained to exhaustion and closed");
            assert!(commits_published > 0, "the commit hammer must have published epochs");
        }
        other => panic!("{other:?}"),
    }
    call(&tx, Request::Shutdown);
    actor.join().expect("actor");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-shot searches racing a committer always observe a whole prefix
    /// of the batches — some published epoch, never a torn one.
    #[test]
    fn concurrent_searches_observe_whole_epochs(
        batches in arb_batches(),
        threshold in 0u64..1_000_000,
    ) {
        let acg = AcgId::new(1);
        let node = IndexNode::new(NodeId::new(1), IndexNodeConfig::default());
        let (tx, actor) = spawn_actor(node);
        let oracle = prefix_hit_sets(&batches, threshold);
        let request = SearchRequest::parse(&format!("size>{threshold}"), Timestamp::from_secs(1))
            .unwrap()
            .with_limit(500);

        // Writer thread: commit batches one by one through the actor.
        let writer = {
            let tx = tx.clone();
            let batches = batches.clone();
            std::thread::spawn(move || {
                for (i, batch) in batches.iter().enumerate() {
                    let resp = call(&tx, Request::IndexBatch {
                        acg,
                        ops: to_ops(batch),
                        now: Timestamp::from_secs(10 + i as u64),
                    ctx: propeller_obs::TraceContext::NONE, });
                    assert!(matches!(resp, Response::BatchLogged { .. }), "{resp:?}");
                    std::thread::yield_now();
                }
            })
        };

        // Searcher (this thread): race one-shot searches against ingest.
        for i in 0..5u64 {
            match call(&tx, Request::Search {
                acgs: vec![acg],
                request: request.clone(),
                now: Timestamp::from_secs(100 + i),
            ctx: propeller_obs::TraceContext::NONE, }) {
                Response::SearchHits { hits, .. } => {
                    let got = hit_files(&hits);
                    prop_assert!(
                        oracle.contains(&got),
                        "search answer matches no whole-prefix epoch: {got:?}"
                    );
                }
                other => panic!("{other:?}"),
            }
        }

        writer.join().unwrap();
        // After the writer drains, a search must see the *full* state.
        match call(&tx, Request::Search {
            acgs: vec![acg],
            request: request.clone(),
            now: Timestamp::from_secs(200),
        ctx: propeller_obs::TraceContext::NONE, }) {
            Response::SearchHits { hits, .. } => {
                prop_assert_eq!(&hit_files(&hits), oracle.last().unwrap());
            }
            other => panic!("{other:?}"),
        }
        call(&tx, Request::Shutdown);
        actor.join().unwrap();
    }

    /// A paginated session opened mid-ingest serves every page from the
    /// one epoch pinned at open time: the concatenation of its pages is a
    /// whole-prefix answer even though commits land between pulls.
    #[test]
    fn session_pages_all_come_from_the_pinned_epoch(
        before in arb_batches(),
        after in arb_batches(),
        threshold in 0u64..1_000_000,
    ) {
        let acg = AcgId::new(1);
        let node = IndexNode::new(NodeId::new(1), IndexNodeConfig::default());
        let (tx, actor) = spawn_actor(node);
        let request = SearchRequest::parse(&format!("size>{threshold}"), Timestamp::from_secs(1))
            .unwrap()
            .with_limit(500);

        // Apply the pre-open batches synchronously: the session's pinned
        // epoch is exactly their cumulative state.
        for (i, batch) in before.iter().enumerate() {
            call(&tx, Request::IndexBatch {
                acg,
                ops: to_ops(batch),
                now: Timestamp::from_secs(10 + i as u64),
            ctx: propeller_obs::TraceContext::NONE, });
        }
        let pinned = prefix_hit_sets(&before, threshold).pop().unwrap();

        let (mut session, mut pages, mut exhausted) = match call(&tx, Request::OpenSearch {
            acgs: vec![acg],
            request: request.clone(),
            client: 7,
            page: 3,
            now: Timestamp::from_secs(100),
        ctx: propeller_obs::TraceContext::NONE, }) {
            Response::SearchPage { session, hits, exhausted, .. } => (session, hits, exhausted),
            other => panic!("{other:?}"),
        };

        // Hammer commits between every pull: none of them may leak into
        // the open session.
        let mut i = 0;
        while !exhausted {
            let batch = &after[i % after.len()];
            call(&tx, Request::IndexBatch {
                acg,
                ops: to_ops(batch),
                now: Timestamp::from_secs(200 + i as u64),
            ctx: propeller_obs::TraceContext::NONE, });
            match call(&tx, Request::PullHits { session, page: 3 , ctx: propeller_obs::TraceContext::NONE }) {
                Response::SearchPage { session: s, hits, exhausted: done, .. } => {
                    pages.extend(hits);
                    session = s;
                    exhausted = done;
                }
                other => panic!("{other:?}"),
            }
            i += 1;
        }
        prop_assert_eq!(
            hit_files(&pages),
            pinned,
            "session pages must all come from the epoch pinned at open"
        );
        call(&tx, Request::Shutdown);
        actor.join().unwrap();
    }
}
