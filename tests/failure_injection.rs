//! Failure-injection tests for the cluster: dead Index Nodes, Master
//! liveness bookkeeping, graceful degradation rules, and — with
//! replication on — search correctness under randomized kill/slow/revive
//! schedules, mid-pagination replica failover and hedged tail tolerance.

use std::collections::{HashMap, HashSet};

use propeller::cluster::{Cluster, ClusterConfig, Request, Response};
use propeller::query::{run_local_search, SearchRequest, SortKey};
use propeller::types::{AcgId, AttrName, Duration, Error, FileId, InodeAttrs, NodeId, Timestamp};
use propeller::{FanOutPolicy, FileRecord};
use proptest::prelude::*;

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

/// The Master's current placement map: ACG → ordered replica set.
fn placements(cluster: &Cluster) -> Vec<(AcgId, Vec<NodeId>)> {
    match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
        Ok(Response::Located(rows)) => rows,
        other => panic!("{other:?}"),
    }
}

#[test]
fn dead_index_node_surfaces_as_node_unavailable() {
    let cluster = Cluster::start(ClusterConfig { index_nodes: 2, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..50).map(|i| record(i, 1 << 20)).collect()).unwrap();

    // Kill one index node's actor and remove it from the fabric.
    let victim = cluster.index_node_ids()[0];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Searches that fan out to the dead node report unavailability rather
    // than silently returning partial results (the consistency-first rule).
    let err = client.search_text("size>0");
    assert!(matches!(err, Err(Error::NodeUnavailable(n)) if n == victim), "{err:?}");
    cluster.shutdown();
}

#[test]
fn surviving_nodes_keep_serving_their_acgs() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 2, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..40).map(|i| record(i, 1 << 20)).collect()).unwrap();

    let victim = cluster.index_node_ids()[1];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Direct requests to the survivor still work.
    let survivor = cluster.index_node_ids()[0];
    let resp =
        cluster.rpc().call(survivor, Request::Tick { now: Timestamp::from_secs(1) }).unwrap();
    assert!(matches!(resp, Response::Status { .. }));
    cluster.shutdown();
}

#[test]
fn master_heartbeat_tracking_flags_stale_nodes() {
    use propeller::cluster::{MasterConfig, MasterNode};
    let nodes: Vec<NodeId> = (1..=3).map(NodeId::new).collect();
    let mut master = MasterNode::new(nodes.clone(), MasterConfig::default());
    for (i, &n) in nodes.iter().enumerate() {
        master.handle(Request::Heartbeat {
            node: n,
            acgs: vec![],
            load: 0,
            now: Timestamp::from_secs(10 * (i as u64 + 1)),
        });
    }
    let now = Timestamp::from_secs(40);
    let timeout = Duration::from_secs(15);
    let status = master.node_status();
    assert!(!status[&NodeId::new(1)].alive(now, timeout), "heartbeat at t=10");
    assert!(status[&NodeId::new(3)].alive(now, timeout), "heartbeat at t=30");
}

#[test]
fn acg_flush_failures_are_swallowed_but_indexing_failures_are_not() {
    let cluster = Cluster::start(ClusterConfig { index_nodes: 1, ..Default::default() });
    let mut client = cluster.client();
    client.index_files(vec![record(1, 10), record(2, 10)]).unwrap();

    // Capture causality, then kill the only index node.
    let pid = propeller::types::ProcessId::new(1);
    client.observe_open(pid, FileId::new(1), propeller::types::OpenMode::Read);
    client.observe_open(pid, FileId::new(2), propeller::types::OpenMode::Write);
    client.end_process(pid);
    let victim = cluster.index_node_ids()[0];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // ACG flush: weakly consistent — errors swallowed, edges dropped.
    let flushed = client.flush_acg().unwrap();
    assert_eq!(flushed, 1, "delta counted even though delivery failed");

    // Indexing: strongly consistent — failure must surface.
    assert!(client.index_files(vec![record(3, 10)]).is_err());
    cluster.shutdown();
}

#[test]
fn cluster_modeled_mode_accrues_network_time_per_operation() {
    let sim = propeller::sim::SimClock::new();
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 4,
        sim_clock: Some(sim.clone()),
        charge_network: true,
        ..Default::default()
    });
    let mut client = cluster.client();
    let t0 = sim.now();
    client.index_files((0..100).map(|i| record(i, 1)).collect()).unwrap();
    let after_index = sim.now();
    assert!(after_index > t0);
    client.search_text("size>=0").unwrap();
    assert!(sim.now() > after_index);
    cluster.shutdown();
}

#[test]
fn stale_route_after_split_is_invalidated_and_retried() {
    // One oversized ACG on a 2-node cluster: maintenance splits it and
    // migrates half the files to the other node. A client that indexed
    // before the split still caches the old (ACG, node) routes.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 1_000,
        split_threshold: 50,
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..120).map(|i| record(i, 1 << 20)).collect()).unwrap();
    let splits = cluster.run_maintenance().unwrap();
    assert!(splits >= 1, "the oversized ACG must split");

    // Re-index every file with a new size through the stale cache. For the
    // migrated half the old owner answers "route moved"; the client must
    // drop those cache entries, re-resolve at the Master and retry — the
    // whole batch succeeds without surfacing an error.
    client.index_files((0..120).map(|i| record(i, 2 << 20)).collect()).unwrap();

    // Every update landed exactly once, in the group that owns the file
    // now: no stale copies with the old size, no duplicates, no losses.
    assert!(client.search_text("size=1m").unwrap().is_empty(), "no stale copies");
    let hits = client.search_text("size=2m").unwrap();
    assert_eq!(hits.len(), 120, "all updates visible exactly once");
    cluster.shutdown();
}

#[test]
fn partial_index_broadcast_rolls_back_and_reports_missed_nodes() {
    use propeller::IndexSpec;
    let cluster = Cluster::start(ClusterConfig { index_nodes: 3, ..Default::default() });
    let client = cluster.client();

    // Kill one node, then try to create a cluster-wide index.
    let victim = cluster.index_node_ids()[2];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    let spec = IndexSpec::btree("uid_idx", propeller::types::AttrName::Uid);
    let err = client.create_index(spec.clone());
    match err {
        Err(Error::PartialIndexBroadcast { index, missed }) => {
            assert_eq!(index, "uid_idx");
            assert_eq!(missed, vec![victim]);
        }
        other => panic!("expected PartialIndexBroadcast, got {other:?}"),
    }

    // The rollback unregistered the name at the Master: once the cluster
    // is healthy again (here: minus the dead node), the same name works.
    let resp = cluster.rpc().call(cluster.master_id(), Request::CreateIndex { spec }).unwrap();
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    cluster.shutdown();
}

/// One step of a randomized failure schedule: `node` indexes into the
/// cluster's Index Node list.
#[derive(Debug, Clone, Copy)]
enum FailureEvent {
    Kill { node: usize },
    Revive { node: usize },
    Slow { node: usize, millis: u64 },
}

fn arb_schedule(nodes: usize) -> impl Strategy<Value = Vec<FailureEvent>> {
    prop::collection::vec(
        prop_oneof![
            (0..nodes).prop_map(|node| FailureEvent::Kill { node }),
            (0..nodes).prop_map(|node| FailureEvent::Revive { node }),
            (0..nodes, 1u64..3).prop_map(|(node, millis)| FailureEvent::Slow { node, millis }),
        ],
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The replicated-search contract under arbitrary kill/slow/revive
    /// schedules at R ∈ {1, 2, 3}: the search answers exactly what the
    /// surviving replicas hold (oracle: brute force over the files whose
    /// serving replica is alive and caught up), and the response is
    /// `incomplete` **only** when every replica of some ACG is down —
    /// naming those ACGs, not nodes.
    #[test]
    fn replicated_search_matches_brute_force_under_failure_schedules(
        replication in 1usize..4,
        schedule in arb_schedule(4),
        limit in prop_oneof![Just(None), (5usize..40).prop_map(Some)],
    ) {
        let mut cluster = Cluster::start(ClusterConfig {
            index_nodes: 4,
            group_capacity: 10,
            replication,
            ..Default::default()
        });
        let mut client = cluster.client();
        let records: Vec<FileRecord> =
            (0..80u64).map(|i| record(i, (i + 1) << 20)).collect();
        client.index_files(records.clone()).unwrap();

        // Ground-truth replica model. `fresh[acg]` = replicas that hold
        // the ACG's data (all of them, right after indexing); a kill
        // drops the node's copies, a revive + catch-up restores them iff
        // a fresh live peer exists to sync from.
        let placed = placements(&cluster);
        let file_acg: HashMap<FileId, AcgId> = {
            let files: Vec<FileId> = records.iter().map(|r| r.file).collect();
            let req = Request::ResolveFiles { files, hints_since: u64::MAX , ctx: propeller_obs::TraceContext::NONE };
            match cluster.rpc().call(cluster.master_id(), req) {
                Ok(Response::Resolved { rows, .. }) => {
                    rows.into_iter().map(|(f, a, _)| (f, a)).collect()
                }
                other => panic!("{other:?}"),
            }
        };
        let ids: Vec<NodeId> = cluster.index_node_ids().to_vec();
        let mut alive: Vec<bool> = vec![true; ids.len()];
        let mut fresh: HashMap<AcgId, HashSet<NodeId>> = placed
            .iter()
            .map(|(acg, replicas)| (*acg, replicas.iter().copied().collect()))
            .collect();

        for event in &schedule {
            match *event {
                FailureEvent::Kill { node } => {
                    if alive[node] {
                        alive[node] = false;
                        cluster.rpc().deregister(ids[node]);
                        for set in fresh.values_mut() {
                            set.remove(&ids[node]);
                        }
                    }
                }
                FailureEvent::Revive { node } => {
                    if !alive[node] {
                        alive[node] = true;
                        cluster.revive_index_node(ids[node]);
                        let _ = cluster.catch_up_node(ids[node]);
                        for (acg, replicas) in &placed {
                            let has_fresh_live_peer = fresh[acg]
                                .iter()
                                .any(|n| *n != ids[node] && alive[ids.iter().position(|i| i == n).unwrap()]);
                            if replicas.contains(&ids[node]) && has_fresh_live_peer {
                                fresh.get_mut(acg).unwrap().insert(ids[node]);
                            }
                        }
                    }
                }
                FailureEvent::Slow { node, millis } => {
                    cluster.rpc().slowdowns().set(
                        ids[node],
                        propeller::sim::Latency::constant(Duration::from_millis(millis)),
                    );
                }
            }
        }

        // Oracle: each ACG is served by its first *alive* replica (the
        // client fails over in replica order); it yields the ACG's files
        // iff that replica is fresh. No alive replica → unreachable.
        let mut served: HashSet<FileId> = HashSet::new();
        let mut expect_unreachable: Vec<AcgId> = Vec::new();
        for (acg, replicas) in &placed {
            let first_alive = replicas
                .iter()
                .find(|n| alive[ids.iter().position(|i| i == *n).unwrap()]);
            match first_alive {
                None => expect_unreachable.push(*acg),
                Some(n) if fresh[acg].contains(n) => {
                    served.extend(
                        file_acg.iter().filter(|(_, a)| *a == acg).map(|(f, _)| *f),
                    );
                }
                Some(_) => {} // alive but empty: answers, with no hits
            }
        }
        expect_unreachable.sort_unstable();

        let mut req = SearchRequest::parse("size>0", Timestamp::from_secs(1_000))
            .unwrap()
            .sorted_by(SortKey::Descending(AttrName::Size))
            .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 0 });
        if let Some(k) = limit {
            req = req.with_limit(k);
        }
        let resp = client.search_with(&req).unwrap();

        prop_assert_eq!(resp.complete, expect_unreachable.is_empty(),
            "incomplete iff every replica of some ACG is down");
        prop_assert_eq!(&resp.unreachable, &expect_unreachable);
        let oracle_records: Vec<FileRecord> =
            records.iter().filter(|r| served.contains(&r.file)).cloned().collect();
        let brute = run_local_search(oracle_records, &req);
        let got: Vec<FileId> = resp.hits.iter().map(|h| h.file).collect();
        let want: Vec<FileId> = brute.hits.iter().map(|h| h.file).collect();
        prop_assert_eq!(got, want, "replicated search must equal brute force over survivors");
        cluster.shutdown();
    }
}

#[test]
fn killing_one_replica_of_every_acg_mid_pagination_loses_nothing() {
    // The tentpole acceptance scenario: R = 2 on a 2-node cluster means
    // every ACG lives on both nodes — killing one node kills one replica
    // of EVERY ACG, in the middle of a paginated streamed search. The
    // stream must fail over and the concatenated pages must be
    // byte-identical to the healthy answer: complete, no hit skipped, no
    // hit duplicated.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 10,
        replication: 2,
        ..Default::default()
    });
    let mut client = cluster.client().with_search_page_size(7);
    let records: Vec<FileRecord> = (0..100u64).map(|i| record(i, (i + 1) << 20)).collect();
    client.index_files(records).unwrap();

    let request = SearchRequest::parse("size>0", Timestamp::from_secs(1_000))
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    // Healthy baseline, before anything dies.
    let baseline = client.search_one_shot(&request).unwrap();
    assert_eq!(baseline.hits.len(), 100);

    let mut stream = client.open_search_stream(&request).unwrap();
    let mut paged = Vec::new();
    for _ in 0..3 {
        let page = stream.next_page(7).unwrap();
        assert!(!page.is_empty());
        paged.extend(page);
    }
    // Mid-pagination kill: one replica of every ACG.
    cluster.rpc().deregister(cluster.index_node_ids()[0]);
    loop {
        let page = stream.next_page(7).unwrap();
        if page.is_empty() {
            break;
        }
        paged.extend(page);
    }
    let resp = stream.finish().unwrap();

    assert!(resp.complete, "every ACG still had a live replica");
    assert!(resp.unreachable.is_empty());
    assert!(resp.stats.replica_failovers >= 1, "the kill must be witnessed as a failover");
    assert_eq!(paged, baseline.hits, "failover must not skip or duplicate a single hit");
    let mut files: Vec<FileId> = paged.iter().map(|h| h.file).collect();
    files.sort_unstable();
    files.dedup();
    assert_eq!(files.len(), paged.len(), "no duplicates across the failover seam");
    cluster.shutdown();
}

#[test]
fn hedged_opens_beat_an_injected_straggler_and_are_witnessed_in_stats() {
    // Tail tolerance: one node is artificially slowed far past the hedge
    // budget, so every streamed open it serves as primary fires a tied
    // request at its replica peer — and the peer wins. Margins are wide
    // (200 ms straggle vs 10 ms budget) so the race is deterministic in
    // practice; correctness never depends on who wins, since replicas
    // serve byte-identical committed views.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 10,
        replication: 2,
        hedge_budget: Some(Duration::from_millis(10)),
        ..Default::default()
    });
    let mut client = cluster.client().with_search_page_size(8);
    let records: Vec<FileRecord> = (0..100u64).map(|i| record(i, (i + 1) << 20)).collect();
    client.index_files(records).unwrap();

    let request = SearchRequest::parse("size>0", Timestamp::from_secs(1_000))
        .unwrap()
        .with_limit(40)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let baseline = client.search_one_shot(&request).unwrap();

    // Straggle a node that serves as primary for at least one ACG.
    let straggler =
        placements(&cluster).first().map(|(_, replicas)| replicas[0]).expect("cluster has ACGs");
    cluster
        .rpc()
        .slowdowns()
        .set(straggler, propeller::sim::Latency::constant(Duration::from_millis(200)));

    let hedged = client.search_streamed(&request).unwrap();
    assert_eq!(hedged.hits, baseline.hits, "hedging must not change the answer");
    assert!(hedged.complete);
    assert!(hedged.stats.hedges_fired > 0, "the straggler must trigger a hedge");
    assert!(hedged.stats.hedges_won > 0, "the fast replica must win the race");
    cluster.shutdown();
}
