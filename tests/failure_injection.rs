//! Failure-injection tests for the cluster: dead Index Nodes, Master
//! liveness bookkeeping, and graceful degradation rules.

use propeller::cluster::{Cluster, ClusterConfig, Request, Response};
use propeller::types::{Duration, Error, FileId, InodeAttrs, NodeId, Timestamp};
use propeller::FileRecord;

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

#[test]
fn dead_index_node_surfaces_as_node_unavailable() {
    let cluster = Cluster::start(ClusterConfig { index_nodes: 2, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..50).map(|i| record(i, 1 << 20)).collect()).unwrap();

    // Kill one index node's actor and remove it from the fabric.
    let victim = cluster.index_node_ids()[0];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Searches that fan out to the dead node report unavailability rather
    // than silently returning partial results (the consistency-first rule).
    let err = client.search_text("size>0");
    assert!(matches!(err, Err(Error::NodeUnavailable(n)) if n == victim), "{err:?}");
    cluster.shutdown();
}

#[test]
fn surviving_nodes_keep_serving_their_acgs() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 2, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..40).map(|i| record(i, 1 << 20)).collect()).unwrap();

    let victim = cluster.index_node_ids()[1];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Direct requests to the survivor still work.
    let survivor = cluster.index_node_ids()[0];
    let resp =
        cluster.rpc().call(survivor, Request::Tick { now: Timestamp::from_secs(1) }).unwrap();
    assert!(matches!(resp, Response::Status(_)));
    cluster.shutdown();
}

#[test]
fn master_heartbeat_tracking_flags_stale_nodes() {
    use propeller::cluster::{MasterConfig, MasterNode};
    let nodes: Vec<NodeId> = (1..=3).map(NodeId::new).collect();
    let mut master = MasterNode::new(nodes.clone(), MasterConfig::default());
    for (i, &n) in nodes.iter().enumerate() {
        master.handle(Request::Heartbeat {
            node: n,
            acgs: vec![],
            now: Timestamp::from_secs(10 * (i as u64 + 1)),
        });
    }
    let now = Timestamp::from_secs(40);
    let timeout = Duration::from_secs(15);
    let status = master.node_status();
    assert!(!status[&NodeId::new(1)].alive(now, timeout), "heartbeat at t=10");
    assert!(status[&NodeId::new(3)].alive(now, timeout), "heartbeat at t=30");
}

#[test]
fn acg_flush_failures_are_swallowed_but_indexing_failures_are_not() {
    let cluster = Cluster::start(ClusterConfig { index_nodes: 1, ..Default::default() });
    let mut client = cluster.client();
    client.index_files(vec![record(1, 10), record(2, 10)]).unwrap();

    // Capture causality, then kill the only index node.
    let pid = propeller::types::ProcessId::new(1);
    client.observe_open(pid, FileId::new(1), propeller::types::OpenMode::Read);
    client.observe_open(pid, FileId::new(2), propeller::types::OpenMode::Write);
    client.end_process(pid);
    let victim = cluster.index_node_ids()[0];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // ACG flush: weakly consistent — errors swallowed, edges dropped.
    let flushed = client.flush_acg().unwrap();
    assert_eq!(flushed, 1, "delta counted even though delivery failed");

    // Indexing: strongly consistent — failure must surface.
    assert!(client.index_files(vec![record(3, 10)]).is_err());
    cluster.shutdown();
}

#[test]
fn cluster_modeled_mode_accrues_network_time_per_operation() {
    let sim = propeller::sim::SimClock::new();
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 4,
        sim_clock: Some(sim.clone()),
        charge_network: true,
        ..Default::default()
    });
    let mut client = cluster.client();
    let t0 = sim.now();
    client.index_files((0..100).map(|i| record(i, 1)).collect()).unwrap();
    let after_index = sim.now();
    assert!(after_index > t0);
    client.search_text("size>=0").unwrap();
    assert!(sim.now() > after_index);
    cluster.shutdown();
}

#[test]
fn stale_route_after_split_is_invalidated_and_retried() {
    // One oversized ACG on a 2-node cluster: maintenance splits it and
    // migrates half the files to the other node. A client that indexed
    // before the split still caches the old (ACG, node) routes.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 1_000,
        split_threshold: 50,
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..120).map(|i| record(i, 1 << 20)).collect()).unwrap();
    let splits = cluster.run_maintenance().unwrap();
    assert!(splits >= 1, "the oversized ACG must split");

    // Re-index every file with a new size through the stale cache. For the
    // migrated half the old owner answers "route moved"; the client must
    // drop those cache entries, re-resolve at the Master and retry — the
    // whole batch succeeds without surfacing an error.
    client.index_files((0..120).map(|i| record(i, 2 << 20)).collect()).unwrap();

    // Every update landed exactly once, in the group that owns the file
    // now: no stale copies with the old size, no duplicates, no losses.
    assert!(client.search_text("size=1m").unwrap().is_empty(), "no stale copies");
    let hits = client.search_text("size=2m").unwrap();
    assert_eq!(hits.len(), 120, "all updates visible exactly once");
    cluster.shutdown();
}

#[test]
fn partial_index_broadcast_rolls_back_and_reports_missed_nodes() {
    use propeller::IndexSpec;
    let cluster = Cluster::start(ClusterConfig { index_nodes: 3, ..Default::default() });
    let client = cluster.client();

    // Kill one node, then try to create a cluster-wide index.
    let victim = cluster.index_node_ids()[2];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    let spec = IndexSpec::btree("uid_idx", propeller::types::AttrName::Uid);
    let err = client.create_index(spec.clone());
    match err {
        Err(Error::PartialIndexBroadcast { index, missed }) => {
            assert_eq!(index, "uid_idx");
            assert_eq!(missed, vec![victim]);
        }
        other => panic!("expected PartialIndexBroadcast, got {other:?}"),
    }

    // The rollback unregistered the name at the Master: once the cluster
    // is healthy again (here: minus the dead node), the same name works.
    let resp = cluster.rpc().call(cluster.master_id(), Request::CreateIndex { spec }).unwrap();
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    cluster.shutdown();
}
