//! Failure-injection tests for the cluster: dead Index Nodes, Master
//! liveness bookkeeping, and graceful degradation rules.

use propeller::cluster::{Cluster, ClusterConfig, Request, Response};
use propeller::types::{Duration, Error, FileId, InodeAttrs, NodeId, Timestamp};
use propeller::FileRecord;

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

#[test]
fn dead_index_node_surfaces_as_node_unavailable() {
    let cluster = Cluster::start(ClusterConfig { index_nodes: 2, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..50).map(|i| record(i, 1 << 20)).collect()).unwrap();

    // Kill one index node's actor and remove it from the fabric.
    let victim = cluster.index_node_ids()[0];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Searches that fan out to the dead node report unavailability rather
    // than silently returning partial results (the consistency-first rule).
    let err = client.search_text("size>0");
    assert!(
        matches!(err, Err(Error::NodeUnavailable(n)) if n == victim),
        "{err:?}"
    );
    cluster.shutdown();
}

#[test]
fn surviving_nodes_keep_serving_their_acgs() {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 10,
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..40).map(|i| record(i, 1 << 20)).collect()).unwrap();

    let victim = cluster.index_node_ids()[1];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Direct requests to the survivor still work.
    let survivor = cluster.index_node_ids()[0];
    let resp = cluster
        .rpc()
        .call(survivor, Request::Tick { now: Timestamp::from_secs(1) })
        .unwrap();
    assert!(matches!(resp, Response::Status(_)));
    cluster.shutdown();
}

#[test]
fn master_heartbeat_tracking_flags_stale_nodes() {
    use propeller::cluster::{MasterConfig, MasterNode};
    let nodes: Vec<NodeId> = (1..=3).map(NodeId::new).collect();
    let mut master = MasterNode::new(nodes.clone(), MasterConfig::default());
    for (i, &n) in nodes.iter().enumerate() {
        master.handle(Request::Heartbeat {
            node: n,
            acgs: vec![],
            now: Timestamp::from_secs(10 * (i as u64 + 1)),
        });
    }
    let now = Timestamp::from_secs(40);
    let timeout = Duration::from_secs(15);
    let status = master.node_status();
    assert!(!status[&NodeId::new(1)].alive(now, timeout), "heartbeat at t=10");
    assert!(status[&NodeId::new(3)].alive(now, timeout), "heartbeat at t=30");
}

#[test]
fn acg_flush_failures_are_swallowed_but_indexing_failures_are_not() {
    let cluster = Cluster::start(ClusterConfig { index_nodes: 1, ..Default::default() });
    let mut client = cluster.client();
    client.index_files(vec![record(1, 10), record(2, 10)]).unwrap();

    // Capture causality, then kill the only index node.
    let pid = propeller::types::ProcessId::new(1);
    client.observe_open(pid, FileId::new(1), propeller::types::OpenMode::Read);
    client.observe_open(pid, FileId::new(2), propeller::types::OpenMode::Write);
    client.end_process(pid);
    let victim = cluster.index_node_ids()[0];
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // ACG flush: weakly consistent — errors swallowed, edges dropped.
    let flushed = client.flush_acg().unwrap();
    assert_eq!(flushed, 1, "delta counted even though delivery failed");

    // Indexing: strongly consistent — failure must surface.
    assert!(client.index_files(vec![record(3, 10)]).is_err());
    cluster.shutdown();
}

#[test]
fn cluster_modeled_mode_accrues_network_time_per_operation() {
    let sim = propeller::sim::SimClock::new();
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 4,
        sim_clock: Some(sim.clone()),
        charge_network: true,
        ..Default::default()
    });
    let mut client = cluster.client();
    let t0 = sim.now();
    client.index_files((0..100).map(|i| record(i, 1)).collect()).unwrap();
    let after_index = sim.now();
    assert!(after_index > t0);
    client.search_text("size>=0").unwrap();
    assert!(sim.now() > after_index);
    cluster.shutdown();
}
