//! Integration tests for the first-class `SearchRequest`/`SearchResponse`
//! API: top-k + sort correctness against brute force, projection
//! round-tripping, cursor pagination, the bounded-heap guarantee, and
//! partial-failure-tolerant fan-out.

use std::collections::HashSet;
use std::sync::Arc;

use propeller::baselines::BruteForce;
use propeller::storage::SharedStorage;
use propeller::types::{AttrName, Error, FileId, InodeAttrs, Timestamp, Value};
use propeller::{
    Cluster, ClusterConfig, FanOutPolicy, FileRecord, Projection, Propeller, PropellerConfig,
    SearchRequest, SortKey,
};

/// The sorted ACG set a node hosts — what `SearchResponse::unreachable`
/// names once every replica of those ACGs is down (with R=1, exactly the
/// node's ACGs).
fn acgs_hosted_by(
    cluster: &Cluster,
    node: propeller::types::NodeId,
) -> Vec<propeller::types::AcgId> {
    let rows =
        match cluster.rpc().call(cluster.master_id(), propeller::cluster::Request::LocateAcgs) {
            Ok(propeller::cluster::Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
    let mut acgs: Vec<_> =
        rows.into_iter().filter(|(_, r)| r.contains(&node)).map(|(a, _)| a).collect();
    acgs.sort_unstable();
    acgs
}

fn record(file: u64, size: u64, mtime_s: u64, uid: u32) -> FileRecord {
    FileRecord::new(
        FileId::new(file),
        InodeAttrs::builder().size(size).mtime(Timestamp::from_secs(mtime_s)).uid(uid).build(),
    )
}

/// A deterministic pseudo-random dataset shared by service and ground
/// truth.
fn dataset(n: u64) -> Vec<FileRecord> {
    let mut state = 0x1234_5678_9ABC_DEFFu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| record(i, next() % (64 << 20), next() % 1_000_000, (next() % 5) as u32))
        .collect()
}

#[test]
fn topk_and_sort_agree_with_brute_force() {
    let records = dataset(2_000);
    let storage = Arc::new(SharedStorage::new());
    let mut service = Propeller::new(PropellerConfig {
        group_capacity: 128, // force many ACGs so merging is exercised
        ..PropellerConfig::default()
    });
    for r in &records {
        storage.create(&format!("/f{}", r.file.raw()), r.attrs).unwrap();
        service.index_file(r.clone()).unwrap();
    }
    let brute = BruteForce::new(storage);
    let now = Timestamp::from_secs(2_000_000);

    for (text, sort) in [
        ("size>16m", SortKey::Descending(AttrName::Size)),
        ("size>16m", SortKey::Ascending(AttrName::Size)),
        ("uid=3", SortKey::Ascending(AttrName::Mtime)),
        ("size>1m & size<32m", SortKey::Descending(AttrName::Mtime)),
        ("*", SortKey::FileId),
    ] {
        for k in [1usize, 7, 100] {
            let req =
                SearchRequest::parse(text, now).unwrap().with_limit(k).sorted_by(sort.clone());
            // Ground truth: brute force answers the same request API.
            let expected = brute.search_with(&req);
            let got = service.search_with(&req).unwrap();
            assert_eq!(got.file_ids(), expected.file_ids(), "query {text:?} sort {sort:?} k {k}");
            // The bounded-heap guarantee: no ACG ever retained more than
            // O(k) hits past its candidate filter.
            assert!(
                got.stats.retained_peak <= k,
                "query {text:?} k {k}: retained {}",
                got.stats.retained_peak
            );
            assert!(got.complete);
            assert!(got.stats.acgs_consulted > 1, "partitioned run expected");
        }
    }
}

#[test]
fn projection_round_trips_attributes() {
    let mut service = Propeller::new(PropellerConfig::default());
    for i in 0..50u64 {
        service
            .index_file(
                record(i, i << 20, i, (i % 3) as u32)
                    .with_keyword(if i % 2 == 0 { "even" } else { "odd" })
                    .with_custom("energy", Value::F64(-(i as f64))),
            )
            .unwrap();
    }
    let now = Timestamp::from_secs(1_000);

    // Selected attributes come back typed, in request order.
    let req =
        SearchRequest::parse("size>=49m", now).unwrap().with_projection(Projection::Attrs(vec![
            AttrName::Size,
            AttrName::Keyword,
            AttrName::custom("energy"),
        ]));
    let resp = service.search_with(&req).unwrap();
    assert_eq!(resp.hits.len(), 1);
    assert_eq!(
        resp.hits[0].attrs,
        vec![
            (AttrName::Size, Value::U64(49 << 20)),
            (AttrName::Keyword, Value::from("odd")),
            (AttrName::custom("energy"), Value::F64(-49.0)),
        ]
    );

    // Full projection reconstructs the whole record.
    let req = SearchRequest::parse("size>=49m", now).unwrap().with_projection(Projection::Full);
    let resp = service.search_with(&req).unwrap();
    let attrs = &resp.hits[0].attrs;
    assert!(attrs.contains(&(AttrName::Size, Value::U64(49 << 20))));
    assert!(attrs.contains(&(AttrName::Uid, Value::U64(1))));
    assert!(attrs.contains(&(AttrName::Keyword, Value::from("odd"))));
    assert!(attrs.contains(&(AttrName::custom("energy"), Value::F64(-49.0))));

    // Default projection is ids-only.
    let req = SearchRequest::parse("size>=49m", now).unwrap();
    assert!(service.search_with(&req).unwrap().hits[0].attrs.is_empty());
}

#[test]
fn cursor_pagination_is_disjoint_and_exhaustive() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 3, group_capacity: 64, ..Default::default() });
    let mut client = cluster.client();
    let records = dataset(1_111);
    client.index_files(records.clone()).unwrap();
    let now = Timestamp::from_secs(2_000_000);

    let base = SearchRequest::parse("size>1m", now)
        .unwrap()
        .with_limit(100)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let full = client
        .search_with(
            &SearchRequest::parse("size>1m", now)
                .unwrap()
                .sorted_by(SortKey::Descending(AttrName::Size)),
        )
        .unwrap();

    let mut pages: Vec<FileId> = Vec::new();
    let mut seen = HashSet::new();
    let mut cursor = None;
    loop {
        let mut req = base.clone();
        if let Some(c) = cursor.take() {
            req = req.after(c);
        }
        let resp = client.search_with(&req).unwrap();
        assert!(resp.hits.len() <= 100);
        for hit in &resp.hits {
            assert!(seen.insert(hit.file), "page overlap at {}", hit.file);
        }
        pages.extend(resp.hits.iter().map(|h| h.file));
        match resp.cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    assert_eq!(pages, full.file_ids(), "pages must cover the full result exactly");
    cluster.shutdown();
}

#[test]
fn allow_partial_tolerates_a_dead_node_but_require_all_errors() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 3, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..300u64).map(|i| record(i, 1 << 20, i, 0)).collect()).unwrap();
    let now = Timestamp::from_secs(1_000);

    let complete = client.search_with(&SearchRequest::parse("size>0", now).unwrap()).unwrap();
    assert_eq!(complete.hits.len(), 300);
    assert!(complete.complete);

    // Kill one Index Node (the failure-injection harness).
    let victim = cluster.index_node_ids()[0];
    let victim_acgs = acgs_hosted_by(&cluster, victim);
    cluster.rpc().call(victim, propeller::cluster::Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // require_all (the default): the dead node fails the search.
    let err = client.search_with(&SearchRequest::parse("size>0", now).unwrap());
    assert!(matches!(err, Err(Error::NodeUnavailable(n)) if n == victim), "{err:?}");

    // allow_partial: the survivors' hits come back, the lost ACGs named.
    let req = SearchRequest::parse("size>0", now)
        .unwrap()
        .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 });
    let partial = client.search_with(&req).unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.unreachable, victim_acgs);
    assert!(!partial.hits.is_empty());
    assert!(partial.hits.len() < 300, "the dead node's ACGs are missing");

    // ...but an unreachable quorum still errors.
    let req = SearchRequest::parse("size>0", now)
        .unwrap()
        .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 3 });
    assert!(client.search_with(&req).is_err());
    cluster.shutdown();
}

#[test]
fn cursor_on_incomplete_opt_in_resumes_over_survivors_and_names_the_gap() {
    // The availability-first opt-in: an incomplete response may carry a
    // continuation cursor *plus* the unreachable-node set, so a caller
    // keeps paginating the reachable nodes now and backfills the listed
    // gap later — instead of stalling the whole scan on one dead node.
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 3, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client();
    let records: Vec<FileRecord> = (0..300u64).map(|i| record(i, (i + 1) << 20, i, 0)).collect();
    client.index_files(records).unwrap();
    let now = Timestamp::from_secs(1_000);
    let page_req = |cursor: Option<propeller::query::Cursor>| {
        let mut req = SearchRequest::parse("size>0", now)
            .unwrap()
            .with_limit(50)
            .sorted_by(SortKey::Descending(AttrName::Size))
            .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 })
            .with_cursor_on_incomplete();
        if let Some(c) = cursor {
            req = req.after(c);
        }
        req
    };

    let victim = cluster.index_node_ids()[0];
    let victim_acgs = acgs_hosted_by(&cluster, victim);
    cluster.rpc().call(victim, propeller::cluster::Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // Survivor ground truth: everything the reachable nodes hold, in sort
    // order (an unlimited partial search).
    let survivors_all = client
        .search_with(
            &SearchRequest::parse("size>0", now)
                .unwrap()
                .sorted_by(SortKey::Descending(AttrName::Size))
                .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 }),
        )
        .unwrap();
    assert!(!survivors_all.complete);
    assert!(survivors_all.cursor.is_none(), "unlimited responses never paginate");

    // Paginate with the opt-in: every incomplete page carries the cursor
    // AND the gap, and the concatenation covers the survivors exactly.
    let mut paged: Vec<FileId> = Vec::new();
    let mut cursor = None;
    loop {
        let resp = client.search_with(&page_req(cursor.take())).unwrap();
        assert!(!resp.complete);
        assert_eq!(resp.unreachable, victim_acgs, "the gap is always named");
        if resp.hits.is_empty() {
            break;
        }
        if !paged.is_empty() {
            assert!(resp.cursor.is_some() || resp.hits.len() < 50);
        }
        paged.extend(resp.file_ids());
        match resp.cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    assert_eq!(paged, survivors_all.file_ids(), "opt-in pagination covers every reachable hit");
    assert!(paged.len() < 300, "the dead node's hits are the named gap");
    cluster.shutdown();
}

#[test]
fn incomplete_page_carries_no_cursor_and_recovery_restores_the_skipped_hits() {
    let mut cluster =
        Cluster::start(ClusterConfig { index_nodes: 3, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client();
    let records: Vec<FileRecord> = (0..300u64).map(|i| record(i, (i + 1) << 20, i, 0)).collect();
    client.index_files(records.clone()).unwrap();
    let now = Timestamp::from_secs(1_000);
    let page_req = |cursor: Option<propeller::query::Cursor>| {
        let mut req = SearchRequest::parse("size>0", now)
            .unwrap()
            .with_limit(50)
            .sorted_by(SortKey::Descending(AttrName::Size))
            .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 });
        if let Some(c) = cursor {
            req = req.after(c);
        }
        req
    };

    // Healthy baseline: a full page comes with a continuation cursor.
    let healthy = client.search_with(&page_req(None)).unwrap();
    assert!(healthy.complete);
    assert_eq!(healthy.hits.len(), 50);
    assert!(healthy.cursor.is_some());

    // Kill one node: the partial page may still be full, but it must NOT
    // hand out a cursor — paginating past it would permanently skip every
    // hit the dead node held that sorts before the page boundary.
    let victim = cluster.index_node_ids()[0];
    let victim_acgs = acgs_hosted_by(&cluster, victim);
    cluster.rpc().call(victim, propeller::cluster::Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);
    let partial = client.search_with(&page_req(None)).unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.unreachable, victim_acgs);
    assert!(!partial.hits.is_empty());
    assert!(
        partial.cursor.is_none(),
        "an incomplete response must suppress its continuation cursor"
    );

    // Recover the node (fresh in-memory state) and re-index: the follow-up
    // pagination must now cover the complete result — including the dead
    // node's hits that sorted *before* the partial page's boundary, which
    // a cursor taken from the partial page would have skipped forever.
    cluster.revive_index_node(victim);
    client.index_files(records).unwrap();
    let mut paged: Vec<FileId> = Vec::new();
    let mut cursor = None;
    loop {
        let resp = client.search_with(&page_req(cursor.take())).unwrap();
        assert!(resp.complete, "revived cluster must answer completely");
        if resp.hits.is_empty() {
            break;
        }
        paged.extend(resp.file_ids());
        match resp.cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    let expected: Vec<FileId> = (0..300u64).rev().map(FileId::new).collect();
    assert_eq!(paged, expected, "recovered pagination covers every hit, largest size first");
    cluster.shutdown();
}

#[test]
fn baselines_answer_the_same_request_api() {
    use propeller::baselines::{CentralDb, ShardedDb};
    let records = dataset(500);
    let mut central = CentralDb::new();
    let mut sharded = ShardedDb::new(4);
    let mut service = Propeller::new(PropellerConfig::default());
    for r in &records {
        central.upsert(r.clone());
        sharded.upsert(r.clone());
        service.index_file(r.clone()).unwrap();
    }
    let now = Timestamp::from_secs(2_000_000);
    let req = SearchRequest::parse("size>8m", now)
        .unwrap()
        .with_limit(25)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let ours = service.search_with(&req).unwrap();
    assert_eq!(ours.file_ids(), central.search_with(&req).file_ids());
    assert_eq!(ours.file_ids(), sharded.search_with(&req).file_ids());
}

/// A sorted top-k over B+-tree-covered attributes rides the ordered-scan
/// path end to end: the stats witness that the scan terminated after k
/// admitted hits and skipped the bulk of each consulted group, while the
/// results stay identical to the materializing brute-force answer.
#[test]
fn sorted_topk_terminates_early_with_witnessed_cutoff() {
    let records = dataset(20_000);
    let storage = Arc::new(SharedStorage::new());
    let mut service = Propeller::new(PropellerConfig {
        group_capacity: 4_000, // several ACGs: every one must cut off
        ..PropellerConfig::default()
    });
    for r in &records {
        storage.create(&format!("/f{}", r.file.raw()), r.attrs).unwrap();
    }
    service.index_batch(records).unwrap();
    let brute = BruteForce::new(storage);
    let now = Timestamp::from_secs(2_000_000);

    let req = SearchRequest::parse("size>1m", now)
        .unwrap()
        .with_limit(50)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let resp = service.search_with(&req).unwrap();
    assert_eq!(resp.file_ids(), brute.search_with(&req).file_ids());
    assert_eq!(resp.hits.len(), 50);

    // Every consulted ACG ran an ordered scan and cut off early...
    let acgs = resp.stats.acgs_consulted;
    assert!(acgs >= 5, "expected a partitioned run, got {acgs} ACGs");
    assert_eq!(resp.stats.early_terminated, acgs, "every ACG terminated early");
    assert!(resp
        .stats
        .access_paths
        .iter()
        .all(|(_, kind)| *kind == propeller::query::AccessPathKind::OrderedScan));
    // ...so the bulk of the namespace was never examined.
    assert!(resp.stats.candidates_skipped > 10_000, "cutoff skipped too little: {:?}", resp.stats);
    assert!(
        resp.stats.candidates_scanned + resp.stats.candidates_skipped <= 20_000,
        "{:?}",
        resp.stats
    );
    assert!(resp.stats.retained_peak <= 50);

    // The same search unlimited scans everything and terminates nowhere.
    let full = SearchRequest::parse("size>1m", now)
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let resp = service.search_with(&full).unwrap();
    assert_eq!(resp.stats.early_terminated, 0);
    assert_eq!(resp.stats.candidates_skipped, 0);
}

#[test]
fn stats_report_access_paths_and_elapsed() {
    let mut service = Propeller::new(PropellerConfig::default());
    for i in 0..100u64 {
        service.index_file(record(i, i << 20, i, 0).with_keyword("kw")).unwrap();
    }
    let now = Timestamp::from_secs(1_000);
    // A size range rides the B+-tree; a keyword probe rides the hash.
    let resp = service.search_with(&SearchRequest::parse("size>50m", now).unwrap()).unwrap();
    assert_eq!(resp.stats.acgs_consulted, 1);
    assert_eq!(resp.stats.access_paths.len(), 1);
    assert!(resp.stats.candidates_scanned >= resp.hits.len());
    let resp = service.search_with(&SearchRequest::parse("keyword:kw", now).unwrap()).unwrap();
    assert_eq!(resp.hits.len(), 100);
}
