//! Integration tests pinning the paper's headline claims as executable
//! properties: real-time recall, crawler staleness, cache behaviour and
//! split locality.

use propeller::baselines::{recall, SpotlightConfig, SpotlightEngine};
use propeller::trace::profiles::{table_one_apps, BuildProfile};
use propeller::trace::{CausalityTracker, FileCatalog};
use propeller::types::{Duration, FileId, InodeAttrs, Timestamp};
use propeller::{FileRecord, Propeller, PropellerConfig, Query};

/// §I/§V: Propeller's recall is 100% at any update intensity, because
/// indexing is inline. The crawler's recall degrades as intensity rises.
#[test]
fn propeller_recall_is_total_under_churn_while_crawler_lags() {
    let query = Query::parse("size>16m", Timestamp::EPOCH).unwrap();
    for fps in [5u64, 10, 50] {
        let mut service = Propeller::new(PropellerConfig::default());
        let mut crawler = SpotlightEngine::new(SpotlightConfig {
            supported_fraction: 1.0,
            crawl_rate: 4.0,
            reindex_backlog: usize::MAX,
            ..Default::default()
        });
        let mut truth = Vec::new();
        for sec in 0..60u64 {
            let now = Timestamp::from_secs(sec);
            for k in 0..fps {
                let id = FileId::new(sec * 1_000 + k);
                let rec = FileRecord::new(id, InodeAttrs::builder().size(20 << 20).build());
                truth.push(id);
                service.index_file(rec.clone()).unwrap();
                crawler.notify(rec, now);
            }
        }
        let now = Timestamp::from_secs(60);
        let pp = service.search(&query.predicate).unwrap();
        assert_eq!(recall(&pp, &truth), 1.0, "propeller recall at {fps} FPS");
        let sl_recall = recall(&crawler.query(&query.predicate, now), &truth);
        assert!(sl_recall < 1.0, "crawler must lag at {fps} FPS: {sl_recall}");
    }
}

/// §IV: the lazy cache hides commit work from updates, and the timeout
/// bounds staleness of the *internal* index without ever being visible in
/// search results.
#[test]
fn cache_timeout_bounds_internal_staleness_only() {
    let sim = propeller::sim::SimClock::new();
    let mut service = Propeller::new(PropellerConfig {
        commit_timeout: Duration::from_secs(5),
        sim_clock: Some(sim.clone()),
        ..PropellerConfig::default()
    });
    service
        .index_file(FileRecord::new(FileId::new(1), InodeAttrs::builder().size(1 << 30).build()))
        .unwrap();
    assert_eq!(service.pending_ops(), 1, "update buffered, not committed");
    // Maintenance before the timeout leaves it pending.
    sim.advance(Duration::from_secs(2));
    service.maintenance().unwrap();
    assert_eq!(service.pending_ops(), 1);
    // …but a search commits it synchronously (consistency first).
    let hits = service.search_text("size>512m").unwrap();
    assert_eq!(hits, vec![FileId::new(1)]);
    assert_eq!(service.pending_ops(), 0);
    // And the timeout alone also commits, without any search.
    service
        .index_file(FileRecord::new(FileId::new(2), InodeAttrs::builder().size(1 << 30).build()))
        .unwrap();
    sim.advance(Duration::from_secs(6));
    service.maintenance().unwrap();
    assert_eq!(service.pending_ops(), 0, "timeout commit fired");
}

/// §III: ACGs of different applications are (almost) disjoint — Table I —
/// so per-application traces produce separable components.
#[test]
fn application_acgs_are_nearly_disjoint() {
    let mut catalog = FileCatalog::new();
    let apps = table_one_apps(&mut catalog);
    // Shared fractions are tiny relative to app sizes.
    for a in &apps {
        for b in &apps {
            if a.name != b.name {
                let frac = a.common_files(b) as f64 / a.file_count() as f64;
                assert!(frac < 0.25, "{} vs {}: {frac}", a.name, b.name);
            }
        }
    }
}

/// §III: splitting an oversized ACG with the multilevel partitioner keeps
/// causally-coupled files together (small cut on build-shaped graphs).
#[test]
fn build_acg_splits_have_small_cuts() {
    let mut catalog = FileCatalog::new();
    let trace = BuildProfile::git().generate(&mut catalog, 7);
    let mut tracker = CausalityTracker::new();
    for ev in &trace.events {
        tracker.observe(*ev);
    }
    let mut graph = propeller::acg::AcgGraph::new();
    for (s, d, w) in tracker.drain_edges() {
        graph.add_edge(s, d, w);
    }
    let comps = graph.components();
    let largest = comps.largest().unwrap().to_vec();
    let sub = graph.subgraph(&largest);
    let b = propeller::acg::bisect(&sub, &Default::default());
    assert!(b.cut_fraction() < 0.45, "cut fraction {} (paper's git: 29.4%)", b.cut_fraction());
    assert!(b.imbalance() <= 1.15, "imbalance {}", b.imbalance());
}

/// §V-D: commit-before-search means a search right after a burst of
/// updates pays the merge, and subsequent searches are cheap — but both
/// return identical, correct results.
#[test]
fn post_burst_search_correctness() {
    let mut service = Propeller::new(PropellerConfig::default());
    let group: Vec<FileId> = (0..1_000).map(FileId::new).collect();
    service.bind_group(&group).unwrap();
    for round in 0..5u64 {
        for &f in &group {
            service
                .index_file(FileRecord::new(
                    f,
                    InodeAttrs::builder().size(f.raw() + round * 1_000_000).build(),
                ))
                .unwrap();
        }
        let first = service.search_text("size>=1000000").unwrap();
        let second = service.search_text("size>=1000000").unwrap();
        assert_eq!(first, second, "round {round}");
        if round > 0 {
            assert_eq!(first.len(), 1_000, "round {round}: all files updated");
        }
    }
}

/// Table V: the crawler's type-plugin ceiling is dataset-dependent and
/// cannot be overcome by waiting.
#[test]
fn crawler_ceiling_cannot_be_waited_out() {
    let mut crawler = SpotlightEngine::new(SpotlightConfig {
        supported_fraction: 0.1386, // the paper's Dataset 2 coverage
        crawl_rate: 1e6,
        ..Default::default()
    });
    let query = Query::parse("size>0", Timestamp::EPOCH).unwrap();
    let truth: Vec<FileId> = (0..5_000).map(FileId::new).collect();
    for &f in &truth {
        crawler.notify(FileRecord::new(f, InodeAttrs::builder().size(1).build()), Timestamp::EPOCH);
    }
    // Wait an arbitrarily long time.
    let r = recall(&crawler.query(&query.predicate, Timestamp::from_secs(1_000_000)), &truth);
    assert!((0.10..0.18).contains(&r), "ceiling ≈ 13.86%, got {r}");
}
