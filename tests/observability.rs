//! Cluster-wide observability: propagated query traces assembled into one
//! tree, the per-node metrics registry merged across the cluster, the
//! slow-query log, and the per-node `SearchStats` latency breakdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use propeller::cluster::{
    Cluster, ClusterConfig, IndexNode, IndexNodeConfig, Request, Response, TraceContext,
};
use propeller::query::{SearchRequest, SearchStats, SortKey};
use propeller::sim::{Clock, SimClock};
use propeller::types::{AcgId, AttrName, Duration, FileId, InodeAttrs, NodeId, Timestamp};
use propeller::FileRecord;
use propeller_obs::{names, Lane, SpanKind};
use proptest::prelude::*;

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

/// The Master's current placement map: ACG → ordered replica set.
fn placements(cluster: &Cluster) -> Vec<(AcgId, Vec<NodeId>)> {
    match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
        Ok(Response::Located(rows)) => rows,
        other => panic!("{other:?}"),
    }
}

/// The acceptance scenario: a four-node replicated cluster where one
/// replica is killed and another straggles past the hedge budget. A
/// single sampled streamed search must come back as ONE assembled trace
/// tree that names the dead node (an `Open` span that found it
/// unreachable) and the hedge-winning replica (a `Hedge` span whose
/// winner annotation says the backup answered first).
#[test]
fn hedged_search_trace_names_dead_node_and_hedge_winner() {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 4,
        group_capacity: 12,
        replication: 2,
        hedge_budget: Some(Duration::from_millis(10)),
        trace_sample_every: 1,
        ..Default::default()
    });
    let mut client = cluster.client().with_search_page_size(8);
    client.index_files((0..96).map(|i| record(i, (i + 1) << 20)).collect()).unwrap();

    // Pick a (straggler, victim) pair from the placement map such that
    // the race is deterministic in structure: the straggler is a primary
    // somewhere (so a hedge fires), none of the straggler's backups is
    // the victim (so the hedge target is alive and wins), and the victim
    // is a primary somewhere (so the dead node is witnessed at open).
    let rows = placements(&cluster);
    let nodes: Vec<NodeId> = cluster.index_node_ids().to_vec();
    let mut chosen = None;
    'outer: for &straggler in &nodes {
        for &victim in &nodes {
            if straggler == victim {
                continue;
            }
            let straggles = rows.iter().any(|(_, r)| r[0] == straggler);
            let hedges_live =
                rows.iter().filter(|(_, r)| r[0] == straggler).all(|(_, r)| r[1] != victim);
            let victim_primary = rows.iter().any(|(_, r)| r[0] == victim);
            let failover_fast =
                rows.iter().filter(|(_, r)| r[0] == victim).all(|(_, r)| r[1] != straggler);
            if straggles && hedges_live && victim_primary && failover_fast {
                chosen = Some((straggler, victim));
                break 'outer;
            }
        }
    }
    let (straggler, victim) = chosen.expect("4 nodes / R=2 always admit a usable pair");

    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);
    cluster
        .rpc()
        .slowdowns()
        .set(straggler, propeller::sim::Latency::constant(Duration::from_millis(200)));

    let request = SearchRequest::parse("size>0", Timestamp::from_secs(1_000))
        .unwrap()
        .with_limit(40)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let resp = client.search_streamed(&request).unwrap();
    assert!(resp.complete, "replication must absorb the dead node");
    assert!(resp.stats.hedges_fired > 0, "the straggler must trigger a hedge");

    let trace = client.last_trace_id().expect("every request is sampled");
    let tree = client.dump_trace(trace).unwrap();
    tree.check_well_formed().unwrap();

    // One root: the client-lane Request span covering the whole search.
    let roots = tree.find(SpanKind::Request);
    assert_eq!(roots.len(), 1, "one request, one root:\n{}", tree.render());
    assert!(matches!(roots[0].lane, Lane::Client(_)));

    // The dead node is named by the open attempt that found it gone.
    let opens = tree.find(SpanKind::Open);
    let dead_witness = format!("{victim} unreachable");
    assert!(
        opens.iter().any(|s| s.detail.contains(&dead_witness)),
        "no open names the dead node {victim}:\n{}",
        tree.render()
    );

    // The hedge-winning replica is named, and it is not the straggler.
    let hedges = tree.find(SpanKind::Hedge);
    let winner = hedges
        .iter()
        .find(|s| s.detail.contains("(hedge replica)"))
        .unwrap_or_else(|| panic!("no hedge span records a backup win:\n{}", tree.render()));
    assert!(winner.detail.starts_with("winner "));
    assert!(
        !winner.detail.contains(&format!("winner {straggler} ")),
        "the straggler cannot win its own hedge: {}",
        winner.detail
    );

    // Node-side execution shows up under the same tree.
    assert!(!tree.find(SpanKind::Search).is_empty(), "no node-side Search span");
    // And the hedge outcome is also visible in the client's metrics.
    let client_metrics = client.obs().metrics.snapshot();
    assert!(client_metrics.counters[names::HEDGES_FIRED] > 0);
    cluster.shutdown();
}

/// `Cluster::metrics_snapshot` merges every node's registry; histogram
/// buckets merge exactly, so cross-node quantiles come from one merged
/// distribution. Runs in modeled mode so the injected clock (not wall
/// time) produces the latencies.
#[test]
fn metrics_report_merges_histograms_across_nodes() {
    let sim = SimClock::new();
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 4,
        group_capacity: 16,
        sim_clock: Some(sim.clone()),
        charge_network: true,
        trace_sample_every: 0,
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..200).map(|i| record(i, (i + 1) << 10)).collect()).unwrap();

    let request = SearchRequest::parse("size>0", Timestamp::from_secs(10)).unwrap().with_limit(20);
    let searches = 5u64;
    for _ in 0..searches {
        client.search_one_shot(&request).unwrap();
    }

    // The merged snapshot must equal the per-node snapshots folded by
    // hand — counters sum, histogram populations sum.
    let merged = cluster.metrics_snapshot();
    let mut served = 0u64;
    let mut latency_count = 0u64;
    for &node in cluster.index_node_ids() {
        match cluster.rpc().call(node, Request::Metrics) {
            Ok(Response::Metrics(snap)) => {
                served += snap.counters.get(names::SEARCHES_SERVED).copied().unwrap_or(0);
                latency_count +=
                    snap.histograms.get(names::SEARCH_LATENCY).map(|h| h.count).unwrap_or(0);
            }
            other => panic!("{other:?}"),
        }
    }
    assert!(served >= searches, "every search fans out to at least one node");
    assert_eq!(merged.counters[names::SEARCHES_SERVED], served);
    assert_eq!(merged.histograms[names::SEARCH_LATENCY].count, latency_count);

    // Client-lane latencies ride the virtual clock: network costs are
    // charged per message, so p50/p99 are nonzero and purely modeled.
    let mut with_client = merged.clone();
    with_client.merge(&client.obs().metrics.snapshot());
    let h = &with_client.histograms[names::CLIENT_SEARCH_LATENCY];
    assert_eq!(h.count, searches);
    let (p50, p99) = (h.quantile(0.50), h.quantile(0.99));
    assert!(p50 > 0, "modeled network time must be visible");
    assert!(p99 >= p50, "quantiles are monotone");

    // The rendered report carries the merged series.
    let report = cluster.metrics_report();
    assert!(report.contains(names::SEARCHES_SERVED));
    assert!(report.contains(names::SEARCH_LATENCY));
    cluster.shutdown();
}

/// With a zero threshold every search is "slow": each serving node
/// captures the request, its plan, the rendered stats and its share of
/// the span tree into the bounded ring, dumpable cluster-wide.
#[test]
fn slow_query_log_captures_plan_stats_and_spans() {
    let sim = SimClock::new();
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 16,
        sim_clock: Some(sim.clone()),
        trace_sample_every: 1,
        slow_query_threshold: Some(Duration::ZERO),
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..40).map(|i| record(i, 1 << 20)).collect()).unwrap();

    let request = SearchRequest::parse("size>0", Timestamp::from_secs(10)).unwrap().with_limit(10);
    client.search_one_shot(&request).unwrap();

    let slow = cluster.slow_queries();
    assert!(!slow.is_empty(), "a zero threshold captures every search");
    for q in &slow {
        assert!(matches!(q.lane, Lane::Node(_)), "nodes capture their own service time");
        assert!(q.query.contains("Size"), "the predicate is rendered: {}", q.query);
        assert!(!q.plan.is_empty(), "the chosen access path per ACG is kept");
        assert!(q.stats.contains("elapsed"), "full SearchStats rendered: {}", q.stats);
        assert_ne!(q.trace, 0, "sampled requests keep their trace id");
        assert!(!q.spans.is_empty(), "the lane's share of the trace rides along");
    }
    let snap = cluster.metrics_snapshot();
    assert!(snap.counters[names::SLOW_QUERIES] >= slow.len() as u64);
    cluster.shutdown();
}

/// Satellite: `SearchStats::elapsed` stays the max across nodes, but the
/// per-node `(node, elapsed)` breakdown pinpoints who was slow. Structure
/// over a live cluster: one row per contacted node, and `slowest_node`
/// returns the row with the maximum elapsed.
#[test]
fn one_shot_search_reports_per_node_latency_breakdown() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 4, group_capacity: 16, ..Default::default() });
    let mut client = cluster.client();
    client.index_files((0..120).map(|i| record(i, 1 << 20)).collect()).unwrap();

    let request = SearchRequest::parse("size>0", Timestamp::from_secs(10)).unwrap().with_limit(50);
    let resp = client.search_one_shot(&request).unwrap();

    let rows = &resp.stats.node_elapsed;
    assert_eq!(rows.len(), 4, "every contacted node reports a row: {rows:?}");
    let mut ids: Vec<NodeId> = rows.iter().map(|&(n, _)| n).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 4, "one row per node: {rows:?}");
    let (slow_node, slow_elapsed) = resp.stats.slowest_node().unwrap();
    assert!(rows.iter().all(|&(_, d)| d <= slow_elapsed));
    assert!(rows.iter().any(|&(n, _)| n == slow_node));
    assert!(resp.stats.elapsed >= slow_elapsed, "client round trip bounds node service time");
    cluster.shutdown();
}

/// A clock that advances a fixed step on every reading: a node driven by
/// a coarse step measures a deterministically larger service time than a
/// node on a fine step — no wall time, no sleeps.
#[derive(Debug)]
struct TickClock {
    t: AtomicU64,
    step: u64,
}

impl TickClock {
    fn new(step_micros: u64) -> Self {
        TickClock { t: AtomicU64::new(1_000_000), step: step_micros }
    }
}

impl Clock for TickClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.t.fetch_add(self.step, Ordering::SeqCst))
    }

    fn charge(&self, _d: Duration) {}
}

/// Satellite witness, fully deterministic: two Index Nodes on injected
/// ticking clocks. The coarse-clock node's measured service time dwarfs
/// the fine-clock node's, and the absorbed breakdown names it.
#[test]
fn slow_node_witness_is_deterministic_under_injected_clocks() {
    let run = |id: u32, step: u64| -> SearchStats {
        let mut node = IndexNode::new(NodeId::new(id), IndexNodeConfig::default())
            .with_clock(Arc::new(TickClock::new(step)));
        let ops = (0..50).map(|i| propeller::index::IndexOp::Upsert(record(i, 1 << 20))).collect();
        node.handle(Request::IndexBatch {
            acg: AcgId::new(1),
            ops,
            now: Timestamp::from_secs(1),
            ctx: TraceContext::NONE,
        });
        let request =
            SearchRequest::parse("size>0", Timestamp::from_secs(2)).unwrap().with_limit(10);
        match node.handle(Request::Search {
            acgs: vec![AcgId::new(1)],
            request,
            now: Timestamp::from_secs(2),
            ctx: TraceContext::NONE,
        }) {
            Response::SearchHits { stats, .. } => stats,
            other => panic!("{other:?}"),
        }
    };

    // 1 ms per clock reading vs 1 µs per reading.
    let slow = run(7, 1_000);
    let fast = run(8, 1);
    assert_eq!(slow.node_elapsed.len(), 1);
    assert_eq!(slow.node_elapsed[0].0, NodeId::new(7));
    assert!(slow.node_elapsed[0].1 > fast.node_elapsed[0].1);

    let mut merged = fast.clone();
    merged.absorb(slow.clone());
    assert_eq!(merged.node_elapsed.len(), 2, "breakdown keeps both rows");
    let (witness, elapsed) = merged.slowest_node().unwrap();
    assert_eq!(witness, NodeId::new(7), "the coarse-clock node is the slow one");
    assert_eq!(elapsed, slow.node_elapsed[0].1);
    assert_eq!(merged.elapsed, slow.elapsed.max(fast.elapsed), "elapsed stays the max");
}

/// Satellite: the client's route-cache counters, observed through the
/// metrics registry across a real split. Indexing twice through a
/// capacity-bounded cache produces hits, misses and evictions; a
/// maintenance split moves files, and the Master's piggybacked hints
/// invalidate their cached routes on the next resolve.
#[test]
fn route_cache_counters_cover_eviction_and_split_invalidation() {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 1000,
        split_threshold: 50,
        ..Default::default()
    });
    let counters = |c: &propeller::cluster::FileQueryEngine, name: &str| -> u64 {
        c.obs().metrics.snapshot().counters.get(name).copied().unwrap_or(0)
    };

    // A tiny cache under a 120-file working set must evict.
    let mut small = cluster.client().with_route_cache_capacity(8);
    small.index_files((0..120).map(|i| record(i, 1)).collect()).unwrap();
    small.index_files((0..120).map(|i| record(i, 2)).collect()).unwrap();
    assert!(counters(&small, names::ROUTE_CACHE_MISSES) >= 120, "cold cache misses");
    assert!(counters(&small, names::ROUTE_CACHE_EVICTIONS) > 0, "8 slots cannot hold 120 routes");

    // A roomy cache re-used across a split: the second pass hits the
    // cache, then the split's route hints invalidate the moved files.
    let mut roomy = cluster.client();
    roomy.index_files((0..120).map(|i| record(i, 3)).collect()).unwrap();
    roomy.index_files((0..120).map(|i| record(i, 4)).collect()).unwrap();
    assert!(counters(&roomy, names::ROUTE_CACHE_HITS) >= 120, "warm cache hits");
    assert_eq!(counters(&roomy, names::ROUTE_CACHE_INVALIDATIONS), 0);

    let splits = cluster.run_maintenance().unwrap();
    assert!(splits >= 1, "120 files over a 50-file threshold must split");
    // Resolving anything new piggybacks the split's route hints while the
    // moved files' routes are still cached — they get invalidated even
    // though this batch never touches them.
    roomy.index_files((200..210).map(|i| record(i, 9)).collect()).unwrap();
    assert!(
        counters(&roomy, names::ROUTE_CACHE_INVALIDATIONS) > 0,
        "split hints must invalidate moved routes"
    );
    // Invalidated routes re-resolve (or ride the stale-route retry) and
    // the batches still land.
    roomy.index_files((0..120).map(|i| record(i, 5)).collect()).unwrap();
    assert_eq!(roomy.search_text("size>4").unwrap().len(), 130);
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: under concurrent search and ingest, every harvested
    /// trace assembles into a single well-formed tree — one root, no
    /// orphans, children nested inside their parents' windows.
    #[test]
    fn harvested_span_trees_are_well_formed_under_concurrent_search_and_ingest(
        batches in 1usize..4,
        batch_size in 1u64..30,
        searches in 1usize..5,
        limit in 1usize..20,
    ) {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 2,
            group_capacity: 16,
            trace_sample_every: 1,
            ..Default::default()
        });
        let mut seeder = cluster.client();
        seeder.index_files((0..40).map(|i| record(i, (i + 1) << 10)).collect()).unwrap();

        let mut ingest_client = cluster.client();
        let search_client = cluster.client();
        let request = SearchRequest::parse("size>0", Timestamp::from_secs(10))
            .unwrap()
            .with_limit(limit);

        let ingest = std::thread::spawn(move || -> Result<usize, String> {
            let mut checked = 0;
            for b in 0..batches {
                let lo = 1_000 + (b as u64) * batch_size;
                ingest_client
                    .index_files((lo..lo + batch_size).map(|i| record(i, 1 << 12)).collect())
                    .map_err(|e| e.to_string())?;
                let trace = ingest_client.last_trace_id().ok_or("ingest not sampled")?;
                let tree = ingest_client.dump_trace(trace).map_err(|e| e.to_string())?;
                tree.check_well_formed()?;
                checked += 1;
            }
            Ok(checked)
        });
        let search = std::thread::spawn(move || -> Result<usize, String> {
            let mut checked = 0;
            for _ in 0..searches {
                search_client.search_one_shot(&request).map_err(|e| e.to_string())?;
                let trace = search_client.last_trace_id().ok_or("search not sampled")?;
                let tree = search_client.dump_trace(trace).map_err(|e| e.to_string())?;
                tree.check_well_formed()?;
                if tree.find(SpanKind::Search).is_empty() {
                    return Err("a search trace must reach the node lanes".to_string());
                }
                checked += 1;
            }
            Ok(checked)
        });
        let ingested = ingest.join().expect("ingest thread must not panic");
        let searched = search.join().expect("search thread must not panic");
        prop_assert_eq!(ingested.map_err(|e| e.to_string()), Ok(batches));
        prop_assert_eq!(searched.map_err(|e| e.to_string()), Ok(searches));
        cluster.shutdown();
    }
}
