//! Additional property-based coverage: WAL framing, index-op codec,
//! B+-tree/K-D tree invariants under arbitrary inputs, and query-parser
//! robustness.

use propeller::index::{BPlusTree, FileRecord, IndexOp, KdTree, Wal};
use propeller::types::{FileId, InodeAttrs, Timestamp, Value};
use propeller::Query;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        any::<f64>()
            .prop_filter("total order works but NaN breaks eq-tests", |f| !f.is_nan())
            .prop_map(Value::F64),
        "[a-z0-9 _/.-]{0,24}".prop_map(Value::from),
    ]
}

fn arb_record() -> impl Strategy<Value = FileRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec("[a-z]{1,12}", 0..4),
        prop::collection::vec(("[a-z_]{1,10}", arb_value()), 0..4),
    )
        .prop_map(|(file, size, mtime, uid, keywords, custom)| {
            let mut rec = FileRecord::new(
                FileId::new(file),
                InodeAttrs::builder()
                    .size(size)
                    .mtime(Timestamp::from_micros(mtime))
                    .uid(uid)
                    .build(),
            );
            rec.keywords = keywords;
            rec.custom = custom;
            rec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any op encodes and decodes to itself.
    #[test]
    fn index_op_codec_round_trips(rec in arb_record(), remove in prop::bool::ANY) {
        let op = if remove { IndexOp::Remove(rec.file) } else { IndexOp::Upsert(rec) };
        let decoded = IndexOp::decode(&op.encode()).unwrap();
        prop_assert_eq!(decoded, op);
    }

    /// Decoding never panics on arbitrary bytes — it returns an error or a
    /// valid op.
    #[test]
    fn index_op_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = IndexOp::decode(&bytes);
    }

    /// WAL replay returns exactly the appended payloads, in order, for any
    /// payload contents (including empty and binary).
    #[test]
    fn wal_replay_returns_appended_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..32)
    ) {
        let mut wal = Wal::in_memory();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        prop_assert_eq!(wal.replay().unwrap(), payloads);
    }

    /// Appending garbage after valid frames never corrupts the valid
    /// prefix.
    #[test]
    fn wal_valid_prefix_is_stable_under_tail_garbage(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..8),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut wal = Wal::in_memory();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.append_raw_for_test(&garbage).unwrap();
        let replayed = wal.replay().unwrap();
        // The valid frames always survive; garbage may accidentally parse
        // as extra frames but can never alter the prefix.
        prop_assert!(replayed.len() >= payloads.len());
        prop_assert_eq!(&replayed[..payloads.len()], &payloads[..]);
    }

    /// The B+-tree stays ordered and complete under arbitrary insert/remove
    /// interleavings.
    #[test]
    fn btree_iteration_sorted_and_complete(
        ops in prop::collection::vec((any::<u16>(), prop::bool::ANY), 1..400)
    ) {
        let mut tree = BPlusTree::new();
        let mut model = std::collections::BTreeMap::new();
        for (k, insert) in ops {
            if insert {
                tree.insert(k, k);
                model.insert(k, k);
            } else {
                prop_assert_eq!(tree.remove(&k), model.remove(&k));
            }
        }
        let ours: Vec<u16> = tree.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u16> = model.keys().copied().collect();
        prop_assert_eq!(ours, expected);
        prop_assert_eq!(tree.len(), model.len());
    }

    /// K-D range queries agree with linear scans for arbitrary points.
    #[test]
    fn kdtree_range_agrees_with_scan(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150),
        lo in (0.0f64..100.0, 0.0f64..100.0),
        span in (0.0f64..50.0, 0.0f64..50.0),
    ) {
        let mut tree = KdTree::new(2);
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(&[x, y], FileId::new(i as u64));
        }
        let hi = (lo.0 + span.0, lo.1 + span.1);
        let got = tree.range(&[lo.0, lo.1], &[hi.0, hi.1]);
        let mut expected: Vec<FileId> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| x >= lo.0 && x <= hi.0 && y >= lo.1 && y <= hi.1)
            .map(|(i, _)| FileId::new(i as u64))
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// The parser never panics, and parseable queries round-trip through
    /// Display into an equivalent predicate.
    #[test]
    fn query_parser_is_total(text in "[ a-z0-9<>=&|!():*\"._-]{0,48}") {
        let now = Timestamp::from_secs(1_000_000);
        if let Ok(q) = Query::parse(&text, now) {
            let printed = q.predicate.to_string();
            let reparsed = Query::parse(&printed, now);
            prop_assert!(reparsed.is_ok(), "display form must reparse: {printed}");
        }
    }
}
