//! Cross-crate integration tests: the full public API, single-node and
//! cluster, checked against brute-force ground truth.

use propeller::baselines::{BruteForce, CentralDb};
use propeller::storage::SharedStorage;
use propeller::types::{AttrName, FileId, InodeAttrs, Timestamp};
use propeller::{Cluster, ClusterConfig, FileRecord, IndexSpec, Propeller, PropellerConfig, Query};
use std::sync::Arc;

fn record(file: u64, size: u64, mtime_s: u64, uid: u32) -> FileRecord {
    FileRecord::new(
        FileId::new(file),
        InodeAttrs::builder().size(size).mtime(Timestamp::from_secs(mtime_s)).uid(uid).build(),
    )
}

/// The client's route cache is capacity-bounded; evicted routes
/// re-resolve through the Master transparently (updates keep landing in
/// the right groups, searches stay exact).
#[test]
fn bounded_route_cache_evicts_and_re_resolves_correctly() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 2, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client().with_route_cache_capacity(16);
    client.index_files((0..100u64).map(|i| record(i, 1 << 20, i, 0)).collect()).unwrap();
    assert!(client.cached_routes() <= 16, "cache grew past its bound: {}", client.cached_routes());

    // Files 0..84 were evicted along the way. Updating them re-resolves
    // through the Master and still lands in their original ACGs: the
    // update must replace, not duplicate.
    client.index_files((0..50u64).map(|i| record(i, 2 << 20, i, 7)).collect()).unwrap();
    assert!(client.cached_routes() <= 16);
    let hits = client.search_text("uid=7").unwrap();
    assert_eq!(hits.len(), 50, "every updated record found exactly once");
    let all = client.search_text("size>0").unwrap();
    assert_eq!(all.len(), 100, "no duplicates, no losses after eviction");

    // Removal through re-resolved routes works too.
    client.remove_files((0..10).map(FileId::new).collect()).unwrap();
    assert_eq!(client.search_text("size>0").unwrap().len(), 90);

    // Prime 96..100 into the cache, then send a mixed hit/miss batch
    // whose 40 fresh resolutions overflow the 16-route cache: the batch's
    // own cache hits must not be lost mid-resolve.
    client.index_files((96..100u64).map(|i| record(i, 3 << 20, i, 9)).collect()).unwrap();
    let mut batch: Vec<FileRecord> = (96..100u64).map(|i| record(i, 4 << 20, i, 9)).collect();
    batch.extend((200..240u64).map(|i| record(i, 1 << 20, i, 9)));
    client.index_files(batch).unwrap();
    assert_eq!(client.search_text("uid=9").unwrap().len(), 44);
    cluster.shutdown();
}

/// Every query must return exactly what a full scan returns.
#[test]
fn single_node_agrees_with_brute_force_on_every_query() {
    let storage = Arc::new(SharedStorage::new());
    let mut service = Propeller::new(PropellerConfig::default());
    let mut rng_state = 0xDEADBEEFu64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    for i in 0..3_000u64 {
        let size = next() % (64 << 20);
        let mtime = next() % 1_000_000;
        let uid = (next() % 5) as u32;
        let attrs =
            InodeAttrs::builder().size(size).mtime(Timestamp::from_secs(mtime)).uid(uid).build();
        storage.create(&format!("/f{i}"), attrs).unwrap();
        service.index_file(FileRecord::new(FileId::new(i), attrs)).unwrap();
    }
    let brute = BruteForce::new(storage);
    let now = Timestamp::from_secs(2_000_000);
    for text in [
        "size>16m",
        "size<=4k",
        "size>1m & size<32m",
        "uid=3",
        "uid=3 & size>8m",
        "mtime>500000",
        "size>16m | uid=0",
        "!(size>1m)",
        "*",
    ] {
        let q = Query::parse(text, now).unwrap();
        let got = service.search(&q.predicate).unwrap();
        let expected = brute.query(&q.predicate);
        assert_eq!(got, expected, "query {text}");
    }
}

/// Propeller, the centralized baseline and brute force agree on results;
/// they differ only in cost.
#[test]
fn all_three_systems_return_identical_results() {
    let storage = Arc::new(SharedStorage::new());
    let mut service = Propeller::new(PropellerConfig::default());
    let mut db = CentralDb::new();
    for i in 0..1_000u64 {
        let attrs = InodeAttrs::builder().size(i * 4096).mtime(Timestamp::from_secs(i)).build();
        storage.create(&format!("/f{i}"), attrs).unwrap();
        let rec = FileRecord::new(FileId::new(i), attrs).with_keyword(if i % 7 == 0 {
            "seven"
        } else {
            "other"
        });
        service.index_file(rec.clone()).unwrap();
        db.upsert(rec);
    }
    let brute = BruteForce::new(storage);
    let now = Timestamp::from_secs(10_000);
    for text in ["size>1m", "keyword:seven", "keyword:seven & size>100k"] {
        let q = Query::parse(text, now).unwrap();
        let pp = service.search(&q.predicate).unwrap();
        let sql = db.query(&q.predicate);
        assert_eq!(pp, sql, "propeller vs centraldb on {text}");
        if !text.contains("keyword") {
            // Brute force scans shared storage, which has no keywords.
            assert_eq!(pp, brute.query(&q.predicate), "vs brute on {text}");
        }
    }
}

/// The paper's core guarantee: a search observes every acknowledged
/// update, interleaved arbitrarily.
#[test]
fn search_is_always_consistent_with_acknowledged_updates() {
    let mut service = Propeller::new(PropellerConfig::default());
    let mut expected_big = 0usize;
    for i in 0..500u64 {
        let size = if i % 3 == 0 { 20 << 20 } else { 1 << 10 };
        if size > 16 << 20 {
            expected_big += 1;
        }
        service.index_file(record(i, size, i, 0)).unwrap();
        if i % 7 == 0 {
            let hits = service.search_text("size>16m").unwrap();
            assert_eq!(hits.len(), expected_big, "after update {i}");
        }
    }
}

#[test]
fn cluster_matches_single_node_results() {
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 4, group_capacity: 100, ..Default::default() });
    let mut client = cluster.client();
    let mut single = Propeller::new(PropellerConfig::default());
    let records: Vec<FileRecord> =
        (0..2_000u64).map(|i| record(i, (i % 128) << 20, i, (i % 3) as u32)).collect();
    client.index_files(records.clone()).unwrap();
    for r in records {
        single.index_file(r).unwrap();
    }
    for text in ["size>64m", "uid=1 & size>100m", "size<1m"] {
        let q = Query::parse(text, Timestamp::from_secs(10_000)).unwrap();
        let from_cluster = client.search(&q.predicate).unwrap();
        let from_single = single.search(&q.predicate).unwrap();
        assert_eq!(from_cluster, from_single, "query {text}");
    }
    cluster.shutdown();
}

#[test]
fn cluster_survives_maintenance_and_splits_under_load() {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 3,
        group_capacity: 2_000,
        split_threshold: 300,
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..1_000u64).map(|i| record(i, 1 << 20, i, 0)).collect()).unwrap();
    let mut total_splits = 0;
    for _ in 0..4 {
        total_splits += cluster.run_maintenance().unwrap();
    }
    assert!(total_splits >= 1, "oversized groups must split");
    // Nothing lost, nothing duplicated.
    let hits = client.search_text("size>0").unwrap();
    assert_eq!(hits.len(), 1_000);
    cluster.shutdown();
}

#[test]
fn custom_index_round_trip_through_cluster() {
    let cluster = Cluster::start(ClusterConfig::default());
    let mut client = cluster.client();
    client.create_index(IndexSpec::hash("by_uid", AttrName::Uid)).unwrap();
    client.index_files((0..50u64).map(|i| record(i, 1024, 0, (i % 5) as u32)).collect()).unwrap();
    let hits = client.search_text("uid=2").unwrap();
    assert_eq!(hits.len(), 10);
    cluster.shutdown();
}

#[test]
fn removed_files_stay_gone_across_systems() {
    let mut service = Propeller::new(PropellerConfig::default());
    for i in 0..100u64 {
        service.index_file(record(i, 1 << 20, i, 0)).unwrap();
    }
    for i in (0..100u64).step_by(2) {
        service.remove_file(FileId::new(i)).unwrap();
    }
    let hits = service.search_text("size>0").unwrap();
    assert_eq!(hits.len(), 50);
    assert!(hits.iter().all(|f| f.raw() % 2 == 1));
}
