//! Durability integration tests: acknowledged index operations survive an
//! Index Node crash via WAL replay (paper §IV: requests are appended to a
//! write-ahead log before being cached), and committed state survives via
//! LSN-anchored snapshots plus WAL-suffix replay — all the way up to a
//! killed-and-revived node in a real cluster serving its pre-crash hits.

use std::sync::atomic::{AtomicU64, Ordering};

use propeller::cluster::{Cluster, ClusterConfig, Request, Response};
use propeller::index::{AcgIndexGroup, FileRecord, GroupConfig, IndexOp, Wal};
use propeller::query::{Cursor, FanOutPolicy, Hit, SearchRequest, SortKey};
use propeller::types::{AcgId, AttrName, Error, FileId, InodeAttrs, NodeId, Timestamp, Value};
use proptest::prelude::*;

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

fn temp_wal_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("propeller-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("propeller-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn acknowledged_but_uncommitted_ops_survive_crash() {
    let path = temp_wal_path("uncommitted");
    let _ = std::fs::remove_file(&path);
    // Phase 1: enqueue (acknowledge) ops but never commit, then "crash"
    // by dropping the group.
    {
        let wal = Wal::open(&path).unwrap();
        let mut group =
            AcgIndexGroup::new(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() });
        for i in 0..100 {
            group.enqueue(IndexOp::Upsert(record(i, i * 1024)), Timestamp::EPOCH).unwrap();
        }
        assert_eq!(group.pending_ops(), 100);
        assert_eq!(group.len(), 0, "nothing committed before the crash");
        // Drop without commit = crash.
    }
    // Phase 2: recover from the WAL.
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 100);
    assert_eq!(group.len(), 100);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(42 * 1024)), vec![FileId::new(42)]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn committed_prefix_plus_uncommitted_tail_recovers_exactly() {
    let path = temp_wal_path("mixed");
    let _ = std::fs::remove_file(&path);
    {
        let wal = Wal::open(&path).unwrap();
        let mut group =
            AcgIndexGroup::new(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() });
        for i in 0..50 {
            group.enqueue(IndexOp::Upsert(record(i, 1000)), Timestamp::EPOCH).unwrap();
        }
        group.commit(Timestamp::EPOCH).unwrap();
        for i in 50..80 {
            group.enqueue(IndexOp::Upsert(record(i, 2000)), Timestamp::EPOCH).unwrap();
        }
        // Crash with 50 committed and 30 uncommitted ops in the WAL.
    }
    // A file-backed WAL retains committed frames until a snapshot covers
    // them, so recovery replays BOTH the committed prefix and the
    // uncommitted tail — before this durability layer existed, the commit
    // truncated the log and the 50 committed ops were silently lost here
    // (a revived node came back empty).
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 80);
    assert_eq!(group.len(), 80);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(1000)).len(), 50);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(2000)).len(), 30);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_final_frame_is_discarded_on_recovery() {
    let path = temp_wal_path("torn");
    let _ = std::fs::remove_file(&path);
    {
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..10 {
            wal.append(&IndexOp::Upsert(record(i, 7)).encode()).unwrap();
        }
        wal.sync().unwrap();
    }
    // Simulate a torn write: append garbage that claims a huge length.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF, 0xFF, 0x00, 0x00, 1, 2, 3, 4, 9, 9]).unwrap();
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 10, "valid prefix only");
    assert_eq!(group.len(), 10);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ops_acknowledged_after_a_torn_tail_survive_the_next_crash() {
    // Crash #1 leaves a torn frame at the WAL's tail. The log is reopened
    // and more ops are acknowledged (appended) before crash #2. Recovery
    // must replay ALL acknowledged ops — the 10 before the torn frame and
    // the 10 after the reopen. `Wal::open` truncates the torn residue to
    // the valid prefix, so the new appends land where replay can reach
    // them; before the fix the garbage stayed in the file, the new frames
    // sat unreachable behind it, and this recovery came up 10 ops short.
    let path = temp_wal_path("torn-then-append");
    let _ = std::fs::remove_file(&path);
    {
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..10 {
            wal.append(&IndexOp::Upsert(record(i, 7)).encode()).unwrap();
        }
        wal.sync().unwrap();
        // Crash #1, mid-append of the 11th frame.
    }
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF, 0xFF, 0x00, 0x00, 1, 2, 3, 4, 9, 9]).unwrap();
    }
    {
        // The node reopens its log and keeps acknowledging ops.
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entry_count(), 10, "valid prefix counted on reopen");
        for i in 100..110 {
            wal.append(&IndexOp::Upsert(record(i, 9)).encode()).unwrap();
        }
        wal.sync().unwrap();
        // Crash #2.
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 20, "every acknowledged op is replayed, across both crashes");
    assert_eq!(group.len(), 20);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(9)).len(), 10);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(7)).len(), 10);
    let _ = std::fs::remove_file(&path);
}

/// The committed record set of a group, sorted by file id — the state two
/// recoveries are compared on.
fn state_of(group: &AcgIndexGroup) -> Vec<FileRecord> {
    let mut records: Vec<FileRecord> = group.records().cloned().collect();
    records.sort_by_key(|r| r.file);
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The durability core invariant, across random op histories with
    /// random commit and snapshot points: recovering from
    /// (snapshot + WAL suffix) ≡ recovering from the full WAL ≡ the
    /// in-memory state of a group that never crashed.
    #[test]
    fn snapshot_plus_suffix_replay_equals_full_replay_and_memory(
        steps in prop::collection::vec((0u8..10, 0u64..40, 1u64..1000), 1..100),
        snap_points in prop::collection::vec(0usize..1000, 0..3),
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = temp_dir(&format!("prop-{case}"));
        let snapped_cfg = || GroupConfig {
            wal: Wal::open(dir.join("snapped.wal")).unwrap(),
            snapshot_dir: Some(dir.clone()),
            ..GroupConfig::default()
        };
        let logged_cfg = || GroupConfig {
            wal: Wal::open(dir.join("logged.wal")).unwrap(),
            ..GroupConfig::default()
        };
        let acg = AcgId::new(1);
        let snap_at: std::collections::HashSet<usize> =
            snap_points.iter().map(|ix| ix % steps.len()).collect();
        let t = Timestamp::EPOCH;

        // Three groups fed the identical acknowledged history: one with
        // snapshots, one with only its WAL, one in memory that never
        // crashes (the oracle).
        let mut snapped = AcgIndexGroup::new(acg, snapped_cfg());
        let mut logged = AcgIndexGroup::new(acg, logged_cfg());
        let mut memory = AcgIndexGroup::new(acg, GroupConfig::default());
        for (i, &(kind, file, size)) in steps.iter().enumerate() {
            let op = if kind < 7 {
                IndexOp::Upsert(record(file, size))
            } else {
                IndexOp::Remove(FileId::new(file))
            };
            for g in [&mut snapped, &mut logged, &mut memory] {
                g.enqueue(op.clone(), t).unwrap();
                if kind % 3 == 0 {
                    g.commit(t).unwrap();
                }
            }
            if snap_at.contains(&i) {
                snapped.commit(t).unwrap();
                snapped.snapshot().unwrap().unwrap();
            }
        }
        // The oracle observes every acknowledged op; the crashed groups
        // must reassemble exactly this.
        memory.commit(t).unwrap();
        drop(snapped);
        drop(logged);

        let (snapped, report) = AcgIndexGroup::recover_with_report(acg, snapped_cfg()).unwrap();
        let (logged, full_replayed) = AcgIndexGroup::recover(acg, logged_cfg()).unwrap();
        prop_assert_eq!(full_replayed, steps.len(), "full replay covers every acknowledged op");
        if !snap_at.is_empty() {
            prop_assert!(report.snapshot_lsn.is_some(), "snapshot anchor used: {:?}", report);
            prop_assert!(
                report.replayed_ops < steps.len() || report.snapshot_records == 0,
                "suffix replay is shorter than the history: {:?}",
                report
            );
        }
        prop_assert_eq!(state_of(&snapped), state_of(&memory));
        prop_assert_eq!(state_of(&logged), state_of(&memory));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Boots a durable cluster over `dir` with an aggressive snapshot trigger
/// and a namespace whose sizes fall with file id (deterministic sort
/// order), returning the cluster and the indexed records.
fn durable_cluster(dir: &std::path::Path, nodes: usize, files: u64) -> (Cluster, Vec<FileRecord>) {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: nodes,
        group_capacity: 25,
        // Snapshot every ~10 logged ops: the revival paths below must
        // exercise snapshot + suffix recovery, not just WAL replay.
        snapshot_wal_ops: 10,
        data_dir: Some(dir.to_path_buf()),
        ..Default::default()
    });
    let records: Vec<FileRecord> = (0..files).map(|i| record(i, (files - i) << 10)).collect();
    let mut client = cluster.client();
    client.index_files(records.clone()).unwrap();
    (cluster, records)
}

fn kill(cluster: &Cluster, victim: NodeId) {
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);
}

#[test]
fn killed_and_revived_node_serves_its_precrash_state_from_disk() {
    let dir = temp_dir("revive-e2e");
    let (mut cluster, _records) = durable_cluster(&dir, 3, 300);
    let client = cluster.client();
    let request = SearchRequest::parse("size>0", Timestamp::from_secs(1))
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let baseline = client.search_with(&request).unwrap();
    assert!(baseline.complete);
    assert_eq!(baseline.hits.len(), 300);

    // The victim's durable directory really holds snapshots (the
    // aggressive trigger fired through the IndexBatch path).
    let victim = cluster.index_node_ids()[0];
    let victim_dir = dir.join(format!("node-{}", victim.raw()));
    let snaps = std::fs::read_dir(&victim_dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .count();
    assert!(snaps > 0, "snapshot trigger never fired under {victim_dir:?}");

    // Kill and revive WITHOUT re-indexing: the node must restore every
    // committed record from snapshot + WAL suffix on its own.
    kill(&cluster, victim);
    assert!(client.search_with(&request).is_err(), "dead node fails require-all");
    cluster.revive_index_node(victim);
    let revived = client.search_with(&request).unwrap();
    assert!(revived.complete);
    assert_eq!(revived.hits, baseline.hits, "revival must be byte-identical");

    // The streamed (session) path agrees too.
    let topk = request.clone().with_limit(64);
    let streamed = client.search_streamed(&topk).unwrap();
    let one_shot = client.search_one_shot(&topk).unwrap();
    assert_eq!(streamed.hits, one_shot.hits);
    assert_eq!(&streamed.hits[..], &revived.hits[..64]);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn whole_cluster_restart_recovers_every_node_from_the_data_dir() {
    let dir = temp_dir("restart-e2e");
    let request = SearchRequest::parse("size>0", Timestamp::from_secs(1))
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let baseline = {
        let (cluster, _) = durable_cluster(&dir, 2, 200);
        let baseline = cluster.client().search_with(&request).unwrap();
        cluster.shutdown();
        baseline
    };
    assert_eq!(baseline.hits.len(), 200);
    // A brand-new cluster over the same data dir restores all index-node
    // state. (The Master's placements are rebuilt by re-resolving: client
    // routing metadata is not what this layer persists, so searches go
    // through LocateAcgs — which the revived nodes answer from disk.)
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 25,
        snapshot_wal_ops: 10,
        data_dir: Some(dir.clone()),
        ..Default::default()
    });
    // Re-register placements with the Master by replaying the heartbeat
    // round: revived nodes report their recovered ACGs.
    cluster.run_maintenance().unwrap();
    let restarted = cluster.client().search_with(&request).unwrap();
    assert_eq!(restarted.hits, baseline.hits);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_search_session_survives_node_revival_without_losing_hits() {
    // The `AllowPartial` silent-loss hole: a restarted node dropped its
    // session table AND its data, so a client's transparent reopen found
    // an empty node and the resumed stream silently lost that node's
    // remaining hits. With durable revival the reopen must find the data
    // and the concatenated pages must equal the uncrashed answer.
    let dir = temp_dir("session-revive");
    let (mut cluster, _) = durable_cluster(&dir, 2, 120);
    let victim = cluster.index_node_ids()[0];
    let acgs: Vec<AcgId> = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
        Ok(Response::Located(rows)) => {
            rows.into_iter().filter(|(_, n)| n.contains(&victim)).map(|(a, _)| a).collect()
        }
        other => panic!("{other:?}"),
    };
    assert!(!acgs.is_empty());
    let now = Timestamp::from_secs(5);
    let request = SearchRequest::parse("size>0", now)
        .unwrap()
        .with_limit(60)
        .sorted_by(SortKey::Descending(AttrName::Size));

    // Uncrashed baseline: the node's one-shot answer for its ACGs.
    let baseline = match cluster.rpc().call(
        victim,
        Request::Search {
            acgs: acgs.clone(),
            request: request.clone(),
            now,
            ctx: propeller_obs::TraceContext::NONE,
        },
    ) {
        Ok(Response::SearchHits { hits, .. }) => hits,
        other => panic!("{other:?}"),
    };

    // Open a streamed session, pull one page, then crash the node.
    let open = Request::OpenSearch {
        acgs: acgs.clone(),
        request: request.clone(),
        client: 1,
        page: 15,
        now,
        ctx: propeller_obs::TraceContext::NONE,
    };
    let (_session, first) = match cluster.rpc().call(victim, open) {
        Ok(Response::SearchPage { session, hits, exhausted, .. }) => {
            assert!(!exhausted);
            (session, hits)
        }
        other => panic!("{other:?}"),
    };
    kill(&cluster, victim);
    cluster.revive_index_node(victim);

    // The revived node no longer knows the session...
    let expired = cluster.rpc().call(
        victim,
        Request::PullHits { session: _session, page: 15, ctx: propeller_obs::TraceContext::NONE },
    );
    assert!(
        matches!(expired, Err(Error::SearchSessionExpired { .. })),
        "revived node must report the session expired, got {expired:?}"
    );
    // ...so the client's transparent-reopen protocol kicks in: resume
    // after the last received hit with the remaining entitlement. Before
    // durable revival this reopened over an EMPTY node and returned
    // nothing — the stream silently lost the rest of the node's hits.
    let resume = request
        .clone()
        .with_limit(60 - first.len())
        .after(Cursor::after(first.last().expect("first page non-empty")));
    let mut all: Vec<Hit> = first;
    let reopen = Request::OpenSearch {
        acgs: acgs.clone(),
        request: resume,
        client: 1,
        page: 15,
        now,
        ctx: propeller_obs::TraceContext::NONE,
    };
    let (session, hits, mut exhausted) = match cluster.rpc().call(victim, reopen) {
        Ok(Response::SearchPage { session, hits, exhausted, .. }) => (session, hits, exhausted),
        other => panic!("{other:?}"),
    };
    all.extend(hits);
    while !exhausted {
        match cluster.rpc().call(
            victim,
            Request::PullHits { session, page: 15, ctx: propeller_obs::TraceContext::NONE },
        ) {
            Ok(Response::SearchPage { hits, exhausted: done, .. }) => {
                all.extend(hits);
                exhausted = done;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(all, baseline, "reopened session over the revived node loses nothing");

    // And the full client-side streamed path is whole again under
    // AllowPartial — no silently shortened stream.
    let client = cluster.client();
    let cluster_req = SearchRequest::parse("size>0", now)
        .unwrap()
        .with_limit(80)
        .sorted_by(SortKey::Descending(AttrName::Size))
        .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 });
    let streamed = client.search_streamed(&cluster_req).unwrap();
    assert!(streamed.complete);
    assert_eq!(streamed.hits.len(), 80);
    let one_shot = client.search_one_shot(&cluster_req).unwrap();
    assert_eq!(streamed.hits, one_shot.hits);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_preserves_removals_and_replacements() {
    let path = temp_wal_path("removals");
    let _ = std::fs::remove_file(&path);
    {
        let wal = Wal::open(&path).unwrap();
        let mut group =
            AcgIndexGroup::new(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() });
        group.enqueue(IndexOp::Upsert(record(1, 100)), Timestamp::EPOCH).unwrap();
        group.enqueue(IndexOp::Upsert(record(2, 100)), Timestamp::EPOCH).unwrap();
        group.enqueue(IndexOp::Remove(FileId::new(1)), Timestamp::EPOCH).unwrap();
        group.enqueue(IndexOp::Upsert(record(2, 999)), Timestamp::EPOCH).unwrap();
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 4);
    assert_eq!(group.len(), 1);
    assert!(group.lookup_eq(&AttrName::Size, &Value::U64(100)).is_empty());
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(999)), vec![FileId::new(2)]);
    let _ = std::fs::remove_file(&path);
}
