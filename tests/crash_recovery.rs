//! Durability integration tests: acknowledged index operations survive an
//! Index Node crash via WAL replay (paper §IV: requests are appended to a
//! write-ahead log before being cached).

use propeller::index::{AcgIndexGroup, FileRecord, GroupConfig, IndexOp, Wal};
use propeller::types::{AcgId, AttrName, FileId, InodeAttrs, Timestamp, Value};

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

fn temp_wal_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("propeller-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

#[test]
fn acknowledged_but_uncommitted_ops_survive_crash() {
    let path = temp_wal_path("uncommitted");
    let _ = std::fs::remove_file(&path);
    // Phase 1: enqueue (acknowledge) ops but never commit, then "crash"
    // by dropping the group.
    {
        let wal = Wal::open(&path).unwrap();
        let mut group =
            AcgIndexGroup::new(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() });
        for i in 0..100 {
            group.enqueue(IndexOp::Upsert(record(i, i * 1024)), Timestamp::EPOCH).unwrap();
        }
        assert_eq!(group.pending_ops(), 100);
        assert_eq!(group.len(), 0, "nothing committed before the crash");
        // Drop without commit = crash.
    }
    // Phase 2: recover from the WAL.
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 100);
    assert_eq!(group.len(), 100);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(42 * 1024)), vec![FileId::new(42)]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn committed_prefix_plus_uncommitted_tail_recovers_exactly() {
    let path = temp_wal_path("mixed");
    let _ = std::fs::remove_file(&path);
    {
        let wal = Wal::open(&path).unwrap();
        let mut group =
            AcgIndexGroup::new(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() });
        for i in 0..50 {
            group.enqueue(IndexOp::Upsert(record(i, 1000)), Timestamp::EPOCH).unwrap();
        }
        group.commit(Timestamp::EPOCH).unwrap(); // WAL truncated here
        for i in 50..80 {
            group.enqueue(IndexOp::Upsert(record(i, 2000)), Timestamp::EPOCH).unwrap();
        }
        // Crash with 30 uncommitted ops in the WAL.
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    // The committed prefix was applied before the crash and its WAL frames
    // truncated: recovery only holds the uncommitted tail. An Index Node
    // restores the committed state from its persisted index files; here we
    // verify the WAL contract precisely.
    assert_eq!(replayed, 30);
    assert_eq!(group.len(), 30);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(2000)).len(), 30);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_final_frame_is_discarded_on_recovery() {
    let path = temp_wal_path("torn");
    let _ = std::fs::remove_file(&path);
    {
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..10 {
            wal.append(&IndexOp::Upsert(record(i, 7)).encode()).unwrap();
        }
        wal.sync().unwrap();
    }
    // Simulate a torn write: append garbage that claims a huge length.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF, 0xFF, 0x00, 0x00, 1, 2, 3, 4, 9, 9]).unwrap();
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 10, "valid prefix only");
    assert_eq!(group.len(), 10);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ops_acknowledged_after_a_torn_tail_survive_the_next_crash() {
    // Crash #1 leaves a torn frame at the WAL's tail. The log is reopened
    // and more ops are acknowledged (appended) before crash #2. Recovery
    // must replay ALL acknowledged ops — the 10 before the torn frame and
    // the 10 after the reopen. `Wal::open` truncates the torn residue to
    // the valid prefix, so the new appends land where replay can reach
    // them; before the fix the garbage stayed in the file, the new frames
    // sat unreachable behind it, and this recovery came up 10 ops short.
    let path = temp_wal_path("torn-then-append");
    let _ = std::fs::remove_file(&path);
    {
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..10 {
            wal.append(&IndexOp::Upsert(record(i, 7)).encode()).unwrap();
        }
        wal.sync().unwrap();
        // Crash #1, mid-append of the 11th frame.
    }
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF, 0xFF, 0x00, 0x00, 1, 2, 3, 4, 9, 9]).unwrap();
    }
    {
        // The node reopens its log and keeps acknowledging ops.
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entry_count(), 10, "valid prefix counted on reopen");
        for i in 100..110 {
            wal.append(&IndexOp::Upsert(record(i, 9)).encode()).unwrap();
        }
        wal.sync().unwrap();
        // Crash #2.
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 20, "every acknowledged op is replayed, across both crashes");
    assert_eq!(group.len(), 20);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(9)).len(), 10);
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(7)).len(), 10);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovery_preserves_removals_and_replacements() {
    let path = temp_wal_path("removals");
    let _ = std::fs::remove_file(&path);
    {
        let wal = Wal::open(&path).unwrap();
        let mut group =
            AcgIndexGroup::new(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() });
        group.enqueue(IndexOp::Upsert(record(1, 100)), Timestamp::EPOCH).unwrap();
        group.enqueue(IndexOp::Upsert(record(2, 100)), Timestamp::EPOCH).unwrap();
        group.enqueue(IndexOp::Remove(FileId::new(1)), Timestamp::EPOCH).unwrap();
        group.enqueue(IndexOp::Upsert(record(2, 999)), Timestamp::EPOCH).unwrap();
    }
    let wal = Wal::open(&path).unwrap();
    let (group, replayed) =
        AcgIndexGroup::recover(AcgId::new(1), GroupConfig { wal, ..GroupConfig::default() })
            .unwrap();
    assert_eq!(replayed, 4);
    assert_eq!(group.len(), 1);
    assert!(group.lookup_eq(&AttrName::Size, &Value::U64(100)).is_empty());
    assert_eq!(group.lookup_eq(&AttrName::Size, &Value::U64(999)), vec![FileId::new(2)]);
    let _ = std::fs::remove_file(&path);
}
