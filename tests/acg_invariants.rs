//! Property-based tests of the design invariants DESIGN.md commits to:
//! partition balance and coverage, clustering exactness, ACG weak
//! consistency, and executor-vs-scan equivalence.

use propeller::acg::{bisect, cluster_components, AcgGraph, ClusteringConfig, PartitionConfig};
use propeller::types::{FileId, InodeAttrs, Timestamp};
use propeller::{FileRecord, Propeller, PropellerConfig, Query};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = AcgGraph> {
    // Up to 120 edges over up to 60 vertices, arbitrary weights 1..20.
    prop::collection::vec((0u64..60, 0u64..60, 1u64..20), 1..120).prop_map(|edges| {
        let mut g = AcgGraph::new();
        for (a, b, w) in edges {
            g.add_edge(FileId::new(a), FileId::new(b), w);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bisection covers every vertex exactly once and respects the balance
    /// ceiling whenever both sides are non-trivial.
    #[test]
    fn bisection_is_a_partition(g in arbitrary_graph(), seed in 0u64..1000) {
        let cfg = PartitionConfig { seed, ..PartitionConfig::default() };
        let b = bisect(&g, &cfg);
        let mut all: Vec<FileId> = b.left.iter().chain(&b.right).copied().collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), g.vertex_count());
        prop_assert_eq!(b.left.len() + b.right.len(), g.vertex_count());
        if g.vertex_count() >= 2 {
            prop_assert!(!b.left.is_empty());
            prop_assert!(!b.right.is_empty());
            let ceiling = ((1.0 + cfg.epsilon) * g.vertex_count() as f64 / 2.0).ceil() as usize;
            prop_assert!(b.left.len().max(b.right.len()) <= ceiling.max(1));
        }
    }

    /// The reported cut weight always equals a manual recount.
    #[test]
    fn cut_weight_is_exact(g in arbitrary_graph(), seed in 0u64..1000) {
        let b = bisect(&g, &PartitionConfig { seed, ..PartitionConfig::default() });
        let left: std::collections::HashSet<FileId> = b.left.iter().copied().collect();
        let manual: u64 = g
            .edges()
            .filter(|(s, d, _)| left.contains(s) != left.contains(d))
            .map(|(_, _, w)| w)
            .sum();
        prop_assert_eq!(b.cut_weight, manual);
    }

    /// Clustering never exceeds the cap, never loses or duplicates a file.
    #[test]
    fn clustering_covers_exactly(g in arbitrary_graph(), cap in 3usize..40) {
        let groups = cluster_components(&g, &ClusteringConfig::with_max_files(cap));
        let mut all: Vec<FileId> = groups.iter().flatten().copied().collect();
        all.sort();
        let mut expected: Vec<FileId> = g.vertices().collect();
        expected.sort();
        prop_assert_eq!(all, expected);
        prop_assert!(groups.iter().all(|p| p.len() <= cap));
    }

    /// ACG loss must never affect search correctness — only performance
    /// (the paper's weak-consistency argument for ACGs).
    #[test]
    fn dropping_acg_flushes_never_changes_search_results(
        sizes in prop::collection::vec(0u64..(64 << 20), 1..60),
        flush in prop::bool::ANY,
    ) {
        let build = |do_flush: bool| {
            let mut service = Propeller::new(PropellerConfig::default());
            for (i, &size) in sizes.iter().enumerate() {
                service
                    .index_file(FileRecord::new(
                        FileId::new(i as u64),
                        InodeAttrs::builder().size(size).build(),
                    ))
                    .unwrap();
            }
            if do_flush {
                // Capture some causality and flush it.
                let pid = propeller::types::ProcessId::new(1);
                for (i, _) in sizes.iter().enumerate().take(5) {
                    service.observe_open(
                        pid,
                        FileId::new(i as u64),
                        propeller::types::OpenMode::ReadWrite,
                    );
                }
                service.end_process(pid);
                let _ = service.flush_acg();
            }
            service.search_text("size>16m").unwrap()
        };
        prop_assert_eq!(build(flush), build(!flush));
    }

    /// The planner's access paths always produce exactly the scan answer.
    #[test]
    fn executor_equals_scan_on_random_data(
        rows in prop::collection::vec((0u64..(32 << 20), 0u64..100_000u64, 0u32..4), 1..80),
        qsel in 0usize..6,
    ) {
        let mut service = Propeller::new(PropellerConfig::default());
        for (i, &(size, mtime, uid)) in rows.iter().enumerate() {
            service
                .index_file(FileRecord::new(
                    FileId::new(i as u64),
                    InodeAttrs::builder()
                        .size(size)
                        .mtime(Timestamp::from_secs(mtime))
                        .uid(uid)
                        .build(),
                ))
                .unwrap();
        }
        let queries = [
            "size>1m",
            "size>1m & size<16m",
            "uid=2",
            "uid=2 & size>4m",
            "size<=0",
            "*",
        ];
        let text = queries[qsel];
        let q = Query::parse(text, Timestamp::from_secs(1_000_000)).unwrap();
        let got = service.search(&q.predicate).unwrap();
        let expected: Vec<FileId> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(size, _, uid))| match qsel {
                0 => size > 1 << 20,
                1 => size > 1 << 20 && size < 16 << 20,
                2 => uid == 2,
                3 => uid == 2 && size > 4 << 20,
                4 => false,
                _ => true,
            })
            .map(|(i, _)| FileId::new(i as u64))
            .collect();
        prop_assert_eq!(got, expected, "query {}", text);
    }
}
