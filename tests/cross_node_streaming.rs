//! Cluster-level coverage for the **cross-node streaming top-k cutoff**:
//! the streamed session protocol (`OpenSearch`/`PullHits`/`CloseSearch`
//! driven by the client's cluster-wide k-way merge) must return hits
//! byte-identical to the one-shot k-per-node exchange — across random
//! predicates, sorts, limits, node counts and page sizes — while shipping
//! measurably fewer hits over the wire, and must degrade safely when
//! sessions are evicted, nodes die mid-stream, or ACGs split mid-pull.

use propeller::cluster::{Cluster, ClusterConfig, Request, Response};
use propeller::query::{run_local_search, Hit, SearchRequest, SortKey};
use propeller::types::{AttrName, Error, FileId, InodeAttrs, NodeId, Timestamp, Value};
use propeller::{FanOutPolicy, FileRecord};
use proptest::prelude::*;

fn now() -> Timestamp {
    Timestamp::from_secs(1_000)
}

fn record(file: u64, size: u64, mtime: u64, uid: u32) -> FileRecord {
    FileRecord::new(
        FileId::new(file),
        InodeAttrs::builder().size(size).mtime(Timestamp::from_micros(mtime)).uid(uid).build(),
    )
}

/// Hits come back ACG-tagged from the cluster; the brute-force oracle
/// runs untagged.
fn untagged(hits: &[Hit]) -> Vec<Hit> {
    hits.iter().map(|h| Hit { acg: None, ..h.clone() }).collect()
}

/// Records with attribute values drawn from small ranges so random
/// comparisons actually split the data set.
fn arb_records() -> impl Strategy<Value = Vec<FileRecord>> {
    prop::collection::vec((0u64..250, 0u64..250, 0u64..4), 1..120).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (size, mtime, uid))| record(i as u64, size, mtime, uid as u32))
            .collect()
    })
}

fn arb_leaf() -> BoxedStrategy<propeller::query::Predicate> {
    use propeller::query::{CompareOp, Predicate};
    (0u64..3, 0u64..6, 0u64..250)
        .prop_map(|(attr, op, v)| {
            let attr = match attr {
                0 => AttrName::Size,
                1 => AttrName::Mtime,
                _ => AttrName::Uid,
            };
            let op = match op {
                0 => CompareOp::Eq,
                1 => CompareOp::Ne,
                2 => CompareOp::Lt,
                3 => CompareOp::Le,
                4 => CompareOp::Gt,
                _ => CompareOp::Ge,
            };
            Predicate::cmp(attr, op, Value::U64(v))
        })
        .boxed()
}

fn arb_request() -> impl Strategy<Value = SearchRequest> {
    use propeller::query::Predicate;
    let pred = prop_oneof![
        arb_leaf(),
        prop::collection::vec(arb_leaf(), 1..3).prop_map(Predicate::And),
        prop::collection::vec(arb_leaf(), 1..3).prop_map(Predicate::Or),
    ];
    let sort = prop_oneof![
        (0u64..1).prop_map(|_| SortKey::FileId),
        (0u64..2, prop::bool::ANY).prop_map(|(attr, desc)| {
            let attr = if attr == 0 { AttrName::Size } else { AttrName::Mtime };
            if desc {
                SortKey::Descending(attr)
            } else {
                SortKey::Ascending(attr)
            }
        }),
    ];
    let limit = prop_oneof![(0u64..1).prop_map(|_| None), (1usize..60).prop_map(Some)];
    (pred, sort, limit).prop_map(|(pred, sort, limit)| {
        let mut req = SearchRequest::new(pred).sorted_by(sort);
        if let Some(k) = limit {
            req = req.with_limit(k);
        }
        req
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline equivalence: across random data sets, predicates,
    /// sorts, limits, node counts and page sizes, the streamed session
    /// protocol returns **byte-identical** hits (and the same
    /// completeness marker and continuation cursor) as the one-shot
    /// exchange, and both agree with a brute-force linear scan.
    #[test]
    fn streamed_equals_one_shot_equals_brute_force(
        records in arb_records(),
        req in arb_request(),
        nodes in 1usize..4,
        page in prop_oneof![
            (0u64..1).prop_map(|_| 1usize),
            (0u64..1).prop_map(|_| 3usize),
            (0u64..1).prop_map(|_| 16usize),
            (0u64..1).prop_map(|_| 256usize),
        ],
    ) {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: nodes,
            group_capacity: 24, // several ACGs per node
            ..ClusterConfig::default()
        });
        let mut client = cluster.client().with_search_page_size(page);
        client.index_files(records.clone()).unwrap();

        let one_shot = client.search_one_shot(&req).unwrap();
        let streamed = client.search_streamed(&req).unwrap();
        prop_assert_eq!(&streamed.hits, &one_shot.hits, "streamed vs one-shot hits");
        prop_assert_eq!(streamed.complete, one_shot.complete);
        prop_assert_eq!(&streamed.cursor, &one_shot.cursor, "continuation cursors agree");

        let brute = run_local_search(records, &req);
        prop_assert_eq!(untagged(&streamed.hits), untagged(&brute.hits), "streamed vs brute");

        // The default dispatcher picks one of the two paths; either way
        // the answer is the same.
        let dispatched = client.search_with(&req).unwrap();
        prop_assert_eq!(&dispatched.hits, &one_shot.hits);
        cluster.shutdown();
    }
}

#[test]
fn streamed_topk_ships_fewer_hits_than_k_times_nodes() {
    // Sizes fall with file id, and the Master fills ACGs in arrival
    // order with round-robin placement — so the whole hot range (the
    // global top-k by size) lands on the first node while the other
    // three hold strictly colder files. The one-shot exchange still
    // ships k hits from *every* node; the streamed merge must pull the
    // hot node to completion but leave the cold nodes at ~one page.
    let nodes = 4usize;
    let per_node = 100u64;
    let k = 100usize;
    let page = 16usize;
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: nodes,
        group_capacity: per_node as usize,
        ..ClusterConfig::default()
    });
    let mut client = cluster.client().with_search_page_size(page);
    let total = per_node * nodes as u64;
    let records: Vec<FileRecord> = (0..total).map(|i| record(i, (total - i) << 20, i, 0)).collect();
    client.index_files(records).unwrap();

    let req = SearchRequest::parse("size>0", now())
        .unwrap()
        .with_limit(k)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let one_shot = client.search_one_shot(&req).unwrap();
    assert_eq!(one_shot.hits.len(), k);
    assert_eq!(
        one_shot.stats.hits_shipped,
        k * nodes,
        "the one-shot exchange ships k hits from every node"
    );

    let streamed = client.search_streamed(&req).unwrap();
    assert_eq!(streamed.hits, one_shot.hits, "same answer, different wire traffic");
    assert!(
        streamed.stats.hits_shipped < k * nodes / 2,
        "cold nodes must stay at ~one page: shipped {} of the one-shot {}",
        streamed.stats.hits_shipped,
        k * nodes
    );
    assert!(
        streamed.stats.node_hits_unsent > 0,
        "the hits the cold nodes never computed are witnessed"
    );
    assert!(
        streamed.stats.pages_pulled > nodes,
        "the hot node needed several pulls, {} pages total",
        streamed.stats.pages_pulled
    );
    cluster.shutdown();
}

#[test]
fn dead_node_degrades_streamed_search_per_fan_out_policy() {
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 3,
        group_capacity: 50,
        ..ClusterConfig::default()
    });
    let mut client = cluster.client().with_search_page_size(8);
    let records: Vec<FileRecord> = (0..300u64).map(|i| record(i, (i + 1) << 20, i, 0)).collect();
    client.index_files(records).unwrap();

    let victim = cluster.index_node_ids()[0];
    let victim_acgs: Vec<propeller::types::AcgId> =
        match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs).unwrap() {
            Response::Located(rows) => {
                let mut acgs: Vec<_> =
                    rows.into_iter().filter(|(_, r)| r.contains(&victim)).map(|(a, _)| a).collect();
                acgs.sort_unstable();
                acgs
            }
            other => panic!("{other:?}"),
        };
    cluster.rpc().call(victim, Request::Shutdown).unwrap();
    cluster.rpc().deregister(victim);

    // require_all: the dead node fails the streamed search outright.
    let req = SearchRequest::parse("size>0", now())
        .unwrap()
        .with_limit(50)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let err = client.search_streamed(&req);
    assert!(matches!(err, Err(Error::NodeUnavailable(n)) if n == victim), "{err:?}");

    // allow_partial: the survivors stream their hits, the response is
    // labelled incomplete, and — as for one-shot partial pages — no
    // continuation cursor is handed out.
    let req = req.with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 1 });
    let partial = client.search_streamed(&req).unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.unreachable, victim_acgs);
    assert!(!partial.hits.is_empty());
    assert!(partial.cursor.is_none(), "incomplete streamed pages carry no cursor");
    assert!(partial
        .hits
        .windows(2)
        .all(|w| req.sort.cmp_hits(&w[0], &w[1]) == std::cmp::Ordering::Less));

    // ...but an unreachable quorum still errors.
    let req = req.with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 3 });
    assert!(client.search_streamed(&req).is_err());
    cluster.shutdown();
}

#[test]
fn session_eviction_thrash_is_transparent_to_the_client() {
    // A node whose session table holds ONE entry evicts the client's
    // suspended session whenever anyone else opens — the worst case for
    // the streamed protocol. A rival thread hammers the node with
    // foreign opens while the client streams; every eviction forces the
    // transparent reopen-with-resume-cursor path, and the results must
    // stay byte-identical to the one-shot exchange throughout.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 40,
        max_search_sessions: 1,
        ..ClusterConfig::default()
    });
    let mut client = cluster.client().with_search_page_size(5);
    let records: Vec<FileRecord> = (0..160u64).map(|i| record(i, (i + 1) << 20, i, 0)).collect();
    client.index_files(records).unwrap();
    let req = SearchRequest::parse("size>0", now())
        .unwrap()
        .with_limit(40)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let one_shot = client.search_one_shot(&req).unwrap();

    let rpc = cluster.rpc().clone();
    let targets: Vec<NodeId> = cluster.index_node_ids().to_vec();
    std::thread::scope(|s| {
        let rival = s.spawn(move || {
            // Each open is atomic open+first-page, so the rival both
            // fills the 1-slot table (evicting the client) and gets
            // itself evicted right back — maximum churn.
            for i in 0..300u64 {
                let node = targets[(i % targets.len() as u64) as usize];
                let open = Request::OpenSearch {
                    acgs: (1..=8).map(propeller::types::AcgId::new).collect(),
                    request: SearchRequest::parse("size>0", now())
                        .unwrap()
                        .with_limit(40)
                        .sorted_by(SortKey::Descending(AttrName::Size)),
                    client: 999,
                    page: 3,
                    now: now(),
                    ctx: propeller_obs::TraceContext::NONE,
                };
                let _ = rpc.call(node, open);
            }
        });
        for round in 0..10 {
            let streamed = client.search_streamed(&req).unwrap();
            assert_eq!(
                streamed.hits, one_shot.hits,
                "round {round}: eviction churn must never change the answer"
            );
            assert!(streamed.complete);
        }
        rival.join().unwrap();
    });
    cluster.shutdown();
}

#[test]
fn split_during_pull_keeps_pages_sorted_and_duplicate_free() {
    // A real Master-orchestrated split (bisect → extract → install →
    // commit) lands between two pulls of a suspended session on the
    // owning node. The session degrades per design — the migrated ACG
    // stops contributing — but every page it still serves must stay
    // sorted and duplicate-free.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 400,
        split_threshold: 60, // every ACG is immediately split-worthy
        ..ClusterConfig::default()
    });
    let mut client = cluster.client();
    let records: Vec<FileRecord> = (0..240u64).map(|i| record(i, (i + 1) << 20, i, 0)).collect();
    client.index_files(records).unwrap();

    // Find a node and the ACGs it hosts.
    let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs).unwrap() {
        Response::Located(rows) => rows,
        other => panic!("{other:?}"),
    };
    let (owner, acgs): (NodeId, Vec<propeller::types::AcgId>) = {
        let node = located[0].1[0];
        (node, located.iter().filter(|(_, n)| n[0] == node).map(|(a, _)| *a).collect())
    };

    // Open a session with small pages and pull once.
    let open = Request::OpenSearch {
        acgs: acgs.clone(),
        request: SearchRequest::parse("size>0", now())
            .unwrap()
            .with_limit(200)
            .sorted_by(SortKey::Descending(AttrName::Size)),
        client: 1,
        page: 10,
        now: now(),
        ctx: propeller_obs::TraceContext::NONE,
    };
    let (session, mut all, exhausted) = match cluster.rpc().call(owner, open).unwrap() {
        Response::SearchPage { session, hits, exhausted, .. } => (session, hits, exhausted),
        other => panic!("{other:?}"),
    };
    assert!(!exhausted);

    // A full maintenance round splits the oversized ACGs — including
    // extracting files from the very groups the session is suspended
    // over.
    let splits = cluster.run_maintenance().unwrap();
    assert!(splits > 0, "the split must actually happen mid-session");

    let mut exhausted = false;
    while !exhausted {
        match cluster
            .rpc()
            .call(
                owner,
                Request::PullHits { session, page: 10, ctx: propeller_obs::TraceContext::NONE },
            )
            .unwrap()
        {
            Response::SearchPage { hits, exhausted: done, .. } => {
                all.extend(hits);
                exhausted = done;
            }
            Response::Err(Error::SearchSessionExpired { .. }) => break,
            other => panic!("{other:?}"),
        }
    }
    let sort = SortKey::Descending(AttrName::Size);
    assert!(
        all.windows(2).all(|w| sort.cmp_hits(&w[0], &w[1]) == std::cmp::Ordering::Less),
        "pages across the split stay strictly sorted"
    );
    let mut files: Vec<FileId> = all.iter().map(|h| h.file).collect();
    files.sort_unstable();
    files.dedup();
    assert_eq!(files.len(), all.len(), "no hit is served twice across the split");
    cluster.shutdown();
}

#[test]
fn commit_split_hints_evict_stale_routes_eagerly() {
    // Route-cache invalidation hints: once the Master commits a split,
    // the *next* resolve any client performs carries the moved files as
    // hints — the client drops those routes before they can earn a
    // StaleRoute rejection and a retry round trip.
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        group_capacity: 100,
        ..ClusterConfig::default()
    });
    let mut client = cluster.client();
    let records: Vec<FileRecord> = (0..10u64).map(|i| record(i, (i + 1) << 20, i, 0)).collect();
    client.index_files(records).unwrap();
    assert!(client.has_cached_route(FileId::new(3)));
    assert!(client.has_cached_route(FileId::new(7)));

    // Commit a split at the Master moving file 3 (metadata-only: the
    // route hint machinery doesn't care whether records migrated).
    let master = cluster.master_id();
    let acg = match cluster
        .rpc()
        .call(
            master,
            Request::ResolveFiles {
                files: vec![FileId::new(3)],
                hints_since: 0,
                ctx: propeller_obs::TraceContext::NONE,
            },
        )
        .unwrap()
    {
        Response::Resolved { rows, .. } => rows[0].1,
        other => panic!("{other:?}"),
    };
    let (new_acg, targets) = match cluster.rpc().call(master, Request::AllocateAcg).unwrap() {
        Response::AcgAllocated(a, n) => (a, n),
        other => panic!("{other:?}"),
    };
    let kept: Vec<FileId> = (0..10u64).filter(|&i| i != 3).map(FileId::new).collect();
    cluster
        .rpc()
        .call(
            master,
            Request::CommitSplit { acg, kept, new_acg, moved: vec![FileId::new(3)], targets },
        )
        .unwrap();

    // The stale route survives until the client next talks to the
    // Master...
    assert!(client.has_cached_route(FileId::new(3)));
    // ...then the hints piggybacked on an unrelated resolve evict it.
    client.index_files(vec![record(100, 1 << 20, 0, 0)]).unwrap();
    assert!(
        !client.has_cached_route(FileId::new(3)),
        "the moved file's route must be dropped eagerly"
    );
    assert!(client.has_cached_route(FileId::new(7)), "unmoved routes stay cached");
    cluster.shutdown();
}

#[test]
fn deep_pagination_reuses_node_sessions_across_pages() {
    // `open_search_stream` keeps one session per replica group alive for
    // the whole walk: page N costs one PullHits round per contributing
    // group, not a re-open + re-scan from rank 0 — deep pagination is
    // O(pages), not O(pages²). The concatenated pages must equal the
    // one-shot answer exactly, with no seam artifacts at page borders.
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 4, group_capacity: 10, ..Default::default() });
    let mut client = cluster.client().with_search_page_size(8);
    let records: Vec<FileRecord> =
        (0..200u64).map(|i| record(i, (i * 37) % 251, (i * 11) % 251, (i % 4) as u32)).collect();
    client.index_files(records).unwrap();

    let request = SearchRequest::parse("size>=0", now())
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let baseline = client.search_one_shot(&request).unwrap();
    assert_eq!(baseline.hits.len(), 200);

    let mut stream = client.open_search_stream(&request).unwrap();
    let mut paged: Vec<Hit> = Vec::new();
    let mut pages = 0;
    loop {
        let page = stream.next_page(9).unwrap();
        if page.is_empty() {
            break;
        }
        assert!(page.len() <= 9);
        paged.extend(page);
        pages += 1;
    }
    let resp = stream.finish().unwrap();
    assert!(resp.complete);
    assert!(pages >= 200 / 9, "walked the whole result set page by page");
    assert_eq!(untagged(&paged), untagged(&baseline.hits));
    cluster.shutdown();
}

#[test]
fn adaptive_paging_matches_fixed_paging_byte_for_byte() {
    // Adaptive page sizing (start small, double per accepted page) is a
    // wire-cost optimization only: the merged hit sequence must be
    // identical to fixed-size paging for any query shape.
    let cluster =
        Cluster::start(ClusterConfig { index_nodes: 3, group_capacity: 10, ..Default::default() });
    let mut loader = cluster.client();
    let records: Vec<FileRecord> =
        (0..150u64).map(|i| record(i, (i * 53) % 251, (i * 29) % 251, (i % 4) as u32)).collect();
    loader.index_files(records).unwrap();

    let request = SearchRequest::parse("size>=0", now())
        .unwrap()
        .sorted_by(SortKey::Ascending(AttrName::Mtime))
        .with_limit(120);
    let fixed = cluster.client().with_search_page_size(16).search_one_shot(&request).unwrap();
    let adaptive = cluster.client().with_adaptive_paging(4, 64);
    let streamed = adaptive.search_with(&request).unwrap();
    assert!(streamed.complete);
    assert_eq!(untagged(&streamed.hits), untagged(&fixed.hits));
    // And the streaming surface agrees too.
    let mut stream = adaptive.open_search_stream(&request).unwrap();
    let mut paged: Vec<Hit> = Vec::new();
    loop {
        let page = stream.next_page(11).unwrap();
        if page.is_empty() {
            break;
        }
        paged.extend(page);
    }
    stream.finish().unwrap();
    assert_eq!(untagged(&paged), untagged(&fixed.hits));
    cluster.shutdown();
}
