//! Control-plane recovery: the WAL-backed Master state machine and the
//! two-phase crash-safe migration protocol, driven through deterministic
//! mid-migration crashes and randomized kill/restart schedules checked
//! against a brute-force oracle.
//!
//! The invariant under test is **exactly one home**: at every observable
//! point — before a crash, immediately after recovery, and after the
//! coordinator resumes parked migrations — every indexed file is served
//! by exactly one routable ACG, so searches return each file once and
//! byte-identically to the pre-crash answer.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use propeller::cluster::{Cluster, ClusterConfig, Request, Response};
use propeller::index::FileRecord;
use propeller::sim::SimClock;
use propeller::types::{Duration, FileId, InodeAttrs, NodeId, Timestamp};
use proptest::prelude::*;

fn record(file: u64, size_mib: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size_mib << 20).build())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("propeller-cp-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(
    dir: &std::path::Path,
    sim: &SimClock,
    group_capacity: usize,
    split_threshold: usize,
) -> ClusterConfig {
    ClusterConfig {
        index_nodes: 3,
        replication: 2,
        group_capacity,
        split_threshold,
        data_dir: Some(dir.to_path_buf()),
        sim_clock: Some(sim.clone()),
        ..Default::default()
    }
}

/// One tick-and-heartbeat round, as `run_maintenance` would play it —
/// without the split orchestration, so tests can stop a migration at an
/// exact phase.
fn heartbeat_round(cluster: &Cluster, now: Timestamp) {
    for &node in cluster.index_node_ids() {
        match cluster.rpc().call(node, Request::Tick { now }) {
            Ok(Response::Status { acgs, load }) => {
                cluster
                    .rpc()
                    .call(cluster.master_id(), Request::Heartbeat { node, acgs, load, now })
                    .unwrap();
            }
            other => panic!("{other:?}"),
        }
    }
}

/// What a partially-driven migration looked like when the "crash" hit.
struct SplitPhases {
    owner: NodeId,
    targets: Vec<NodeId>,
    moved: Vec<FileId>,
}

/// Drives the first pending split through the two-phase protocol up to
/// (and including) phase `upto`, then stops — simulating a coordinator
/// that died mid-protocol:
///
/// 0. `BeginMigration` logged at the Master,
/// 1. + `ExtractAcgPart` on the source (tombstone-and-retain),
/// 2. + `InstallAcg` on every target,
/// 3. + `InstallAcked` logged at the Master,
/// 4. + `RemoveAcgPart` on the source (durable give-up).
///
/// `CommitMigration` is deliberately never reached — recovery must finish
/// the job. Returns `None` when no split is pending.
fn drive_split_phases(cluster: &Cluster, now: Timestamp, upto: u8) -> Option<SplitPhases> {
    heartbeat_round(cluster, now);
    let work = match cluster.rpc().call(cluster.master_id(), Request::TakeSplitWork) {
        Ok(Response::SplitWork(work)) => work,
        other => panic!("{other:?}"),
    };
    let (acg, owner) = work.into_iter().next()?;
    let (left, right) = match cluster.rpc().call(owner, Request::SplitAcg { acg }) {
        Ok(Response::SplitHalves { left, right }) => (left, right),
        other => panic!("{other:?}"),
    };
    if left.is_empty() || right.is_empty() {
        return None;
    }
    let (new_acg, targets) = match cluster
        .rpc()
        .call(cluster.master_id(), Request::BeginMigration { acg, moved: right.clone() })
    {
        Ok(Response::MigrationBegun { new_acg, targets }) => (new_acg, targets),
        other => panic!("{other:?}"),
    };
    let phases = SplitPhases { owner, targets: targets.clone(), moved: right.clone() };
    if upto < 1 {
        return Some(phases);
    }
    let (records, edges) =
        match cluster.rpc().call(owner, Request::ExtractAcgPart { acg, files: right.clone() }) {
            Ok(Response::AcgPart { records, edges }) => (records, edges),
            other => panic!("{other:?}"),
        };
    if upto < 2 {
        return Some(phases);
    }
    for &target in &targets {
        let install =
            Request::InstallAcg { acg: new_acg, records: records.clone(), edges: edges.clone() };
        assert!(matches!(cluster.rpc().call(target, install), Ok(Response::Ok)));
    }
    if upto < 3 {
        return Some(phases);
    }
    assert!(matches!(
        cluster.rpc().call(cluster.master_id(), Request::InstallAcked { new_acg }),
        Ok(Response::Ok)
    ));
    if upto < 4 {
        return Some(phases);
    }
    assert!(matches!(
        cluster.rpc().call(owner, Request::RemoveAcgPart { acg, files: right }),
        Ok(Response::Ok)
    ));
    Some(phases)
}

/// The full sorted hit list, asserting no file is served twice (two
/// routable homes would double-report it).
fn search_all(cluster: &Cluster) -> Vec<FileId> {
    let client = cluster.client();
    let hits = client.search_text("size>0").unwrap();
    let distinct: HashSet<FileId> = hits.iter().copied().collect();
    assert_eq!(distinct.len(), hits.len(), "a file was served from two homes: {hits:?}");
    hits
}

fn verify_against_oracle(cluster: &Cluster, oracle: &HashMap<u64, u64>) {
    let mut got: Vec<u64> = search_all(cluster).iter().map(|f| f.raw()).collect();
    got.sort_unstable();
    let mut want: Vec<u64> = oracle.keys().copied().collect();
    want.sort_unstable();
    assert_eq!(got, want, "cluster and brute-force oracle diverged");
    // A thresholded query must agree with the brute-force filter too.
    let client = cluster.client();
    let mut got5: Vec<u64> =
        client.search_text("size>5m").unwrap().iter().map(|f| f.raw()).collect();
    got5.sort_unstable();
    let mut want5: Vec<u64> = oracle.iter().filter(|&(_, &s)| s > 5).map(|(&f, _)| f).collect();
    want5.sort_unstable();
    assert_eq!(got5, want5);
}

/// A durable cluster with one oversized 120-file ACG, one advanced clock
/// step past the commit timeout, and its pre-crash baseline answer.
fn seeded_cluster(tag: &str) -> (Cluster, SimClock, std::path::PathBuf, Vec<FileId>) {
    let dir = temp_dir(tag);
    let sim = SimClock::new();
    let cluster = Cluster::start(durable_config(&dir, &sim, 1000, 50));
    let mut client = cluster.client();
    client.index_files((0..120).map(|i| record(i, i % 10 + 1)).collect()).unwrap();
    sim.advance(Duration::from_secs(10));
    let baseline = search_all(&cluster);
    assert_eq!(baseline.len(), 120);
    (cluster, sim, dir, baseline)
}

#[test]
fn power_loss_after_extract_keeps_the_source_as_the_one_home() {
    let (cluster, sim, dir, baseline) = seeded_cluster("extract");
    drive_split_phases(&cluster, sim.now(), 1).expect("a split must be pending");
    let cluster = cluster.restart();
    // The source tombstoned-and-RETAINED the extracted half: recovery
    // serves the identical answer before any migration work resumes.
    assert_eq!(search_all(&cluster), baseline);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().unwrap() >= 1, "the parked migration must resume");
    assert_eq!(search_all(&cluster), baseline);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_loss_before_install_ack_re_extracts_idempotently() {
    let (cluster, sim, dir, baseline) = seeded_cluster("preack");
    // Installed on every target, but the Master never logged the ack:
    // recovery must re-run extract + install (both idempotent) rather
    // than trust the un-acked copies.
    drive_split_phases(&cluster, sim.now(), 2).expect("a split must be pending");
    let cluster = cluster.restart();
    assert_eq!(search_all(&cluster), baseline);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().unwrap() >= 1);
    assert_eq!(search_all(&cluster), baseline);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_loss_between_ack_and_remove_resumes_from_the_logged_phase() {
    let (cluster, sim, dir, baseline) = seeded_cluster("postack");
    drive_split_phases(&cluster, sim.now(), 3).expect("a split must be pending");
    let cluster = cluster.restart();
    // The ack survived in the Master's WAL; the new group is still not
    // routable, so the retained source copy is the one home.
    assert_eq!(search_all(&cluster), baseline);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().unwrap() >= 1);
    assert_eq!(search_all(&cluster), baseline);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_loss_after_remove_fences_the_part_until_commit_replays() {
    let (cluster, sim, dir, baseline) = seeded_cluster("postremove");
    let phases = drive_split_phases(&cluster, sim.now(), 4).expect("a split must be pending");
    let cluster = cluster.restart();
    // The narrow documented window: the source durably gave the part up
    // but the remap never committed. The moved files are *invisible* —
    // never double-served — until recovery replays the commit.
    let visible = search_all(&cluster);
    assert_eq!(visible.len(), baseline.len() - phases.moved.len());
    let moved: HashSet<FileId> = phases.moved.iter().copied().collect();
    assert!(visible.iter().all(|f| !moved.contains(f)), "a removed file kept a second home");
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().unwrap() >= 1);
    assert_eq!(search_all(&cluster), baseline, "commit replay must restore every moved file");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_source_stalls_the_migration_until_revival() {
    let (mut cluster, sim, dir, baseline) = seeded_cluster("deadsource");
    let phases = drive_split_phases(&cluster, sim.now(), 1).expect("a split must be pending");
    cluster.rpc().deregister(phases.owner);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().is_err(), "resume cannot finish without the source");
    cluster.revive_index_node(phases.owner);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().unwrap() >= 1);
    assert_eq!(search_all(&cluster), baseline);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_target_stalls_the_migration_until_revival() {
    let (mut cluster, sim, dir, baseline) = seeded_cluster("deadtarget");
    let phases = drive_split_phases(&cluster, sim.now(), 2).expect("a split must be pending");
    // Kill a target before the coordinator could ack the installs: the
    // un-acked migration must re-install, which needs the target back.
    cluster.rpc().deregister(phases.targets[0]);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().is_err(), "resume cannot finish without the target");
    cluster.revive_index_node(phases.targets[0]);
    sim.advance(Duration::from_secs(10));
    assert!(cluster.run_maintenance().unwrap() >= 1);
    assert_eq!(search_all(&cluster), baseline);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn proptest_cases() -> u32 {
    std::env::var("CONTROL_PLANE_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

static CASE_SEQ: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// Random schedules of ingest / remove / maintenance / power loss /
    /// mid-migration crash, each step checked against a brute-force
    /// `HashMap` oracle. Low group capacity and split threshold keep
    /// migrations constantly in flight, so crashes land in every phase.
    #[test]
    fn random_crash_schedules_never_lose_or_duplicate_files(
        ops in prop::collection::vec((any::<u8>(), any::<u64>()), 1..10)
    ) {
        let seq = CASE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = temp_dir(&format!("prop{seq}"));
        let sim = SimClock::new();
        let mut cluster = Cluster::start(durable_config(&dir, &sim, 40, 30));
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut next_id: u64 = 0;
        for (sel, payload) in ops {
            match sel % 5 {
                0 => {
                    // Ingest a fresh batch.
                    let n = payload % 24 + 8;
                    let batch: Vec<FileRecord> =
                        (next_id..next_id + n).map(|i| record(i, i % 10 + 1)).collect();
                    for i in next_id..next_id + n {
                        oracle.insert(i, i % 10 + 1);
                    }
                    next_id += n;
                    cluster.client().index_files(batch).unwrap();
                }
                1 => {
                    // Remove a few live files.
                    if oracle.is_empty() {
                        continue;
                    }
                    let keys: Vec<u64> = {
                        let mut k: Vec<u64> = oracle.keys().copied().collect();
                        k.sort_unstable();
                        k
                    };
                    let start = payload as usize % keys.len();
                    let count = (payload as usize % 4 + 1).min(keys.len());
                    let victims: BTreeSet<u64> =
                        (0..count).map(|j| keys[(start + j) % keys.len()]).collect();
                    for v in &victims {
                        oracle.remove(v);
                    }
                    cluster
                        .client()
                        .remove_files(victims.iter().map(|&v| FileId::new(v)).collect())
                        .unwrap();
                }
                2 => {
                    // A full maintenance round (splits run to completion).
                    sim.advance(Duration::from_secs(10));
                    cluster.run_maintenance().unwrap();
                }
                3 => {
                    // Whole-cluster power loss, then recovery.
                    cluster = cluster.restart();
                    sim.advance(Duration::from_secs(10));
                    cluster.run_maintenance().unwrap();
                }
                _ => {
                    // Crash mid-migration at a random phase, then recover.
                    sim.advance(Duration::from_secs(10));
                    let phase = (payload % 5) as u8;
                    drive_split_phases(&cluster, sim.now(), phase);
                    cluster = cluster.restart();
                    sim.advance(Duration::from_secs(10));
                    cluster.run_maintenance().unwrap();
                }
            }
            verify_against_oracle(&cluster, &oracle);
        }
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The whole catalogue — placements, specs, allocation cursor, routing
/// generation — survives a restart and immediately serves new work: the
/// end-to-end shape of the Master's recovery path.
#[test]
fn restart_recovers_master_and_nodes_into_a_consistent_cluster() {
    let dir = temp_dir("consistent");
    let sim = SimClock::new();
    let cluster = Cluster::start(durable_config(&dir, &sim, 40, 30));
    let mut client = cluster.client();
    client
        .create_index(propeller::index::IndexSpec::btree(
            "uid_idx",
            propeller::types::AttrName::Uid,
        ))
        .unwrap();
    client.index_files((0..100).map(|i| record(i, i % 10 + 1)).collect()).unwrap();
    sim.advance(Duration::from_secs(10));
    cluster.run_maintenance().unwrap();
    let baseline = search_all(&cluster);
    let cluster = cluster.restart();
    sim.advance(Duration::from_secs(10));
    cluster.run_maintenance().unwrap();
    assert_eq!(search_all(&cluster), baseline, "restart must not lose or duplicate records");
    // The recovered spec catalogue still answers structured queries and
    // still rejects duplicates.
    let mut client = cluster.client();
    assert_eq!(client.search_text("uid=0").unwrap().len(), 100);
    assert!(client
        .create_index(propeller::index::IndexSpec::btree(
            "uid_idx",
            propeller::types::AttrName::Uid,
        ))
        .is_err());
    // New ingest after recovery: allocation continues without colliding
    // with recovered ACG ids.
    client.index_files((200..260).map(|i| record(i, i % 10 + 1)).collect()).unwrap();
    assert_eq!(search_all(&cluster).len(), 160);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_durable_restart_is_a_clean_power_loss() {
    let sim = SimClock::new();
    let cluster = Cluster::start(ClusterConfig {
        index_nodes: 2,
        sim_clock: Some(sim.clone()),
        ..Default::default()
    });
    let mut client = cluster.client();
    client.index_files((0..20).map(|i| record(i, 1)).collect()).unwrap();
    assert_eq!(search_all(&cluster).len(), 20);
    let cluster = cluster.restart();
    // No data dir: everything is gone, but the cluster is alive and
    // re-indexable — not wedged on stale metadata.
    assert_eq!(search_all(&cluster).len(), 0);
    let mut client = cluster.client();
    client.index_files((0..20).map(|i| record(i, 1)).collect()).unwrap();
    assert_eq!(search_all(&cluster).len(), 20);
    cluster.shutdown();
}
