//! Property coverage for the streaming execution pipeline: across random
//! predicates, sorts, limits, projections and cursors, the streaming /
//! ordered-scan / early-terminating executor must return **byte-identical
//! hits** to the materializing reference path and agree with a brute-force
//! linear scan.

use propeller::cluster::{IndexNode, IndexNodeConfig, Request, Response};
use propeller::index::{AcgIndexGroup, FileRecord, GroupConfig, IndexOp};
use propeller::query::{
    execute_node_request_sequential, execute_request, execute_request_reference, next_cursor,
    run_local_search, CompareOp, Hit, Predicate, Projection, SearchRequest, SearchStats, SortKey,
};
use propeller::types::{AcgId, AttrName, FileId, InodeAttrs, NodeId, Timestamp, Value};
use proptest::prelude::*;

fn now() -> Timestamp {
    Timestamp::from_secs(1_000)
}

/// Records draw attribute values from small ranges so random comparisons
/// actually split the data set.
fn arb_records() -> impl Strategy<Value = Vec<FileRecord>> {
    prop::collection::vec(
        (0u64..250, 0u64..250, 0u64..4, prop::collection::vec("[ab]{1,2}", 0..3), 0i64..20),
        1..120,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (size, mtime, uid, keywords, energy))| {
                let mut rec = FileRecord::new(
                    FileId::new(i as u64),
                    InodeAttrs::builder()
                        .size(size)
                        .mtime(Timestamp::from_micros(mtime))
                        .uid(uid as u32)
                        .build(),
                );
                rec.keywords = keywords;
                rec.custom.push(("energy".to_owned(), Value::I64(energy)));
                rec
            })
            .collect()
    })
}

fn arb_leaf() -> BoxedStrategy<Predicate> {
    prop_oneof![
        (0u64..4, 0u64..6, 0u64..250).prop_map(|(attr, op, v)| {
            let attr = match attr {
                0 => AttrName::Size,
                1 => AttrName::Mtime,
                2 => AttrName::Uid,
                _ => AttrName::Gid,
            };
            Predicate::cmp(attr, op_of(op), Value::U64(v))
        }),
        "[ab]{1,2}".prop_map(Predicate::Keyword),
        (0u64..6, 0i64..20).prop_map(|(op, v)| {
            Predicate::cmp(AttrName::custom("energy"), op_of(op), Value::I64(v))
        }),
        (0u64..1).prop_map(|_| Predicate::True),
    ]
    .boxed()
}

fn op_of(i: u64) -> CompareOp {
    match i % 6 {
        0 => CompareOp::Eq,
        1 => CompareOp::Ne,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        _ => CompareOp::Ge,
    }
}

fn arb_predicate() -> BoxedStrategy<Predicate> {
    prop_oneof![
        arb_leaf(),
        prop::collection::vec(arb_leaf(), 1..4).prop_map(Predicate::And),
        prop::collection::vec(arb_leaf(), 1..4).prop_map(Predicate::Or),
        arb_leaf().prop_map(|p| Predicate::Not(Box::new(p))),
    ]
    .boxed()
}

fn arb_sort() -> BoxedStrategy<SortKey> {
    prop_oneof![
        (0u64..1).prop_map(|_| SortKey::FileId),
        (0u64..3, prop::bool::ANY).prop_map(|(attr, desc)| {
            let attr = match attr {
                0 => AttrName::Size,
                1 => AttrName::Mtime,
                _ => AttrName::Uid,
            };
            if desc {
                SortKey::Descending(attr)
            } else {
                SortKey::Ascending(attr)
            }
        }),
    ]
    .boxed()
}

fn arb_projection() -> BoxedStrategy<Projection> {
    prop_oneof![
        (0u64..1).prop_map(|_| Projection::Ids),
        (0u64..1).prop_map(|_| Projection::Attrs(vec![AttrName::Size, AttrName::Keyword])),
        (0u64..1).prop_map(|_| Projection::Full),
    ]
    .boxed()
}

fn committed_group(records: &[FileRecord]) -> AcgIndexGroup {
    let mut g = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
    for rec in records {
        g.enqueue(IndexOp::Upsert(rec.clone()), now()).unwrap();
    }
    g.commit(now()).unwrap();
    g
}

/// `run_local_search` tags hits with no ACG; strip it for comparison.
fn untagged(hits: &[Hit]) -> Vec<Hit> {
    hits.iter().map(|h| Hit { acg: None, ..h.clone() }).collect()
}

/// An Index Node hosting `records` partitioned across `acg_count` ACGs.
fn seeded_node(records: &[FileRecord], acg_count: usize, parallelism: usize) -> IndexNode {
    let mut node = IndexNode::new(
        NodeId::new(1),
        IndexNodeConfig { search_parallelism: parallelism, ..IndexNodeConfig::default() },
    );
    for acg in 0..acg_count {
        let ops: Vec<IndexOp> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| i % acg_count == acg)
            .map(|(_, r)| IndexOp::Upsert(r.clone()))
            .collect();
        node.handle(Request::IndexBatch {
            acg: AcgId::new(acg as u64 + 1),
            ops,
            now: now(),
            ctx: propeller_obs::TraceContext::NONE,
        });
    }
    node
}

fn node_search(
    node: &mut IndexNode,
    acg_count: usize,
    req: &SearchRequest,
) -> (Vec<Hit>, SearchStats) {
    match node.handle(Request::Search {
        acgs: (1..=acg_count as u64).map(AcgId::new).collect(),
        request: req.clone(),
        now: now(),
        ctx: propeller_obs::TraceContext::NONE,
    }) {
        Response::SearchHits { hits, stats } => (hits, stats),
        other => panic!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Streaming execution (whatever access path the planner picks,
    /// including ordered scans with early termination) is byte-identical
    /// to the materializing reference and to a brute-force linear scan.
    #[test]
    fn streaming_equals_reference_and_brute_force(
        records in arb_records(),
        pred in arb_predicate(),
        sort in arb_sort(),
        projection in arb_projection(),
        limit in prop_oneof![
            (0u64..1).prop_map(|_| None),
            (0usize..40).prop_map(Some),
        ],
    ) {
        let g = committed_group(&records);
        let mut req = SearchRequest::new(pred).sorted_by(sort).with_projection(projection);
        if let Some(k) = limit {
            req = req.with_limit(k);
        }
        let (streamed, stats) = execute_request(&g, &req);
        let (reference, _) = execute_request_reference(&g, &req);
        prop_assert_eq!(&streamed, &reference, "streaming vs materializing reference");
        let brute = run_local_search(records.clone(), &req);
        prop_assert_eq!(untagged(&streamed), untagged(&brute.hits), "streaming vs brute force");
        if let Some(k) = limit {
            prop_assert!(streamed.len() <= k);
            prop_assert!(stats.retained_peak <= k.max(1));
        }
        // The early-termination witness never lies about the work done.
        prop_assert!(stats.candidates_scanned + stats.candidates_skipped <= g.len());
        if stats.early_terminated == 0 {
            prop_assert_eq!(stats.candidates_skipped, 0);
        }
    }

    /// Cursor pagination through the streaming executor covers exactly
    /// the full result set, page-identically to the reference path.
    #[test]
    fn streaming_pagination_equals_reference_pages(
        records in arb_records(),
        pred in arb_predicate(),
        sort in arb_sort(),
        page in 1usize..17,
    ) {
        let g = committed_group(&records);
        let full_req = SearchRequest::new(pred.clone()).sorted_by(sort.clone());
        let (full, _) = execute_request(&g, &full_req);
        let mut paged: Vec<Hit> = Vec::new();
        let mut cursor = None;
        for _ in 0..=records.len() {
            let mut req =
                SearchRequest::new(pred.clone()).sorted_by(sort.clone()).with_limit(page);
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let (hits, _) = execute_request(&g, &req);
            let (ref_hits, _) = execute_request_reference(&g, &req);
            prop_assert_eq!(&hits, &ref_hits, "page vs reference page");
            if hits.is_empty() {
                break;
            }
            cursor = next_cursor(&hits, Some(page));
            paged.extend(hits);
            if cursor.is_none() {
                break;
            }
        }
        prop_assert_eq!(paged, full, "pages concatenate to the full result");
    }

    /// Node-level property: a multi-ACG Index Node under the node-global
    /// cutoff, executing on its persistent worker pool, returns
    /// byte-identical hits to (a) strictly sequential execution, (b) the
    /// query-level sequential node executor over the same partition, and
    /// (c) a brute-force linear pass over the unpartitioned record set —
    /// across random predicates, sorts, limits and ACG counts. The
    /// scan/skip witnesses must also account for exactly the node's
    /// records.
    #[test]
    fn node_global_cutoff_and_pool_equal_sequential_and_brute_force(
        records in arb_records(),
        pred in arb_predicate(),
        sort in arb_sort(),
        acg_count in 1usize..6,
        limit in prop_oneof![
            (0u64..1).prop_map(|_| None),
            (0usize..40).prop_map(Some),
        ],
    ) {
        let mut req = SearchRequest::new(pred).sorted_by(sort);
        if let Some(k) = limit {
            req = req.with_limit(k);
        }
        let mut pooled = seeded_node(&records, acg_count, 8);
        let mut sequential = seeded_node(&records, acg_count, 1);
        let (pooled_hits, pooled_stats) = node_search(&mut pooled, acg_count, &req);
        let (seq_hits, seq_stats) = node_search(&mut sequential, acg_count, &req);
        prop_assert_eq!(&pooled_hits, &seq_hits, "pooled vs sequential node");
        // Deterministic witnesses agree regardless of pool width.
        prop_assert_eq!(pooled_stats.candidates_scanned, seq_stats.candidates_scanned);
        prop_assert_eq!(pooled_stats.merge_skipped, seq_stats.merge_skipped);
        prop_assert_eq!(pooled_stats.early_terminated, seq_stats.early_terminated);

        // The query-level sequential node executor over the same groups.
        let groups: Vec<AcgIndexGroup> = (0..acg_count)
            .map(|acg| {
                let mut g = AcgIndexGroup::new(
                    AcgId::new(acg as u64 + 1),
                    GroupConfig::default(),
                );
                for (i, rec) in records.iter().enumerate() {
                    if i % acg_count == acg {
                        g.enqueue(IndexOp::Upsert(rec.clone()), now()).unwrap();
                    }
                }
                g.commit(now()).unwrap();
                g
            })
            .collect();
        let refs: Vec<&propeller::index::AcgEpoch> = groups.iter().map(|g| &**g).collect();
        let (direct_hits, direct_stats) = execute_node_request_sequential(&refs, &req);
        prop_assert_eq!(&direct_hits, &seq_hits, "node actor vs query-level executor");

        // Brute force over the unpartitioned records.
        let brute = run_local_search(records.clone(), &req);
        prop_assert_eq!(untagged(&seq_hits), untagged(&brute.hits), "node vs brute force");
        if let Some(k) = limit {
            prop_assert!(seq_hits.len() <= k);
        }
        // Scan/skip accounting covers exactly the node's record set.
        prop_assert!(
            direct_stats.candidates_scanned + direct_stats.candidates_skipped <= records.len()
        );
        prop_assert!(direct_stats.merge_skipped <= direct_stats.candidates_skipped);
        if direct_stats.early_terminated == 0 {
            prop_assert_eq!(direct_stats.candidates_skipped, 0);
        }
    }

    /// Node-level cursor pagination under the global cutoff covers exactly
    /// the full result set, in order, with no hit lost or duplicated.
    #[test]
    fn node_pagination_covers_the_full_result(
        records in arb_records(),
        pred in arb_predicate(),
        sort in arb_sort(),
        acg_count in 1usize..5,
        page in 1usize..17,
    ) {
        let mut node = seeded_node(&records, acg_count, 8);
        let full_req = SearchRequest::new(pred.clone()).sorted_by(sort.clone());
        let (full, _) = node_search(&mut node, acg_count, &full_req);
        let mut paged: Vec<Hit> = Vec::new();
        let mut cursor = None;
        for _ in 0..=records.len() {
            let mut req =
                SearchRequest::new(pred.clone()).sorted_by(sort.clone()).with_limit(page);
            if let Some(c) = cursor.take() {
                req = req.after(c);
            }
            let (hits, _) = node_search(&mut node, acg_count, &req);
            if hits.is_empty() {
                break;
            }
            cursor = next_cursor(&hits, Some(page));
            paged.extend(hits);
            if cursor.is_none() {
                break;
            }
        }
        prop_assert_eq!(paged, full, "node pages concatenate to the full result");
    }
}
