//! Synthetic namespace generation.

use propeller_types::{InodeAttrs, Timestamp};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A synthetic namespace: `base_apps` application templates, each
/// duplicated `scale` times (the paper: "we duplicate these samples with
/// an appropriate scaling factor", §V-B), with heavy-tailed file sizes and
/// modification times spread over `mtime_horizon_secs`.
///
/// # Examples
///
/// ```
/// use propeller_workloads::NamespaceSpec;
///
/// let rows = NamespaceSpec::with_files(10_000).generate(7);
/// assert_eq!(rows.len(), 10_000);
/// assert!(rows.iter().any(|(_, a)| a.size > 1 << 20), "heavy tail present");
/// ```
#[derive(Debug, Clone)]
pub struct NamespaceSpec {
    /// Total files to generate.
    pub files: usize,
    /// Distinct application templates to replicate.
    pub base_apps: usize,
    /// Median file size in bytes.
    pub median_size: u64,
    /// Log-normal sigma for the size distribution.
    pub size_sigma: f64,
    /// mtimes are uniform over `[now - horizon, now]`.
    pub mtime_horizon_secs: u64,
    /// The "now" that mtimes are relative to.
    pub now: Timestamp,
}

impl NamespaceSpec {
    /// A spec with default shape parameters and the given file count.
    pub fn with_files(files: usize) -> Self {
        NamespaceSpec {
            files,
            base_apps: 12,
            median_size: 8 << 10, // 8 KiB median, heavy upper tail
            size_sigma: 2.2,
            mtime_horizon_secs: 90 * 86_400,
            now: Timestamp::from_secs(100 * 86_400),
        }
    }

    /// The paper's Dataset 1: a fresh macOS image (138 k files, Table V).
    pub fn macos_image() -> Self {
        NamespaceSpec::with_files(138_000)
    }

    /// The paper's Dataset 2: image + a laptop snapshot (487 k files).
    pub fn laptop_dataset() -> Self {
        NamespaceSpec::with_files(487_000)
    }

    /// The Fig. 11 import: an Ubuntu VM snapshot (89 k files).
    pub fn ubuntu_snapshot() -> Self {
        NamespaceSpec::with_files(89_000)
    }

    /// Generates `(path, attrs)` rows, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<(String, InodeAttrs)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(self.files);
        let per_app = (self.files / self.base_apps.max(1)).max(1);
        let mu = (self.median_size as f64).ln();
        for i in 0..self.files {
            let app = i / per_app;
            let copy = (i % per_app) / 64; // 64 files per duplicated sample dir
            let file = i % 64;
            let path = format!("/apps/app{app}/copy{copy}/f{file}_{i}");
            // Log-normal size via Box–Muller.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen());
            let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let size = (mu + self.size_sigma * normal).exp().min(1e13) as u64;
            let age = rng.gen_range(0..self.mtime_horizon_secs.max(1));
            let mtime =
                Timestamp::from_micros(self.now.as_micros().saturating_sub(age * 1_000_000));
            let attrs = InodeAttrs::builder()
                .size(size)
                .mtime(mtime)
                .ctime(mtime)
                .uid(500 + (app % 4) as u32)
                .build();
            rows.push((path, attrs));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_unique_paths() {
        let rows = NamespaceSpec::with_files(5_000).generate(1);
        assert_eq!(rows.len(), 5_000);
        let paths: std::collections::HashSet<&str> = rows.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths.len(), 5_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NamespaceSpec::with_files(500).generate(9);
        let b = NamespaceSpec::with_files(500).generate(9);
        assert_eq!(a, b);
        let c = NamespaceSpec::with_files(500).generate(10);
        assert_ne!(a, c);
    }

    #[test]
    fn size_distribution_is_heavy_tailed() {
        let rows = NamespaceSpec::with_files(20_000).generate(3);
        let mut sizes: Vec<u64> = rows.iter().map(|(_, a)| a.size).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let p99 = sizes[sizes.len() * 99 / 100];
        assert!(median < 64 << 10, "median {median}");
        assert!(p99 > median * 50, "p99 {p99} vs median {median}");
        // Some files exceed 16 MiB — the Table IV/V query threshold.
        assert!(sizes.last().copied().unwrap() > 16 << 20);
    }

    #[test]
    fn mtimes_within_horizon() {
        let spec = NamespaceSpec::with_files(1000);
        let rows = spec.generate(5);
        for (_, attrs) in rows {
            assert!(attrs.mtime <= spec.now);
            assert!(spec.now.since(attrs.mtime).as_micros() <= spec.mtime_horizon_secs * 1_000_000);
        }
    }

    #[test]
    fn presets_match_paper_counts() {
        assert_eq!(NamespaceSpec::macos_image().files, 138_000);
        assert_eq!(NamespaceSpec::laptop_dataset().files, 487_000);
        assert_eq!(NamespaceSpec::ubuntu_snapshot().files, 89_000);
    }
}
