//! Zipf-distributed term generation for the ranked content-search
//! experiment.
//!
//! Real file-name and content keywords are heavily skewed: a handful of
//! terms ("the", "lib", "readme") appear in most files while the long tail
//! is nearly unique. The top-k postings experiment needs that shape — a
//! uniform vocabulary would give every term the same selectivity and hide
//! both the benefit of rare-term-first merging and the WAND pruning upside.

use rand::{rngs::StdRng, Rng};

/// A Zipf-ranked vocabulary: term rank `r` (0-based) is drawn with
/// probability proportional to `1 / (r + 1)^exponent`.
///
/// # Examples
///
/// ```
/// use propeller_workloads::ZipfTerms;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let vocab = ZipfTerms::new(1000, 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let doc = vocab.document(&mut rng, 8);
/// assert_eq!(doc.split_whitespace().count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfTerms {
    /// Cumulative distribution over ranks; `cdf[r]` is `P(rank <= r)`.
    cdf: Vec<f64>,
}

impl ZipfTerms {
    /// A vocabulary of `vocabulary` ranked terms with Zipf exponent
    /// `exponent` (1.0–1.2 matches observed natural-language skew).
    pub fn new(vocabulary: usize, exponent: f64) -> Self {
        let vocabulary = vocabulary.max(1);
        let mut cdf = Vec::with_capacity(vocabulary);
        let mut acc = 0.0;
        for rank in 0..vocabulary {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfTerms { cdf }
    }

    /// Vocabulary size.
    pub fn vocabulary(&self) -> usize {
        self.cdf.len()
    }

    /// The canonical spelling of the term at `rank`.
    pub fn term(rank: usize) -> String {
        format!("term{rank:05}")
    }

    /// Draws one term rank (0 = most frequent).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }

    /// A document body of `len` Zipf-drawn terms joined by spaces.
    /// Repetitions are kept — term frequency within a doc is part of the
    /// distribution BM25 ranks on.
    pub fn document(&self, rng: &mut StdRng, len: usize) -> String {
        let mut words = Vec::with_capacity(len);
        for _ in 0..len {
            words.push(Self::term(self.sample(rng)));
        }
        words.join(" ")
    }

    /// `n` *distinct* query terms drawn from the same skew, so queries hit
    /// common and rare terms in realistic proportion.
    pub fn query_terms(&self, rng: &mut StdRng, n: usize) -> Vec<String> {
        let n = n.min(self.vocabulary());
        let mut ranks: Vec<usize> = Vec::with_capacity(n);
        while ranks.len() < n {
            let rank = self.sample(rng);
            if !ranks.contains(&rank) {
                ranks.push(rank);
            }
        }
        ranks.into_iter().map(Self::term).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let vocab = ZipfTerms::new(500, 1.1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| vocab.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn head_ranks_dominate_the_tail() {
        let vocab = ZipfTerms::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[vocab.sample(&mut rng)] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[500..].iter().sum();
        assert!(head > tail * 2, "zipf skew: head {head} tail {tail}");
        assert!(counts[0] > counts[100].max(1) * 5, "{} vs {}", counts[0], counts[100]);
    }

    #[test]
    fn query_terms_are_distinct_and_capped_by_vocabulary() {
        let vocab = ZipfTerms::new(4, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let terms = vocab.query_terms(&mut rng, 10);
        assert_eq!(terms.len(), 4, "capped at vocabulary size");
        let set: std::collections::HashSet<&String> = terms.iter().collect();
        assert_eq!(set.len(), terms.len());
    }

    #[test]
    fn documents_have_the_requested_length() {
        let vocab = ZipfTerms::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(5);
        for len in [1usize, 7, 32] {
            assert_eq!(vocab.document(&mut rng, len).split_whitespace().count(), len);
        }
    }
}
