//! Workload generators for the Propeller evaluation.
//!
//! Everything the paper's experiments feed into the systems under test:
//!
//! * [`NamespaceSpec`] — synthetic namespaces built the paper's way
//!   (duplicate well-known application file-sets with a scaling factor,
//!   §V-B), with log-normal file sizes and spread modification times;
//!   presets for the paper's datasets (138 k macOS image, 487 k laptop
//!   dataset, 89 k Ubuntu snapshot),
//! * [`FpsCopier`] — the background file-copy process at a fixed
//!   files-per-second intensity (Figures 1 and 11),
//! * [`MixedWorkload`] — the Figure 10 stream: updates with a search every
//!   `r` updates and background commits every `c` updates,
//! * [`PostMark`] — a complete PostMark implementation (Table VI) driven
//!   against the [`propeller_storage::FsModel`] cost profiles,
//! * [`ZipfTerms`] — Zipf-skewed keyword vocabularies for the ranked
//!   content-search (top-k postings) experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fps;
mod mixed;
mod namespace;
mod postmark;
mod terms;

pub use fps::FpsCopier;
pub use mixed::{MixedOp, MixedWorkload};
pub use namespace::NamespaceSpec;
pub use postmark::{PostMark, PostMarkConfig, PostMarkReport};
pub use terms::ZipfTerms;
