//! PostMark (Katcher 1997), the paper's Table VI benchmark.
//!
//! The classic small-file workload: create an initial pool of files across
//! subdirectories, run a transaction phase (each transaction pairs a
//! create-or-delete with a read-or-append), then delete everything.
//! Here it drives a [`FsModel`] cost profile, accruing virtual time, and
//! reports the same figures the paper tabulates: files created per second,
//! read/write throughput, and total elapsed time.

use propeller_storage::{FsModel, FsOp};
use propeller_types::Duration;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// PostMark configuration (paper: 50 000 files, 200 subdirectories).
#[derive(Debug, Clone)]
pub struct PostMarkConfig {
    /// Initial file pool size.
    pub files: usize,
    /// Number of subdirectories.
    pub subdirs: usize,
    /// Transactions in the main phase.
    pub transactions: usize,
    /// File sizes uniform in `[min_size, max_size]`.
    pub min_size: u64,
    /// Upper size bound.
    pub max_size: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PostMarkConfig {
    fn default() -> Self {
        PostMarkConfig {
            files: 50_000,
            subdirs: 200,
            transactions: 20_000,
            min_size: 512,
            max_size: 16 << 10,
            seed: 1997,
        }
    }
}

/// PostMark results, mirroring the paper's Table VI columns.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMarkReport {
    /// File system name.
    pub fs: &'static str,
    /// Files created per second (creation phase + transaction creates).
    pub creates_per_sec: f64,
    /// Read throughput, bytes/second of elapsed time.
    pub read_bytes_per_sec: f64,
    /// Write throughput, bytes/second of elapsed time.
    pub write_bytes_per_sec: f64,
    /// Total modeled elapsed time.
    pub elapsed: Duration,
    /// Total files created.
    pub files_created: u64,
}

/// The PostMark benchmark runner.
///
/// # Examples
///
/// ```
/// use propeller_storage::{FsCostProfile, FsModel};
/// use propeller_workloads::{PostMark, PostMarkConfig};
///
/// let config = PostMarkConfig { files: 500, transactions: 200, ..Default::default() };
/// let report = PostMark::new(config).run(FsModel::new(FsCostProfile::ext4()));
/// assert!(report.creates_per_sec > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PostMark {
    config: PostMarkConfig,
}

impl PostMark {
    /// A runner with the given configuration.
    pub fn new(config: PostMarkConfig) -> Self {
        PostMark { config }
    }

    /// Runs the three PostMark phases against one file-system model.
    pub fn run(&self, mut fs: FsModel) -> PostMarkReport {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut elapsed = Duration::ZERO;
        let mut files_created: u64 = 0;
        let mut bytes_read: u64 = 0;
        let mut bytes_written: u64 = 0;
        // Live pool: file -> size. File identities are (subdir, index).
        let mut pool: Vec<u64> = Vec::with_capacity(cfg.files);

        let rand_size =
            |rng: &mut StdRng| rng.gen_range(cfg.min_size..=cfg.max_size.max(cfg.min_size));

        // Phase 1: create the initial pool (each create writes the file).
        for _ in 0..cfg.files {
            let size = rand_size(&mut rng);
            elapsed += fs.cost(FsOp::Create, &mut rng);
            elapsed += fs.cost(FsOp::Write(size), &mut rng);
            bytes_written += size;
            files_created += 1;
            pool.push(size);
        }

        // Phase 2: transactions. Each transaction is one create-or-delete
        // plus one read-or-append, 50/50, as in Katcher's default mix.
        for _ in 0..cfg.transactions {
            if rng.gen::<bool>() || pool.is_empty() {
                let size = rand_size(&mut rng);
                elapsed += fs.cost(FsOp::Create, &mut rng);
                elapsed += fs.cost(FsOp::Write(size), &mut rng);
                bytes_written += size;
                files_created += 1;
                pool.push(size);
            } else {
                let idx = rng.gen_range(0..pool.len());
                pool.swap_remove(idx);
                elapsed += fs.cost(FsOp::Delete, &mut rng);
            }
            if pool.is_empty() {
                continue;
            }
            let idx = rng.gen_range(0..pool.len());
            if rng.gen::<bool>() {
                let size = pool[idx];
                elapsed += fs.cost(FsOp::Open, &mut rng);
                elapsed += fs.cost(FsOp::Read(size), &mut rng);
                bytes_read += size;
            } else {
                let append = rand_size(&mut rng) / 4 + 1;
                elapsed += fs.cost(FsOp::Open, &mut rng);
                elapsed += fs.cost(FsOp::Write(append), &mut rng);
                bytes_written += append;
                pool[idx] += append;
            }
        }

        // Phase 3: delete everything left.
        for _ in 0..pool.len() {
            elapsed += fs.cost(FsOp::Delete, &mut rng);
        }
        pool.clear();

        let secs = elapsed.as_secs_f64().max(1e-9);
        PostMarkReport {
            fs: fs.name(),
            creates_per_sec: files_created as f64 / secs,
            read_bytes_per_sec: bytes_read as f64 / secs,
            write_bytes_per_sec: bytes_written as f64 / secs,
            elapsed,
            files_created,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_storage::FsCostProfile;

    fn small() -> PostMarkConfig {
        PostMarkConfig { files: 2_000, transactions: 1_000, ..Default::default() }
    }

    #[test]
    fn table_six_ordering_holds() {
        // Paper Table VI create-throughput order:
        // Ext4 > PTFS > Btrfs > Propeller > NTFS-3g > ZFS-fuse.
        let runner = PostMark::new(small());
        let rate = |p: FsCostProfile| runner.run(FsModel::new(p)).creates_per_sec;
        let ext4 = rate(FsCostProfile::ext4());
        let btrfs = rate(FsCostProfile::btrfs());
        let ptfs = rate(FsCostProfile::ptfs());
        let ntfs = rate(FsCostProfile::ntfs_3g());
        let zfs = rate(FsCostProfile::zfs_fuse());
        let prop = rate(FsCostProfile::propeller_fuse());
        assert!(ext4 > ptfs, "ext4 {ext4} vs ptfs {ptfs}");
        assert!(ptfs > prop, "ptfs {ptfs} vs propeller {prop}");
        assert!(prop > ntfs, "propeller {prop} vs ntfs {ntfs}");
        assert!(ntfs > zfs, "ntfs {ntfs} vs zfs {zfs}");
        assert!(btrfs > prop && btrfs < ext4, "btrfs {btrfs} in range");
    }

    #[test]
    fn propeller_overhead_vs_ptfs_is_bounded() {
        // The paper reports Propeller ≈ 2.37x slower than PTFS overall.
        let runner = PostMark::new(small());
        let ptfs = runner.run(FsModel::new(FsCostProfile::ptfs()));
        let prop = runner.run(FsModel::new(FsCostProfile::propeller_fuse()));
        let ratio = prop.elapsed.as_secs_f64() / ptfs.elapsed.as_secs_f64();
        assert!((1.2..4.0).contains(&ratio), "overhead ratio {ratio}");
    }

    #[test]
    fn throughput_fields_consistent() {
        let report = PostMark::new(small()).run(FsModel::new(FsCostProfile::ext4()));
        assert!(report.files_created >= 2_000);
        assert!(report.read_bytes_per_sec > 0.0);
        assert!(report.write_bytes_per_sec > 0.0);
        assert!(!report.elapsed.is_zero());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PostMark::new(small()).run(FsModel::new(FsCostProfile::btrfs()));
        let b = PostMark::new(small()).run(FsModel::new(FsCostProfile::btrfs()));
        assert_eq!(a, b);
    }
}
