//! The mixed update/search workload (Figure 10).

use propeller_types::FileId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One operation of the mixed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Update (re-index) this file.
    Update(FileId),
    /// Run the experiment's search query.
    Search,
    /// A background commit fires (the paper simulates the lazy-cache
    /// "timeout" by committing every 500 updates).
    BackgroundCommit,
}

/// Generator for the paper's §V-D stream: `updates` total updates against
/// a fixed file group, one search every `search_every` updates, one
/// background commit every `commit_every` updates (paper: 10 000 updates,
/// search every 1 024, commit every 500).
///
/// # Examples
///
/// ```
/// use propeller_workloads::{MixedOp, MixedWorkload};
///
/// let ops: Vec<MixedOp> = MixedWorkload::paper_default(1000).collect();
/// let searches = ops.iter().filter(|o| matches!(o, MixedOp::Search)).count();
/// assert_eq!(searches, 9, "one search per 1024 updates in 10_000");
/// ```
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Total updates to issue.
    pub updates: u64,
    /// Emit a search after this many updates.
    pub search_every: u64,
    /// Emit a background commit after this many updates.
    pub commit_every: u64,
    /// Files in the target group (updates pick uniformly).
    pub group_files: u64,
    /// RNG seed.
    pub seed: u64,
}

impl MixedWorkload {
    /// The paper's exact parameters over a group of `group_files` files.
    pub fn paper_default(group_files: u64) -> impl Iterator<Item = MixedOp> {
        MixedWorkload {
            updates: 10_000,
            search_every: 1024,
            commit_every: 500,
            group_files,
            seed: 0xF16,
        }
        .into_iter()
    }
}

impl IntoIterator for MixedWorkload {
    type Item = MixedOp;
    type IntoIter = MixedIter;

    fn into_iter(self) -> MixedIter {
        MixedIter {
            rng: StdRng::seed_from_u64(self.seed),
            cfg: self,
            issued: 0,
            queue: std::collections::VecDeque::new(),
        }
    }
}

/// Iterator over a [`MixedWorkload`] stream.
#[derive(Debug)]
pub struct MixedIter {
    cfg: MixedWorkload,
    rng: StdRng,
    issued: u64,
    queue: std::collections::VecDeque<MixedOp>,
}

impl Iterator for MixedIter {
    type Item = MixedOp;

    fn next(&mut self) -> Option<MixedOp> {
        if let Some(op) = self.queue.pop_front() {
            return Some(op);
        }
        if self.issued >= self.cfg.updates {
            return None;
        }
        self.issued += 1;
        let file = FileId::new(self.rng.gen_range(0..self.cfg.group_files.max(1)));
        // Interleave the periodic events *after* the update that crosses
        // the boundary, matching the paper's description.
        if self.issued.is_multiple_of(self.cfg.commit_every) {
            self.queue.push_back(MixedOp::BackgroundCommit);
        }
        if self.issued.is_multiple_of(self.cfg.search_every) {
            self.queue.push_back(MixedOp::Search);
        }
        Some(MixedOp::Update(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        let ops: Vec<MixedOp> = MixedWorkload::paper_default(1000).collect();
        let updates = ops.iter().filter(|o| matches!(o, MixedOp::Update(_))).count();
        let searches = ops.iter().filter(|o| matches!(o, MixedOp::Search)).count();
        let commits = ops.iter().filter(|o| matches!(o, MixedOp::BackgroundCommit)).count();
        assert_eq!(updates, 10_000);
        assert_eq!(searches, 10_000 / 1024);
        assert_eq!(commits, 10_000 / 500);
    }

    #[test]
    fn updates_stay_in_group() {
        let wl = MixedWorkload {
            updates: 500,
            search_every: 100,
            commit_every: 50,
            group_files: 10,
            seed: 1,
        };
        for op in wl {
            if let MixedOp::Update(f) = op {
                assert!(f.raw() < 10);
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || MixedWorkload::paper_default(100).collect::<Vec<_>>();
        assert_eq!(run(), run());
    }

    #[test]
    fn search_follows_boundary_update() {
        let wl = MixedWorkload {
            updates: 2048,
            search_every: 1024,
            commit_every: u64::MAX,
            group_files: 5,
            seed: 2,
        };
        let ops: Vec<MixedOp> = wl.into_iter().collect();
        // Ops 0..1023 are updates, op at index 1024 is the first search.
        assert!(matches!(ops[1023], MixedOp::Update(_)));
        assert_eq!(ops[1024], MixedOp::Search);
    }
}
