//! The background file-copy process (Figures 1 and 11).

use propeller_types::{Duration, InodeAttrs, Timestamp};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates file-copy events at a fixed files-per-second intensity: the
/// paper's background I/O load ("we spawn a background process to copy
/// files at various speeds").
///
/// Iterate to receive `(time, path, attrs)` creation events.
///
/// # Examples
///
/// ```
/// use propeller_types::Timestamp;
/// use propeller_workloads::FpsCopier;
///
/// let copier = FpsCopier::new(5, Timestamp::from_secs(0), 7);
/// let events: Vec<_> = copier.take_for_secs(10).collect();
/// assert_eq!(events.len(), 50); // 5 files/s for 10 s
/// assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
/// ```
#[derive(Debug, Clone)]
pub struct FpsCopier {
    fps: u64,
    start: Timestamp,
    seed: u64,
}

impl FpsCopier {
    /// A copier creating `fps` files per second starting at `start`.
    pub fn new(fps: u64, start: Timestamp, seed: u64) -> Self {
        FpsCopier { fps, start, seed }
    }

    /// The configured intensity.
    pub fn fps(&self) -> u64 {
        self.fps
    }

    /// Yields events for `secs` seconds of copying.
    pub fn take_for_secs(
        &self,
        secs: u64,
    ) -> impl Iterator<Item = (Timestamp, String, InodeAttrs)> + use<> {
        let fps = self.fps;
        let start = self.start;
        let seed = self.seed;
        let mut rng = StdRng::seed_from_u64(seed);
        let total = fps * secs;
        let gap = if fps == 0 { Duration::ZERO } else { Duration::from_secs(1) / fps };
        (0..total).map(move |i| {
            let t = start + gap * i;
            let path = format!("/copied/{seed}/f{i}");
            let size = rng.gen_range(1u64 << 10..4u64 << 20);
            let attrs = InodeAttrs::builder().size(size).mtime(t).ctime(t).build();
            (t, path, attrs)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fps_yields_nothing() {
        let copier = FpsCopier::new(0, Timestamp::EPOCH, 1);
        assert_eq!(copier.take_for_secs(100).count(), 0);
    }

    #[test]
    fn rate_is_respected() {
        let copier = FpsCopier::new(10, Timestamp::from_secs(5), 1);
        let events: Vec<_> = copier.take_for_secs(3).collect();
        assert_eq!(events.len(), 30);
        // First event at t=5s, last strictly before t=8s.
        assert_eq!(events[0].0, Timestamp::from_secs(5));
        assert!(events.last().unwrap().0 < Timestamp::from_secs(8));
    }

    #[test]
    fn paths_are_unique_and_deterministic() {
        let a: Vec<_> = FpsCopier::new(7, Timestamp::EPOCH, 3).take_for_secs(5).collect();
        let b: Vec<_> = FpsCopier::new(7, Timestamp::EPOCH, 3).take_for_secs(5).collect();
        assert_eq!(a, b);
        let paths: std::collections::HashSet<&str> = a.iter().map(|(_, p, _)| p.as_str()).collect();
        assert_eq!(paths.len(), a.len());
    }
}
