//! The distributed Propeller cluster (paper §IV).
//!
//! A Propeller cluster is one **Master Node** plus N **Index Nodes**,
//! driven by client-side **File Query Engines**:
//!
//! * the Master owns index metadata — the `file → ACG` map, ACG placement
//!   (`ACG → Index Node`), node liveness via heartbeats — and *routes*
//!   requests; it never serves data,
//! * Index Nodes own the per-ACG index groups (WAL + lazy cache + B+-tree /
//!   hash / K-D indices) and the per-ACG causality graphs, execute searches
//!   and perform splits/migrations under Master instruction,
//! * clients resolve target ACGs through the Master, then talk to Index
//!   Nodes **directly and in parallel** — both for batched index updates
//!   and for fan-out searches. No cross-ACG transaction exists anywhere
//!   (paper: "there is no cross-ACG or cross-IN transaction").
//!
//! The wire is an in-process RPC fabric ([`rpc::Rpc`]): every node runs a
//! real thread with a mailbox; an optional GbE cost model charges virtual
//! time per message so modeled-mode experiments account network costs.
//!
//! # Examples
//!
//! ```
//! use propeller_cluster::{Cluster, ClusterConfig};
//! use propeller_index::{FileRecord, IndexOp};
//! use propeller_query::Query;
//! use propeller_types::{FileId, InodeAttrs, Timestamp};
//!
//! let cluster = Cluster::start(ClusterConfig { index_nodes: 4, ..Default::default() });
//! let mut client = cluster.client();
//!
//! let record = FileRecord::new(
//!     FileId::new(1),
//!     InodeAttrs::builder().size(32 << 20).build(),
//! );
//! client.index_files(vec![record]).unwrap();
//!
//! let q = Query::parse("size>16m", Timestamp::from_secs(0)).unwrap();
//! let hits = client.search(&q.predicate).unwrap();
//! assert_eq!(hits, vec![FileId::new(1)]);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod index_node;
mod master;
mod messages;
mod rpc;

pub use client::FileQueryEngine;
pub use cluster::{Cluster, ClusterConfig};
pub use index_node::{IndexNode, IndexNodeConfig};
pub use master::{MasterConfig, MasterNode, NodeStatus};
pub use messages::{AcgSummary, Request, Response};
pub use rpc::Rpc;
