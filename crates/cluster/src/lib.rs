//! The distributed Propeller cluster (paper §IV).
//!
//! A Propeller cluster is one **Master Node** plus N **Index Nodes**,
//! driven by client-side **File Query Engines**:
//!
//! * the Master owns index metadata — the `file → ACG` map, ACG placement
//!   (`ACG → Index Node`), node liveness via heartbeats — and *routes*
//!   requests; it never serves data,
//! * Index Nodes own the per-ACG index groups (WAL + lazy cache + B+-tree /
//!   hash / K-D indices) and the per-ACG causality graphs, execute searches
//!   and perform splits/migrations under Master instruction,
//! * clients resolve target ACGs through the Master, then talk to Index
//!   Nodes **directly and in parallel** — both for batched index updates
//!   and for fan-out searches. No cross-ACG transaction exists anywhere
//!   (paper: "there is no cross-ACG or cross-IN transaction").
//!
//! The wire is an in-process RPC fabric ([`rpc::Rpc`]): every node runs a
//! real thread with a mailbox; an optional GbE cost model charges virtual
//! time per message so modeled-mode experiments account network costs.
//!
//! # Examples
//!
//! Searches are expressed as [`propeller_query::SearchRequest`]s: the
//! predicate plus top-k limit, sort key, projection, pagination cursor and
//! the fan-out failure policy. Each Index Node answers with its local
//! top-k; the client engine k-way merges the per-node lists.
//!
//! ```
//! use propeller_cluster::{Cluster, ClusterConfig};
//! use propeller_index::FileRecord;
//! use propeller_query::{FanOutPolicy, SearchRequest, SortKey};
//! use propeller_types::{AttrName, FileId, InodeAttrs, Timestamp};
//!
//! let cluster = Cluster::start(ClusterConfig { index_nodes: 4, ..Default::default() });
//! let mut client = cluster.client();
//!
//! client.index_files(
//!     (1..=100u64)
//!         .map(|i| FileRecord::new(
//!             FileId::new(i),
//!             InodeAttrs::builder().size(i << 20).build(),
//!         ))
//!         .collect(),
//! ).unwrap();
//!
//! // Top-3 largest files above 16 MiB, tolerating one dead Index Node.
//! let request = SearchRequest::parse("size>16m", Timestamp::from_secs(0))
//!     .unwrap()
//!     .with_limit(3)
//!     .sorted_by(SortKey::Descending(AttrName::Size))
//!     .with_fan_out(FanOutPolicy::AllowPartial { min_nodes: 3 });
//! let resp = client.search_with(&request).unwrap();
//! assert_eq!(resp.file_ids(), vec![FileId::new(100), FileId::new(99), FileId::new(98)]);
//! assert!(resp.complete && resp.unreachable.is_empty());
//! assert!(resp.cursor.is_some(), "more pages available");
//!
//! // The classic wrapper still returns the full sorted id set.
//! assert_eq!(client.search_text("size>99m").unwrap(), vec![FileId::new(100)]);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod index_node;
mod master;
mod messages;
mod meta;
mod pool;
mod rpc;

pub use client::{ClusterSearchStream, FileQueryEngine};
pub use cluster::{Cluster, ClusterConfig};
pub use index_node::{IndexNode, IndexNodeConfig};
pub use master::{MasterConfig, MasterNode, NodeStatus};
pub use messages::{AcgSummary, MigrationJob, Request, Response};
pub use pool::WorkerPool;
pub use propeller_obs::{MetricsSnapshot, SlowQuery, TraceContext, TraceTree};
pub use rpc::Rpc;
