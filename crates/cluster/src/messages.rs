//! Cluster message types.

use propeller_index::{FileRecord, IndexOp, IndexSpec};
use propeller_obs::{MetricsSnapshot, SlowQuery, Span, TraceContext};
use propeller_query::{Hit, SearchRequest, SearchStats};
use propeller_trace::EdgeUpdate;
use propeller_types::{AcgId, Error, FileId, NodeId, Timestamp};

/// Per-ACG status carried in heartbeats (file count drives the Master's
/// split decisions; paper: the IN reports scale, the MN instructs splits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcgSummary {
    /// The ACG.
    pub acg: AcgId,
    /// The ACG's projected scale: indexed files plus the *net* effect of
    /// buffered ops (pending re-upserts of indexed files add nothing;
    /// pending removes subtract). This is what the Master compares to its
    /// split threshold, so it must not over-count update-heavy traffic.
    pub files: usize,
    /// Buffered (uncommitted) ops, raw (the commit backlog).
    pub pending_ops: usize,
}

/// Route-invalidation hints piggybacked on Master responses: files whose
/// ACG moved in splits the client has not yet heard about. Clients drop
/// the listed routes from their cache **eagerly**, instead of discovering
/// each one lazily through an [`propeller_types::Error::StaleRoute`]
/// rejection, a cache drop and a retry round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteHints {
    /// The Master's routing generation as of this response; the client
    /// passes it back as `hints_since` on its next resolve.
    pub upto: u64,
    /// Files moved by splits committed in generations `(since, upto]`.
    pub moved: Vec<FileId>,
    /// `false` when the Master's bounded split log no longer reaches back
    /// to `since` — the client cannot know *which* routes moved and must
    /// drop its whole cache.
    pub complete: bool,
}

impl Default for RouteHints {
    fn default() -> Self {
        RouteHints { upto: 0, moved: Vec::new(), complete: true }
    }
}

/// One in-flight two-phase migration, as handed to the coordinator by
/// [`Request::TakeMigrationWork`]. The job is **restartable from any
/// phase**: every step (extract, install, install-ack, remove, commit) is
/// idempotent, so a coordinator that crashed mid-migration simply re-runs
/// the job from the top after recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationJob {
    /// The ACG the part is being carved out of.
    pub source: AcgId,
    /// The source ACG's primary replica.
    pub source_node: NodeId,
    /// The reserved id of the new ACG (not routable until commit).
    pub new_acg: AcgId,
    /// The files being moved.
    pub moved: Vec<FileId>,
    /// The replica set the part is installed on, primary first.
    pub targets: Vec<NodeId>,
    /// Whether the Master already durably logged the install ack — when
    /// true the coordinator may skip straight to the durable remove.
    pub installed: bool,
}

/// A request flowing through the cluster fabric.
#[derive(Debug, Clone)]
pub enum Request {
    // ---- client → master -------------------------------------------------
    /// Resolve (allocating as needed) the ACG and Index Node for each file.
    ResolveFiles {
        /// Files about to be indexed.
        files: Vec<FileId>,
        /// The routing generation of the last [`RouteHints`] this client
        /// applied (0 for a fresh client); the response's hints cover
        /// everything since.
        hints_since: u64,
        /// Trace context of the sampled request this resolve serves
        /// ([`TraceContext::NONE`] when unsampled).
        ctx: TraceContext,
    },
    /// List every ACG and its owning Index Node (search fan-out set).
    LocateAcgs,
    /// Register a user-defined index cluster-wide.
    CreateIndex {
        /// The index definition.
        spec: IndexSpec,
    },
    /// Unregister a user-defined index (rollback of a partial broadcast,
    /// or explicit removal).
    DropIndex {
        /// The index name.
        name: String,
    },
    /// Index Node liveness + load report.
    Heartbeat {
        /// Reporting node.
        node: NodeId,
        /// Status of each hosted ACG.
        acgs: Vec<AcgSummary>,
        /// The node's instantaneous load: suspended streamed search
        /// sessions (queue depth). The Master folds it into
        /// [`Response::NodeLoadReport`] so `follower_reads` clients route
        /// opens to the least-loaded live replica.
        load: u64,
        /// Report time.
        now: Timestamp,
    },
    /// Ask the Master for split work discovered via heartbeats (driven by
    /// the external coordinator, keeping node threads call-free).
    TakeSplitWork,
    /// Record the outcome of a completed split/migration.
    CommitSplit {
        /// The ACG that was split.
        acg: AcgId,
        /// Files that remained.
        kept: Vec<FileId>,
        /// The new ACG created from the moved half.
        new_acg: AcgId,
        /// Files that moved.
        moved: Vec<FileId>,
        /// The replica set now hosting `new_acg`, primary first.
        targets: Vec<NodeId>,
    },
    /// Allocate a fresh ACG id on a least-loaded replica set of
    /// `replication` nodes (coordinator use).
    AllocateAcg,
    /// Phase one of a two-phase migration: durably reserve a new ACG id
    /// and a target replica set for `moved` files of `acg`, **without**
    /// making the new group routable. The Master logs the intent before
    /// answering [`Response::MigrationBegun`], so a crash at any later
    /// point recovers the migration instead of stranding the part.
    BeginMigration {
        /// The source ACG being carved.
        acg: AcgId,
        /// The files being carved out.
        moved: Vec<FileId>,
    },
    /// Every target durably installed the part: the Master logs the ack,
    /// after which (and only after which) the coordinator may issue the
    /// durable remove on the source.
    InstallAcked {
        /// The migration's new-group id.
        new_acg: AcgId,
    },
    /// Phase two of a two-phase migration: atomically remap the moved
    /// files, make the new group routable and advance the routing
    /// generation. Requires a prior [`Request::InstallAcked`].
    CommitMigration {
        /// The migration's new-group id.
        new_acg: AcgId,
    },
    /// Fetch the Master's in-flight migrations (restart/recovery path:
    /// the coordinator re-runs each job from the top; every phase is
    /// idempotent). Non-destructive — jobs leave the list only via
    /// [`Request::CommitMigration`].
    TakeMigrationWork,
    /// Fetch the Master's cluster-wide index-spec registry (used to
    /// re-broadcast specs to revived nodes whose local state predates
    /// their creation).
    ListIndexSpecs,
    /// Fetch the latest heartbeat-reported load of every node the Master
    /// considers live.
    NodeLoads,
    /// Explicitly bind files to an ACG (used when ACG clustering has
    /// computed partitions out-of-band).
    BindFiles {
        /// The ACG to bind to.
        acg: AcgId,
        /// Files to bind.
        files: Vec<FileId>,
    },

    // ---- client → index node ---------------------------------------------
    /// A batch of index operations for one ACG, addressed to the ACG's
    /// **primary** replica. The primary logs the batch as exactly one WAL
    /// frame and answers [`Response::BatchLogged`] with the frame's LSN;
    /// the client then ships the same frame to each follower replica via
    /// [`Request::ReplicateBatch`]. Replication is client-driven on
    /// purpose: nodes never call each other synchronously, so the actor
    /// graph cannot deadlock on two primaries replicating to one another.
    IndexBatch {
        /// Target ACG.
        acg: AcgId,
        /// The operations.
        ops: Vec<IndexOp>,
        /// Client-side send time.
        now: Timestamp,
        /// Trace context ([`TraceContext::NONE`] when unsampled).
        ctx: TraceContext,
    },
    /// Apply one replicated WAL frame to a follower replica of `acg`.
    /// Every [`Request::IndexBatch`] maps to exactly one frame, so a
    /// follower applying the same frames in the same order assigns the
    /// same LSNs as the primary — replicas stay bit-identical by
    /// construction. The follower checks `lsn` against its own log:
    /// duplicates (`lsn <= last`) are acked without re-applying, the next
    /// frame (`lsn == last + 1`) is applied and committed eagerly, and a
    /// gap (`lsn > last + 1`) is refused with
    /// [`Response::ReplicaLagging`] so the sender runs catch-up.
    ReplicateBatch {
        /// Target ACG (a follower replica on this node).
        acg: AcgId,
        /// The primary's LSN for this frame.
        lsn: u64,
        /// The frame's operations.
        ops: Vec<IndexOp>,
        /// Client-side send time.
        now: Timestamp,
        /// Trace context ([`TraceContext::NONE`] when unsampled).
        ctx: TraceContext,
    },
    /// Fetch the WAL frames of `acg` after `after_lsn` from a live
    /// replica, for catching a lagging peer up. When the replica's WAL no
    /// longer reaches back that far (committed in-memory WALs truncate,
    /// durable WALs truncate at snapshots), it answers a full
    /// [`Response::AcgSeed`] instead of frames.
    FetchAcgFrames {
        /// The ACG to read frames from.
        acg: AcgId,
        /// Ship frames with LSN strictly greater than this.
        after_lsn: u64,
        /// Client-side send time.
        now: Timestamp,
    },
    /// Install a full-state seed on a lagging replica of `acg`: replaces
    /// the replica's records wholesale and rebases its WAL so the next
    /// frame continues at `lsn + 1`, re-aligned with the source.
    SeedAcg {
        /// The ACG to seed.
        acg: AcgId,
        /// The source's applied LSN at capture time.
        lsn: u64,
        /// The source's full record set.
        records: Vec<FileRecord>,
        /// Client-side send time.
        now: Timestamp,
    },
    /// Report the last WAL LSN of every ACG hosted on this node (the
    /// coordinator uses it to pick the freshest live replica as the
    /// catch-up source when a node revives).
    AcgLsns,
    /// Execute a search against the given ACGs (commit-then-search). The
    /// node evaluates the full request locally: predicate, per-ACG top-k,
    /// sort, cursor and projection.
    Search {
        /// ACGs hosted on this node to search.
        acgs: Vec<AcgId>,
        /// The full search request (limit, sort, projection, cursor).
        request: SearchRequest,
        /// Client-side send time.
        now: Timestamp,
        /// Trace context ([`TraceContext::NONE`] when unsampled).
        ctx: TraceContext,
    },
    /// Open a **streamed search session** against the given ACGs
    /// (commit-then-search, like [`Request::Search`]) and return its first
    /// page. The node runs the non-ordered share of the search to
    /// completion (bounded by the request's limit) but suspends the
    /// ordered streams between pulls, so the client's cluster-wide merge
    /// can stop pulling this node as soon as its hits provably sort after
    /// the global top-k.
    OpenSearch {
        /// ACGs hosted on this node to search.
        acgs: Vec<AcgId>,
        /// The full search request.
        request: SearchRequest,
        /// The opening client (per-client session caps key off this).
        client: u64,
        /// Hits per page.
        page: usize,
        /// Client-side send time.
        now: Timestamp,
        /// Trace context ([`TraceContext::NONE`] when unsampled).
        ctx: TraceContext,
    },
    /// Pull the next page of a streamed search session. Expired sessions
    /// (evicted, closed, node restarted) are rejected with
    /// [`propeller_types::Error::SearchSessionExpired`]; the client
    /// reopens, resuming after the last hit it received.
    PullHits {
        /// The session (from [`Response::SearchPage`]).
        session: u64,
        /// Hits per page.
        page: usize,
        /// Trace context ([`TraceContext::NONE`] when unsampled).
        ctx: TraceContext,
    },
    /// Close a streamed search session, reporting what streaming saved
    /// (see [`propeller_query::SearchStats::node_hits_unsent`]). Closing
    /// an unknown session is a no-op, so closes are idempotent.
    CloseSearch {
        /// The session to drop.
        session: u64,
    },
    /// Flush captured access-causality edges into an ACG's graph.
    FlushAcgDelta {
        /// Target ACG.
        acg: AcgId,
        /// The weighted edges.
        edges: Vec<EdgeUpdate>,
    },

    // ---- master/coordinator → index node -----------------------------------
    /// Compute a balanced bisection of an oversized ACG.
    SplitAcg {
        /// The ACG to split.
        acg: AcgId,
    },
    /// Extract the records and subgraph of `files` from `acg` (migration
    /// source side). The source **tombstones and retains** the extracted
    /// records: stale writes are fenced immediately, but the data is not
    /// removed until the Master durably acks the install and the
    /// coordinator issues [`Request::RemoveAcgPart`] — so a crash between
    /// extract and install loses nothing. Idempotent: re-extracting the
    /// same files returns the same payload.
    ExtractAcgPart {
        /// Source ACG.
        acg: AcgId,
        /// Files to extract.
        files: Vec<FileId>,
    },
    /// Durably remove a previously extracted (tombstoned-and-retained)
    /// part from the migration source — issued only after the Master
    /// logged the targets' install ack. Idempotent: removing
    /// already-removed files is a no-op.
    RemoveAcgPart {
        /// Source ACG.
        acg: AcgId,
        /// The files whose retained copies to drop.
        files: Vec<FileId>,
    },
    /// Install a migrated ACG part (migration target side).
    InstallAcg {
        /// New ACG id.
        acg: AcgId,
        /// Its records.
        records: Vec<FileRecord>,
        /// Its causality edges.
        edges: Vec<EdgeUpdate>,
    },
    /// Advance background work: commit timed-out caches, emit a heartbeat.
    Tick {
        /// Current time.
        now: Timestamp,
    },
    /// Fetch an Index Node's counters (observability; tests and benches).
    NodeStats,
    /// Harvest (and remove) every span this lane recorded for one trace.
    /// The client fans this out after a sampled request and assembles the
    /// shards into a single [`propeller_obs::TraceTree`].
    DumpTrace {
        /// The trace to harvest.
        trace: u64,
    },
    /// Snapshot this lane's metrics registry. Snapshots merge exactly
    /// (histograms sum bucket-wise), so `Cluster::metrics_report` computes
    /// true cross-node quantiles.
    Metrics,
    /// Dump this node's slow-query ring (postmortems).
    DumpSlowQueries,
    /// Orderly shutdown.
    Shutdown,
}

/// A response to a [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Resolution result, parallel to the request's file list, plus the
    /// route-invalidation hints accumulated since the client's last
    /// resolve.
    Resolved {
        /// One `(file, acg, node)` row per requested file; the node is the
        /// ACG's **primary** replica (where writes go first).
        rows: Vec<(FileId, AcgId, NodeId)>,
        /// Split-driven route invalidations for the client's cache.
        hints: RouteHints,
        /// The full replica set (primary first) of every ACG named in
        /// `rows`, so the client can replicate logged batches to
        /// followers without another Master round trip.
        replicas: Vec<(AcgId, Vec<NodeId>)>,
    },
    /// ACG placement listing: each ACG's replica set, primary first.
    Located(Vec<(AcgId, Vec<NodeId>)>),
    /// One node's partial search response: hits in request sort order
    /// (at most `limit`, deduplicated per node) plus this node's share of
    /// the execution stats — including the service time measured against
    /// the node's own clock and any ordered-scan early-termination
    /// counters. The client's engine k-way merges these.
    SearchHits {
        /// The node's top hits, sorted per the request.
        hits: Vec<Hit>,
        /// The node's execution stats.
        stats: SearchStats,
    },
    /// One page of a streamed search session
    /// ([`Request::OpenSearch`] / [`Request::PullHits`]): hits strictly
    /// after everything the session shipped before, in request sort
    /// order — so per-node pages chain into one sorted stream the client
    /// merge consumes directly.
    SearchPage {
        /// The session to pull next (0 when `exhausted`: the node already
        /// dropped it and the client must neither pull nor close).
        session: u64,
        /// The page's hits.
        hits: Vec<Hit>,
        /// This round trip's share of the stats (`pages_pulled` = 1).
        stats: SearchStats,
        /// The session has nothing left to ship.
        exhausted: bool,
    },
    /// A closed streamed session's final accounting: the hits the node
    /// never had to ship and the ordered candidates it never examined.
    SearchClosed {
        /// The close-time stats (`node_hits_unsent`, `merge_skipped`).
        stats: SearchStats,
    },
    /// A split computed by an Index Node: the two halves.
    SplitHalves {
        /// Files for the left (kept) half.
        left: Vec<FileId>,
        /// Files for the right (moved) half.
        right: Vec<FileId>,
    },
    /// Pending split work from the Master: `(acg, owner)` pairs.
    SplitWork(Vec<(AcgId, NodeId)>),
    /// A freshly allocated ACG and its assigned replica set, primary
    /// first.
    AcgAllocated(AcgId, Vec<NodeId>),
    /// A primary logged an [`Request::IndexBatch`] as one WAL frame.
    BatchLogged {
        /// The frame's LSN (ship it with the follower
        /// [`Request::ReplicateBatch`]s).
        lsn: u64,
    },
    /// A follower applied (or already had) a replicated frame.
    ReplicaApplied {
        /// The follower's last WAL LSN after applying.
        lsn: u64,
    },
    /// A follower refused a replicated frame because it would leave a gap
    /// in its WAL; the sender must catch the follower up (frames or seed)
    /// before retrying.
    ReplicaLagging {
        /// The follower's last WAL LSN (catch-up starts after it).
        lsn: u64,
    },
    /// Raw WAL frames for replica catch-up, in LSN order.
    AcgFrames(Vec<(u64, Vec<u8>)>),
    /// A full-state seed for replica catch-up, captured post-commit so
    /// the record set reflects every logged frame.
    AcgSeed {
        /// The source's applied LSN at capture time.
        lsn: u64,
        /// The source's full record set.
        records: Vec<FileRecord>,
    },
    /// Per-ACG last WAL LSNs of one node (response to
    /// [`Request::AcgLsns`]), sorted by ACG id.
    AcgLsnReport(Vec<(AcgId, u64)>),
    /// Extracted migration payload.
    AcgPart {
        /// Extracted records.
        records: Vec<FileRecord>,
        /// Extracted causality edges.
        edges: Vec<EdgeUpdate>,
    },
    /// An Index Node's per-ACG status (returned by `Tick`; the coordinator
    /// forwards it to the Master as a heartbeat).
    Status {
        /// Status of each hosted ACG.
        acgs: Vec<AcgSummary>,
        /// The node's instantaneous load (suspended streamed sessions),
        /// piggybacked onto the heartbeat for load-feedback routing.
        load: u64,
    },
    /// Phase one of a migration was durably logged
    /// (response to [`Request::BeginMigration`]).
    MigrationBegun {
        /// The reserved new-group id.
        new_acg: AcgId,
        /// The replica set to install the part on, primary first.
        targets: Vec<NodeId>,
    },
    /// The Master's in-flight migrations
    /// (response to [`Request::TakeMigrationWork`]).
    MigrationWork(Vec<MigrationJob>),
    /// The Master's cluster-wide index-spec registry
    /// (response to [`Request::ListIndexSpecs`]).
    IndexSpecs(Vec<IndexSpec>),
    /// Latest heartbeat-reported load per live node
    /// (response to [`Request::NodeLoads`]).
    NodeLoadReport(Vec<(NodeId, u64)>),
    /// An Index Node's counters (response to [`Request::NodeStats`]).
    NodeStatsReport {
        /// The reporting node.
        node: NodeId,
        /// Hosted ACGs.
        acgs: usize,
        /// Suspended streamed search sessions.
        open_sessions: usize,
        /// Searches served (one-shot plus session opens).
        searches_served: u64,
        /// Index ops received (primary plus replicated).
        ops_received: u64,
        /// Epochs published (non-empty commits).
        commits_published: u64,
        /// Snapshot jobs offloaded to the background writer.
        snapshots_offloaded: u64,
    },
    /// One lane's harvested spans for a trace
    /// (response to [`Request::DumpTrace`]).
    TraceSpans(Vec<Span>),
    /// One lane's metrics snapshot (response to [`Request::Metrics`]).
    Metrics(Box<MetricsSnapshot>),
    /// One node's slow-query ring, oldest first
    /// (response to [`Request::DumpSlowQueries`]).
    SlowQueries(Vec<SlowQuery>),
    /// Failure.
    Err(Error),
}

impl Response {
    /// Unwraps `Ok`-like responses into `Result`.
    pub fn into_result(self) -> Result<Response, Error> {
        match self {
            Response::Err(e) => Err(e),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_result_propagates_errors() {
        let err = Response::Err(Error::Shutdown);
        assert!(err.into_result().is_err());
        assert!(Response::Ok.into_result().is_ok());
    }

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let req = Request::LocateAcgs;
        let _ = format!("{:?}", req.clone());
        let resp = Response::Located(vec![(AcgId::new(1), vec![NodeId::new(2), NodeId::new(3)])]);
        let _ = format!("{:?}", resp.clone());
    }
}
