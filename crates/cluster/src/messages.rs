//! Cluster message types.

use propeller_index::{FileRecord, IndexOp, IndexSpec};
use propeller_query::{Hit, SearchRequest, SearchStats};
use propeller_trace::EdgeUpdate;
use propeller_types::{AcgId, Error, FileId, NodeId, Timestamp};

/// Per-ACG status carried in heartbeats (file count drives the Master's
/// split decisions; paper: the IN reports scale, the MN instructs splits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcgSummary {
    /// The ACG.
    pub acg: AcgId,
    /// The ACG's projected scale: indexed files plus the *net* effect of
    /// buffered ops (pending re-upserts of indexed files add nothing;
    /// pending removes subtract). This is what the Master compares to its
    /// split threshold, so it must not over-count update-heavy traffic.
    pub files: usize,
    /// Buffered (uncommitted) ops, raw (the commit backlog).
    pub pending_ops: usize,
}

/// A request flowing through the cluster fabric.
#[derive(Debug, Clone)]
pub enum Request {
    // ---- client → master -------------------------------------------------
    /// Resolve (allocating as needed) the ACG and Index Node for each file.
    ResolveFiles {
        /// Files about to be indexed.
        files: Vec<FileId>,
    },
    /// List every ACG and its owning Index Node (search fan-out set).
    LocateAcgs,
    /// Register a user-defined index cluster-wide.
    CreateIndex {
        /// The index definition.
        spec: IndexSpec,
    },
    /// Unregister a user-defined index (rollback of a partial broadcast,
    /// or explicit removal).
    DropIndex {
        /// The index name.
        name: String,
    },
    /// Index Node liveness + load report.
    Heartbeat {
        /// Reporting node.
        node: NodeId,
        /// Status of each hosted ACG.
        acgs: Vec<AcgSummary>,
        /// Report time.
        now: Timestamp,
    },
    /// Ask the Master for split work discovered via heartbeats (driven by
    /// the external coordinator, keeping node threads call-free).
    TakeSplitWork,
    /// Record the outcome of a completed split/migration.
    CommitSplit {
        /// The ACG that was split.
        acg: AcgId,
        /// Files that remained.
        kept: Vec<FileId>,
        /// The new ACG created from the moved half.
        new_acg: AcgId,
        /// Files that moved.
        moved: Vec<FileId>,
        /// The node now hosting `new_acg`.
        target: NodeId,
    },
    /// Allocate a fresh ACG id on the least-loaded node (coordinator use).
    AllocateAcg,
    /// Explicitly bind files to an ACG (used when ACG clustering has
    /// computed partitions out-of-band).
    BindFiles {
        /// The ACG to bind to.
        acg: AcgId,
        /// Files to bind.
        files: Vec<FileId>,
    },

    // ---- client → index node ---------------------------------------------
    /// A batch of index operations for one ACG.
    IndexBatch {
        /// Target ACG.
        acg: AcgId,
        /// The operations.
        ops: Vec<IndexOp>,
        /// Client-side send time.
        now: Timestamp,
    },
    /// Execute a search against the given ACGs (commit-then-search). The
    /// node evaluates the full request locally: predicate, per-ACG top-k,
    /// sort, cursor and projection.
    Search {
        /// ACGs hosted on this node to search.
        acgs: Vec<AcgId>,
        /// The full search request (limit, sort, projection, cursor).
        request: SearchRequest,
        /// Client-side send time.
        now: Timestamp,
    },
    /// Flush captured access-causality edges into an ACG's graph.
    FlushAcgDelta {
        /// Target ACG.
        acg: AcgId,
        /// The weighted edges.
        edges: Vec<EdgeUpdate>,
    },

    // ---- master/coordinator → index node -----------------------------------
    /// Compute a balanced bisection of an oversized ACG.
    SplitAcg {
        /// The ACG to split.
        acg: AcgId,
    },
    /// Extract the records and subgraph of `files` from `acg` (migration
    /// source side).
    ExtractAcgPart {
        /// Source ACG.
        acg: AcgId,
        /// Files to extract.
        files: Vec<FileId>,
    },
    /// Install a migrated ACG part (migration target side).
    InstallAcg {
        /// New ACG id.
        acg: AcgId,
        /// Its records.
        records: Vec<FileRecord>,
        /// Its causality edges.
        edges: Vec<EdgeUpdate>,
    },
    /// Advance background work: commit timed-out caches, emit a heartbeat.
    Tick {
        /// Current time.
        now: Timestamp,
    },
    /// Orderly shutdown.
    Shutdown,
}

/// A response to a [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Resolution result, parallel to the request's file list.
    Resolved(Vec<(FileId, AcgId, NodeId)>),
    /// ACG placement listing.
    Located(Vec<(AcgId, NodeId)>),
    /// One node's partial search response: hits in request sort order
    /// (at most `limit`, deduplicated per node) plus this node's share of
    /// the execution stats — including the service time measured against
    /// the node's own clock and any ordered-scan early-termination
    /// counters. The client's engine k-way merges these.
    SearchHits {
        /// The node's top hits, sorted per the request.
        hits: Vec<Hit>,
        /// The node's execution stats.
        stats: SearchStats,
    },
    /// A split computed by an Index Node: the two halves.
    SplitHalves {
        /// Files for the left (kept) half.
        left: Vec<FileId>,
        /// Files for the right (moved) half.
        right: Vec<FileId>,
    },
    /// Pending split work from the Master: `(acg, owner)` pairs.
    SplitWork(Vec<(AcgId, NodeId)>),
    /// A freshly allocated ACG and its assigned node.
    AcgAllocated(AcgId, NodeId),
    /// Extracted migration payload.
    AcgPart {
        /// Extracted records.
        records: Vec<FileRecord>,
        /// Extracted causality edges.
        edges: Vec<EdgeUpdate>,
    },
    /// An Index Node's per-ACG status (returned by `Tick`; the coordinator
    /// forwards it to the Master as a heartbeat).
    Status(Vec<AcgSummary>),
    /// Failure.
    Err(Error),
}

impl Response {
    /// Unwraps `Ok`-like responses into `Result`.
    pub fn into_result(self) -> Result<Response, Error> {
        match self {
            Response::Err(e) => Err(e),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_result_propagates_errors() {
        let err = Response::Err(Error::Shutdown);
        assert!(err.into_result().is_err());
        assert!(Response::Ok.into_result().is_ok());
    }

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let req = Request::LocateAcgs;
        let _ = format!("{:?}", req.clone());
        let resp = Response::Located(vec![(AcgId::new(1), NodeId::new(2))]);
        let _ = format!("{:?}", resp.clone());
    }
}
