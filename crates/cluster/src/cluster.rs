//! Cluster assembly: spawning node actors and running maintenance.

use std::sync::Arc;

use propeller_acg::PartitionConfig;
use propeller_sim::{Clock, SimClock, WallClock};
use propeller_storage::{Network, SharedStorage};
use propeller_types::{Duration, Error, NodeId, Result};

use crate::client::FileQueryEngine;
use crate::index_node::{IndexNode, IndexNodeConfig};
use crate::master::{MasterConfig, MasterNode};
use crate::messages::{MigrationJob, Request, Response};
use crate::rpc::{run_actor, run_actor_deferred, Rpc};

/// Configuration for [`Cluster::start`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of Index Nodes (the paper evaluates 1–8).
    pub index_nodes: usize,
    /// Lazy-commit timeout on every Index Node (paper default 5 s).
    pub commit_timeout: Duration,
    /// ACG file count that triggers a background split.
    pub split_threshold: usize,
    /// Files per default-allocated ACG.
    pub group_capacity: usize,
    /// Seed for partitioning and network jitter.
    pub seed: u64,
    /// Virtual clock: `Some` runs the cluster in modeled mode (network
    /// costs charged to this clock); `None` uses the wall clock.
    pub sim_clock: Option<SimClock>,
    /// Charge GbE message costs (modeled mode only).
    pub charge_network: bool,
    /// Per-node cap on suspended streamed search sessions (see
    /// [`IndexNodeConfig::max_search_sessions`]).
    pub max_search_sessions: usize,
    /// Durable storage root: each Index Node gets a `node-<id>`
    /// subdirectory holding its groups' WALs and snapshots, the Master
    /// gets a `master` subdirectory holding its metadata WAL and
    /// checkpoints, and [`Cluster::revive_index_node`] /
    /// [`Cluster::restart`] restore killed actors' committed state from
    /// there. `None` (the default) keeps everything in memory — a revived
    /// node then starts empty, as before.
    pub data_dir: Option<std::path::PathBuf>,
    /// Per-group snapshot trigger: ops logged since the last snapshot (see
    /// [`IndexNodeConfig::snapshot_wal_ops`]).
    pub snapshot_wal_ops: u64,
    /// Replication factor R: every ACG lives on R distinct Index Nodes
    /// (clamped to the cluster size). The first replica is the primary —
    /// clients write through it and ship the committed WAL frame to the
    /// followers — and searches fail over across the set. `1` (the
    /// default) reproduces the unreplicated cluster exactly.
    pub replication: usize,
    /// Client-side latency budget for streamed search opens: past it the
    /// client **hedges** — fires a tied duplicate request at the next
    /// live replica and takes the first answer (paper-adjacent tail
    /// tolerance; needs `replication >= 2` to have anywhere to hedge).
    /// `None` (the default) never hedges.
    pub hedge_budget: Option<Duration>,
    /// Spread streamed session opens across each ACG's live replica set
    /// instead of always asking the primary, preferring the
    /// least-loaded replica (suspended-session counts ride the
    /// heartbeats; ties rotate round-robin). Replicas apply the same
    /// committed WAL frames, so any of them serves byte-identical hits;
    /// follower reads turn that redundancy into read throughput and
    /// drain opens away from a degraded replica.
    /// Needs `replication >= 2` to change anything. Off by default: the
    /// primary has the freshest un-replicated state, so single-replica
    /// deployments and strict-freshness tests keep the old behaviour.
    pub follower_reads: bool,
    /// Trace sampling rate for clients built by [`Cluster::client`]: one
    /// request in every `trace_sample_every` records a propagated trace
    /// (see [`FileQueryEngine::with_trace_sampling`]). `0` (the default)
    /// never samples.
    pub trace_sample_every: u64,
    /// Node-side slow-query threshold: a search whose measured service
    /// time reaches it is captured (plan, stats, spans) in the node's
    /// bounded slow-query ring, dumpable via [`Cluster::slow_queries`].
    /// `None` (the default) disables capture.
    pub slow_query_threshold: Option<Duration>,
    /// Master switch for node-side metrics recording on the hot paths
    /// (histograms; counters always run — they feed `NodeStats`). On by
    /// default; benchmarks flip it off to measure the overhead.
    pub obs_enabled: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            index_nodes: 4,
            commit_timeout: Duration::from_secs(5),
            split_threshold: 50_000,
            group_capacity: 1000,
            seed: 42,
            sim_clock: None,
            charge_network: false,
            max_search_sessions: 1024,
            data_dir: None,
            snapshot_wal_ops: 10_000,
            replication: 1,
            hedge_budget: None,
            follower_reads: false,
            trace_sample_every: 0,
            slow_query_threshold: None,
            obs_enabled: true,
        }
    }
}

/// A running Propeller cluster: one Master actor, N Index Node actors and
/// the shared storage beneath them.
///
/// See the crate-level example for a full index-then-search round trip.
pub struct Cluster {
    rpc: Rpc,
    master: NodeId,
    index_nodes: Vec<NodeId>,
    clock: Arc<dyn Clock>,
    shared: Arc<SharedStorage>,
    /// Kept so revived nodes get the same per-node settings as `start`
    /// gave the originals.
    config: ClusterConfig,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("master", &self.master)
            .field("index_nodes", &self.index_nodes)
            .finish()
    }
}

impl Cluster {
    /// Boots a cluster: spawns the Master and Index Node actor threads.
    ///
    /// # Panics
    ///
    /// Panics if `config.index_nodes` is zero.
    pub fn start(config: ClusterConfig) -> Cluster {
        assert!(config.index_nodes > 0, "a cluster needs at least one index node");
        let clock: Arc<dyn Clock> = match &config.sim_clock {
            Some(sim) => Arc::new(sim.clone()),
            None => Arc::new(WallClock::new()),
        };
        let rpc = match (&config.sim_clock, config.charge_network) {
            (Some(sim), true) => {
                Rpc::with_network(Network::gigabit_ethernet(), sim.clone(), config.seed)
            }
            _ => Rpc::new(),
        };
        let shared = Arc::new(SharedStorage::new());

        let master_id = NodeId::new(0);
        let index_ids: Vec<NodeId> = (1..=config.index_nodes as u32).map(NodeId::new).collect();

        let mut cluster = Cluster {
            rpc,
            master: master_id,
            index_nodes: index_ids,
            clock,
            shared,
            config,
            handles: Vec::new(),
        };
        cluster.spawn_master();
        for i in 0..cluster.index_nodes.len() {
            cluster.spawn_index_node(i);
        }
        cluster
    }

    /// Spawns (or respawns) the Master actor. On a durable cluster the
    /// Master recovers its full metadata state machine — placements, ACG
    /// allocation, index specs, routing generation, in-flight migrations —
    /// from the `master` subdirectory's checkpoint + WAL suffix before
    /// serving its first request.
    fn spawn_master(&mut self) {
        let rx = self.rpc.register(self.master);
        let master_cfg = MasterConfig {
            group_capacity: self.config.group_capacity,
            split_threshold: self.config.split_threshold,
            replication: self.config.replication,
            data_dir: self.config.data_dir.as_ref().map(|d| d.join("master")),
            ..MasterConfig::default()
        };
        let durable = master_cfg.data_dir.is_some();
        let mut master = if durable {
            MasterNode::open(self.index_nodes.clone(), master_cfg).expect("recover master metadata")
        } else {
            MasterNode::new(self.index_nodes.clone(), master_cfg)
        }
        .with_shared_storage(self.shared.clone())
        .with_clock(self.clock.clone());
        self.handles.push(
            std::thread::Builder::new()
                .name("propeller-master".into())
                .spawn(move || run_actor(rx, move |req| master.handle(req)))
                .expect("spawn master"),
        );
    }

    /// Spawns (or respawns) the `i`-th Index Node actor. `open` restores
    /// any durable state a previous run left under the node's data dir.
    fn spawn_index_node(&mut self, i: usize) {
        let id = self.index_nodes[i];
        let rx = self.rpc.register(id);
        let mut node = IndexNode::open(id, Self::index_node_config(&self.config, id, i))
            .expect("recover index node state")
            .with_clock(self.clock.clone());
        self.handles.push(
            std::thread::Builder::new()
                .name(format!("propeller-in-{}", id.raw()))
                .spawn(move || {
                    run_actor_deferred(rx, move |req, reply| node.handle_deferred(req, reply))
                })
                .expect("spawn index node"),
        );
    }

    /// The per-node config the `i`-th Index Node was started with (shared
    /// by `start` and `revive_index_node` so a revived node behaves like
    /// the original — and recovers from the same `node-<id>` directory).
    fn index_node_config(config: &ClusterConfig, id: NodeId, i: usize) -> IndexNodeConfig {
        IndexNodeConfig {
            commit_timeout: config.commit_timeout,
            partition: PartitionConfig {
                seed: config.seed.wrapping_add(i as u64),
                ..PartitionConfig::default()
            },
            max_search_sessions: config.max_search_sessions,
            data_dir: config.data_dir.as_ref().map(|d| d.join(format!("node-{}", id.raw()))),
            snapshot_wal_ops: config.snapshot_wal_ops,
            slow_query_threshold: config.slow_query_threshold,
            obs_enabled: config.obs_enabled,
            ..IndexNodeConfig::default()
        }
    }

    /// A new client handle. Inherits the cluster's hedge budget, if any
    /// ([`ClusterConfig::hedge_budget`]).
    pub fn client(&self) -> FileQueryEngine {
        let engine = FileQueryEngine::new(
            self.rpc.clone(),
            self.master,
            self.index_nodes.clone(),
            self.clock.clone(),
        );
        let engine = match self.config.hedge_budget {
            Some(budget) => engine.with_hedge_budget(budget),
            None => engine,
        };
        engine
            .with_follower_reads(self.config.follower_reads)
            .with_trace_sampling(self.config.trace_sample_every)
    }

    /// Snapshots every reachable lane's metrics registry (the Master and
    /// every Index Node; dead nodes are skipped) and merges them into one
    /// cluster-wide view: counters and gauges sum, histograms merge
    /// bucket-wise — so a p99 read off the merged snapshot is the p99 of
    /// the **combined** latency population, not an average of per-node
    /// quantiles.
    pub fn metrics_snapshot(&self) -> propeller_obs::MetricsSnapshot {
        let mut merged = propeller_obs::MetricsSnapshot::default();
        for node in std::iter::once(self.master).chain(self.index_nodes.iter().copied()) {
            if let Ok(Response::Metrics(snap)) = self.rpc.call(node, Request::Metrics) {
                merged.merge(&snap);
            }
        }
        merged
    }

    /// Human-readable cluster-wide metrics exposition: the merged
    /// [`Cluster::metrics_snapshot`], rendered (counters, gauges, then
    /// histograms with count / mean / p50 / p95 / p99 / p999 / max).
    pub fn metrics_report(&self) -> String {
        self.metrics_snapshot().render()
    }

    /// Dumps every node's slow-query ring (oldest first per node; dead
    /// nodes are skipped). Captures only happen when
    /// [`ClusterConfig::slow_query_threshold`] is set.
    pub fn slow_queries(&self) -> Vec<propeller_obs::SlowQuery> {
        let mut out = Vec::new();
        for node in std::iter::once(self.master).chain(self.index_nodes.iter().copied()) {
            if let Ok(Response::SlowQueries(mut rows)) =
                self.rpc.call(node, Request::DumpSlowQueries)
            {
                out.append(&mut rows);
            }
        }
        out
    }

    /// The fabric handle (tests and benches).
    pub fn rpc(&self) -> &Rpc {
        &self.rpc
    }

    /// The Master's node id.
    pub fn master_id(&self) -> NodeId {
        self.master
    }

    /// The Index Nodes' ids.
    pub fn index_node_ids(&self) -> &[NodeId] {
        &self.index_nodes
    }

    /// The shared storage beneath the cluster.
    pub fn shared_storage(&self) -> &Arc<SharedStorage> {
        &self.shared
    }

    /// Restarts a previously killed Index Node under the same id. On a
    /// durable cluster ([`ClusterConfig::data_dir`]) the revived node
    /// **restores every hosted group from disk** — newest valid snapshot
    /// plus WAL suffix — so it serves its pre-crash committed hits
    /// immediately; resumed search sessions recover through the client's
    /// transparent reopen (the session table itself dies with the node,
    /// but the reopened session finds the data again instead of an empty
    /// node silently shortening `AllowPartial` streams). Without a data
    /// dir the node comes back empty, as before, and the client must
    /// re-index. The Master's ACG placements still reference the id, so
    /// routed batches and searches reach the revived node immediately.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not one of this cluster's Index Node ids, or if
    /// the node's durable state cannot be recovered.
    pub fn revive_index_node(&mut self, id: NodeId) {
        let i = self
            .index_nodes
            .iter()
            .position(|&n| n == id)
            .unwrap_or_else(|| panic!("{id} is not an index node of this cluster"));
        self.spawn_index_node(i);
        // The Master is the durable home of the index-spec catalogue:
        // replay it onto the revived node so indices created while the
        // node was dead exist there too. Best-effort — a dead Master just
        // means the next revival or restart closes the gap.
        let _ = self.rebroadcast_index_specs_to(&[id]);
    }

    /// Stops every actor thread, waits for them, and boots the whole
    /// cluster again from its durable state on the **same** RPC fabric,
    /// clock and shared storage — existing clients keep working across the
    /// restart. The Master replays its metadata WAL (on top of its newest
    /// valid checkpoint), each Index Node restores its groups from disk,
    /// and the Master's index-spec catalogue is re-broadcast to every
    /// node. In-flight two-phase migrations stay parked until the next
    /// [`Cluster::run_maintenance`] (or [`Cluster::resume_migrations`])
    /// call resumes them from their logged phase; searches are already
    /// correct before that because an uncommitted migration's new ACG is
    /// never routable.
    ///
    /// On a non-durable cluster (`data_dir: None`) this degrades to a
    /// whole-cluster power loss: everything comes back empty.
    pub fn restart(mut self) -> Cluster {
        for &node in std::iter::once(&self.master).chain(&self.index_nodes) {
            self.rpc.deregister(node);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let mut cluster = Cluster {
            rpc: self.rpc.clone(),
            master: self.master,
            index_nodes: self.index_nodes.clone(),
            clock: self.clock.clone(),
            shared: self.shared.clone(),
            config: self.config.clone(),
            handles: Vec::new(),
        };
        cluster.spawn_master();
        for i in 0..cluster.index_nodes.len() {
            cluster.spawn_index_node(i);
        }
        let _ = cluster.rebroadcast_index_specs_to(&cluster.index_nodes.clone());
        cluster
    }

    /// Replays the Master's durable index-spec catalogue onto `nodes`.
    /// `CreateIndex` is idempotent on Index Nodes, so re-sending a spec a
    /// node already built is a no-op.
    fn rebroadcast_index_specs_to(&self, nodes: &[NodeId]) -> Result<()> {
        let specs = match self.rpc.call(self.master, Request::ListIndexSpecs)? {
            Response::IndexSpecs(specs) => specs,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        for spec in specs {
            for &node in nodes {
                match self.rpc.call(node, Request::CreateIndex { spec: spec.clone() })? {
                    Response::Ok => {}
                    Response::Err(e) => return Err(e),
                    other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
                }
            }
        }
        Ok(())
    }

    /// One maintenance round, played by the external coordinator (the
    /// paper's "background" tasks):
    ///
    /// 1. `Tick` every Index Node — commits timed-out caches and collects
    ///    ACG summaries plus the node's current search load,
    /// 2. forward each summary to the Master as that node's heartbeat,
    /// 3. resume any two-phase migration an earlier coordinator (or
    ///    crash) left in flight,
    /// 4. drain the Master's split queue and run each split as a fresh
    ///    two-phase migration: bisect on the owner, `BeginMigration` at
    ///    the Master (durably logged intent), then drive the phases.
    ///
    /// Returns the number of migrations completed (resumed + fresh).
    ///
    /// # Errors
    ///
    /// Fails if any node is unreachable mid-round. Safe to re-run: every
    /// migration phase is idempotent and the Master re-hands unfinished
    /// work via `TakeMigrationWork`.
    pub fn run_maintenance(&self) -> Result<usize> {
        let now = self.clock.now();
        // 1 + 2: tick, gather, heartbeat.
        for &node in &self.index_nodes {
            let status = self.rpc.call(node, Request::Tick { now })?;
            if let Response::Status { acgs, load } = status {
                self.rpc.call(self.master, Request::Heartbeat { node, acgs, load, now })?;
            }
        }
        // 3: finish what a predecessor started before opening new work.
        let mut done = self.resume_migrations()?;
        // 4: fresh splits, each as a two-phase migration.
        let work = match self.rpc.call(self.master, Request::TakeSplitWork)? {
            Response::SplitWork(work) => work,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        for (acg, owner) in work {
            let (left, right) = match self.rpc.call(owner, Request::SplitAcg { acg })? {
                Response::SplitHalves { left, right } => (left, right),
                Response::Err(e) => return Err(e),
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            };
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let (new_acg, targets) = match self
                .rpc
                .call(self.master, Request::BeginMigration { acg, moved: right.clone() })?
            {
                Response::MigrationBegun { new_acg, targets } => (new_acg, targets),
                Response::Err(e) => return Err(e),
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            };
            let job = MigrationJob {
                source: acg,
                source_node: owner,
                new_acg,
                moved: right,
                targets,
                installed: false,
            };
            self.execute_migration(&job, now)?;
            done += 1;
        }
        Ok(done)
    }

    /// Resumes every two-phase migration the Master still holds open —
    /// the recovery path after a coordinator or whole-cluster crash. Each
    /// job restarts from its durably logged phase: an un-acked install
    /// re-runs extract + install (both idempotent — the source *retains*
    /// extracted records until told to remove, and installs are upserts),
    /// an acked one skips straight to the remove + commit tail.
    ///
    /// Returns the number of migrations driven to commit.
    ///
    /// # Errors
    ///
    /// Fails if a participant is unreachable; re-run once it is back.
    pub fn resume_migrations(&self) -> Result<usize> {
        let now = self.clock.now();
        let jobs = match self.rpc.call(self.master, Request::TakeMigrationWork)? {
            Response::MigrationWork(jobs) => jobs,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut done = 0;
        for job in jobs {
            self.execute_migration(&job, now)?;
            done += 1;
        }
        Ok(done)
    }

    /// Drives one two-phase migration from whatever phase the Master has
    /// durably recorded through to commit:
    ///
    /// 1. **Extract** the moved half on the source primary — it fences
    ///    the files behind tombstones but **retains** the records,
    /// 2. **Install** the part on every target replica (idempotent
    ///    upserts; identical frames in identical order keep the targets
    ///    bit-identical),
    /// 3. **InstallAcked** at the Master — the durable point of no
    ///    return; from here recovery never re-extracts,
    /// 4. **Remove** the moved half from the source, with a strict WAL
    ///    sync — only now does the source give the records up,
    /// 5. re-sync the source's followers so the remove frame reaches them
    ///    (best-effort: a dead follower re-syncs on revival),
    /// 6. **CommitMigration** at the Master — remaps the files, registers
    ///    the new ACG's replicas and bumps the routing generation in one
    ///    logged step.
    ///
    /// A crash between any two steps leaves exactly one routable home for
    /// every moved file: before step 6 the new ACG is not in the routing
    /// table, and the source keeps (fenced) custody until step 4.
    fn execute_migration(&self, job: &MigrationJob, now: propeller_types::Timestamp) -> Result<()> {
        if !job.installed {
            let extract = Request::ExtractAcgPart { acg: job.source, files: job.moved.clone() };
            let (records, edges) = match self.rpc.call(job.source_node, extract)? {
                Response::AcgPart { records, edges } => (records, edges),
                Response::Err(e) => return Err(e),
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            };
            for &target in &job.targets {
                let install = Request::InstallAcg {
                    acg: job.new_acg,
                    records: records.clone(),
                    edges: edges.clone(),
                };
                self.rpc.call(target, install)?;
            }
            self.rpc.call(self.master, Request::InstallAcked { new_acg: job.new_acg })?;
        }
        match self.rpc.call(
            job.source_node,
            Request::RemoveAcgPart { acg: job.source, files: job.moved.clone() },
        )? {
            Response::Ok => {}
            Response::Err(e) => return Err(e),
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        }
        if let Ok(Response::Located(rows)) = self.rpc.call(self.master, Request::LocateAcgs) {
            if let Some((_, set)) = rows.into_iter().find(|(a, _)| *a == job.source) {
                for &follower in set.iter().filter(|&&n| n != job.source_node) {
                    let _ = self.sync_follower(job.source_node, follower, job.source, now);
                }
            }
        }
        self.rpc.call(self.master, Request::CommitMigration { new_acg: job.new_acg })?;
        Ok(())
    }

    /// Brings `follower`'s copy of `acg` up to date with `source`'s:
    /// asks the follower where its log ends, then replays the source's
    /// WAL tail (or a snapshot seed) through the coordinator.
    ///
    /// # Errors
    ///
    /// Fails if either node is unreachable or answers out of protocol.
    fn sync_follower(
        &self,
        source: NodeId,
        follower: NodeId,
        acg: propeller_types::AcgId,
        now: propeller_types::Timestamp,
    ) -> Result<u64> {
        let have = match self.rpc.call(follower, Request::AcgLsns)? {
            Response::AcgLsnReport(rows) => {
                rows.into_iter().find(|(a, _)| *a == acg).map(|(_, lsn)| lsn).unwrap_or(0)
            }
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        crate::client::sync_replica(&self.rpc, source, follower, acg, have, now)
    }

    /// Catches a node up with its replica peers: for every ACG the node
    /// hosts, finds the peer holding the highest LSN and replays the tail
    /// (or seeds a snapshot) into the node. Run after
    /// [`Cluster::revive_index_node`] — a revived node rejoins with
    /// whatever its durable state held (nothing, in memory mode) and this
    /// closes the gap to the writes it missed while dead. Best-effort per
    /// ACG: an unreachable peer just means that ACG stays stale until the
    /// next catch-up.
    ///
    /// Returns the number of ACGs synced.
    ///
    /// # Errors
    ///
    /// Fails if the Master is unreachable.
    pub fn catch_up_node(&self, id: NodeId) -> Result<usize> {
        let now = self.clock.now();
        let rows = match self.rpc.call(self.master, Request::LocateAcgs)? {
            Response::Located(rows) => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut synced = 0;
        for (acg, replicas) in rows {
            if !replicas.contains(&id) {
                continue;
            }
            // Sync from the peer with the longest log — with one client
            // writing through the primary all live peers agree, but after
            // cascaded failures the longest log is the freshest.
            let mut best: Option<(NodeId, u64)> = None;
            for &peer in replicas.iter().filter(|&&n| n != id) {
                if let Ok(Response::AcgLsnReport(rows)) = self.rpc.call(peer, Request::AcgLsns) {
                    let lsn =
                        rows.into_iter().find(|(a, _)| *a == acg).map(|(_, l)| l).unwrap_or(0);
                    if best.map(|(_, b)| lsn > b).unwrap_or(true) {
                        best = Some((peer, lsn));
                    }
                }
            }
            if let Some((peer, _)) = best {
                if self.sync_follower(peer, id, acg, now).is_ok() {
                    synced += 1;
                }
            }
        }
        Ok(synced)
    }

    /// Stops every node thread and waits for them.
    pub fn shutdown(mut self) {
        for &node in std::iter::once(&self.master).chain(&self.index_nodes) {
            let _ = self.rpc.call(node, Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_index::{FileRecord, IndexSpec};
    use propeller_types::{AttrName, FileId, InodeAttrs};

    fn record(file: u64, size_mib: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size_mib << 20).build())
    }

    #[test]
    fn end_to_end_index_and_search() {
        let cluster = Cluster::start(ClusterConfig { index_nodes: 4, ..Default::default() });
        let mut client = cluster.client();
        client.index_files((0..100).map(|i| record(i, i)).collect()).unwrap();
        let hits = client.search_text("size>16m").unwrap();
        assert_eq!(hits.len(), 83, "sizes 17..99 MiB");
        cluster.shutdown();
    }

    #[test]
    fn files_spread_across_nodes() {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 4,
            group_capacity: 10,
            ..Default::default()
        });
        let mut client = cluster.client();
        client.index_files((0..100).map(|i| record(i, 1)).collect()).unwrap();
        // 100 files / 10 per ACG = 10 ACGs over 4 nodes.
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(located.len(), 10);
        let nodes: std::collections::HashSet<NodeId> =
            located.iter().map(|(_, replicas)| replicas[0]).collect();
        assert!(nodes.len() >= 3, "load should spread: {nodes:?}");
        cluster.shutdown();
    }

    #[test]
    fn replicated_cluster_indexes_and_searches() {
        let cluster =
            Cluster::start(ClusterConfig { index_nodes: 4, replication: 2, ..Default::default() });
        let mut client = cluster.client();
        client.index_files((0..100).map(|i| record(i, i)).collect()).unwrap();
        assert_eq!(client.search_text("size>16m").unwrap().len(), 83);
        // Every ACG reports two distinct replicas.
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        for (acg, replicas) in located {
            assert_eq!(replicas.len(), 2, "{acg:?} should have 2 replicas: {replicas:?}");
            assert_ne!(replicas[0], replicas[1]);
        }
        cluster.shutdown();
    }

    #[test]
    fn replicated_split_keeps_both_replicas_aligned() {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 3,
            replication: 2,
            group_capacity: 1000,
            split_threshold: 50,
            ..Default::default()
        });
        let mut client = cluster.client();
        client.index_files((0..120).map(|i| record(i, 1)).collect()).unwrap();
        let splits = cluster.run_maintenance().unwrap();
        assert!(splits >= 1, "expected at least one split, got {splits}");
        // All files still searchable, through primaries or followers.
        assert_eq!(client.search_text("size>0").unwrap().len(), 120);
        // Every replica of every ACG — the split source that shed files
        // and the new ACG installed on fresh targets — must serve the
        // exact same hit list: the split may not desync the sets.
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        let now = cluster.clock.now();
        let request = propeller_query::SearchRequest::parse("size>0", now).unwrap();
        for (acg, replicas) in located {
            assert_eq!(replicas.len(), 2, "{acg:?}: {replicas:?}");
            let answers: Vec<Vec<propeller_types::FileId>> = replicas
                .iter()
                .map(|&node| {
                    let req = Request::Search {
                        acgs: vec![acg],
                        request: request.clone(),
                        now,
                        ctx: propeller_obs::TraceContext::NONE,
                    };
                    match cluster.rpc().call(node, req) {
                        Ok(Response::SearchHits { hits, .. }) => {
                            hits.into_iter().map(|h| h.file).collect()
                        }
                        other => panic!("{other:?}"),
                    }
                })
                .collect();
            assert_eq!(answers[0], answers[1], "{acg:?} replicas diverged after the split");
            assert!(!answers[0].is_empty() || answers[1].is_empty());
        }
        cluster.shutdown();
    }

    #[test]
    fn follower_reads_spread_session_opens_across_replicas() {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 2,
            replication: 2,
            follower_reads: true,
            ..Default::default()
        });
        let mut client = cluster.client();
        client.index_files((0..50).map(|i| record(i, 10)).collect()).unwrap();
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(located.len(), 1, "one ACG expected: {located:?}");
        let replicas = located[0].1.clone();
        assert_eq!(replicas.len(), 2);
        let now = cluster.clock.now();
        let request = propeller_query::SearchRequest::parse("size>1m", now).unwrap();
        for _ in 0..6 {
            assert_eq!(client.search_streamed(&request).unwrap().hits.len(), 50);
        }
        // Round-robin opens must land searches on BOTH replicas, not just
        // the primary; replicas hold identical committed state so every
        // answer above was still the full hit list.
        let served: Vec<u64> = replicas
            .iter()
            .map(|&node| match cluster.rpc().call(node, Request::NodeStats) {
                Ok(Response::NodeStatsReport { searches_served, .. }) => searches_served,
                other => panic!("{other:?}"),
            })
            .collect();
        assert!(
            served.iter().all(|&n| n >= 2),
            "6 round-robin opens over 2 replicas should give each at least 2: {served:?}"
        );
        assert_eq!(served.iter().sum::<u64>(), 6, "{served:?}");
        cluster.shutdown();
    }

    #[test]
    fn follower_reads_drain_opens_from_a_degraded_replica() {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 2,
            replication: 2,
            follower_reads: true,
            ..Default::default()
        });
        let mut client = cluster.client();
        client.index_files((0..50).map(|i| record(i, 10)).collect()).unwrap();
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(located.len(), 1, "one ACG expected: {located:?}");
        let (acg, replicas) = (located[0].0, located[0].1.clone());
        let (primary, follower) = (replicas[0], replicas[1]);
        // Degrade the primary: every delivery to it crawls, and suspended
        // search sessions pile up on it (small page, never pulled) — the
        // symptom of a node falling behind.
        cluster
            .rpc()
            .slowdowns()
            .set(primary, propeller_sim::Latency::constant(Duration::from_millis(2)));
        let now = cluster.clock.now();
        let request = propeller_query::SearchRequest::parse("size>1m", now).unwrap();
        for s in 0..4u64 {
            match cluster.rpc().call(
                primary,
                Request::OpenSearch {
                    acgs: vec![acg],
                    request: request.clone(),
                    client: 1000 + s,
                    page: 5,
                    now,
                    ctx: propeller_obs::TraceContext::NONE,
                },
            ) {
                Ok(Response::SearchPage { session, .. }) => {
                    assert_ne!(session, 0, "a 5-hit page of 50 hits must suspend")
                }
                other => panic!("{other:?}"),
            }
        }
        // Heartbeats carry the asymmetric load to the Master...
        cluster.run_maintenance().unwrap();
        let count = |node| match cluster.rpc().call(node, Request::NodeStats) {
            Ok(Response::NodeStatsReport { searches_served, .. }) => searches_served,
            other => panic!("{other:?}"),
        };
        let before = count(follower);
        // ...so every subsequent open drains to the healthy follower —
        // with byte-identical answers, since replicas hold the same
        // committed state.
        for _ in 0..6 {
            assert_eq!(client.search_streamed(&request).unwrap().hits.len(), 50);
        }
        assert_eq!(count(follower) - before, 6, "all opens should land on the unloaded follower");
        cluster.shutdown();
    }

    #[test]
    fn without_follower_reads_the_primary_serves_every_open() {
        let cluster =
            Cluster::start(ClusterConfig { index_nodes: 2, replication: 2, ..Default::default() });
        let mut client = cluster.client();
        client.index_files((0..50).map(|i| record(i, 10)).collect()).unwrap();
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        let (primary, follower) = (located[0].1[0], located[0].1[1]);
        let now = cluster.clock.now();
        let request = propeller_query::SearchRequest::parse("size>1m", now).unwrap();
        for _ in 0..4 {
            assert_eq!(client.search_streamed(&request).unwrap().hits.len(), 50);
        }
        let count = |node| match cluster.rpc().call(node, Request::NodeStats) {
            Ok(Response::NodeStatsReport { searches_served, .. }) => searches_served,
            other => panic!("{other:?}"),
        };
        assert_eq!(count(primary), 4);
        assert_eq!(count(follower), 0, "follower must stay cold when follower_reads is off");
        cluster.shutdown();
    }

    #[test]
    fn catch_up_closes_the_gap_after_a_revival() {
        let mut cluster =
            Cluster::start(ClusterConfig { index_nodes: 2, replication: 2, ..Default::default() });
        let mut client = cluster.client();
        // group_capacity 1000 keeps all 100 files in one ACG, so there is
        // exactly one primary and one follower.
        client.index_files((0..50).map(|i| record(i, 10)).collect()).unwrap();
        let located = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
            Ok(Response::Located(rows)) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(located.len(), 1, "one ACG expected: {located:?}");
        let (primary, follower) = (located[0].1[0], located[0].1[1]);
        // Kill the follower and keep writing through the live primary:
        // the follower misses those frames.
        cluster.rpc().deregister(follower);
        client.index_files((50..100).map(|i| record(i, 10)).collect()).unwrap();
        cluster.revive_index_node(follower);
        let synced = cluster.catch_up_node(follower).unwrap();
        assert_eq!(synced, 1, "the revived follower should sync its one ACG");
        // Kill the primary: the caught-up follower must hold everything.
        cluster.rpc().deregister(primary);
        assert_eq!(client.search_text("size>1m").unwrap().len(), 100);
        cluster.shutdown();
    }

    #[test]
    fn removal_is_visible_to_search() {
        let cluster = Cluster::start(ClusterConfig::default());
        let mut client = cluster.client();
        client.index_files((0..10).map(|i| record(i, 100)).collect()).unwrap();
        assert_eq!(client.search_text("size>1m").unwrap().len(), 10);
        client.remove_files(vec![FileId::new(3), FileId::new(4)]).unwrap();
        let hits = client.search_text("size>1m").unwrap();
        assert_eq!(hits.len(), 8);
        assert!(!hits.contains(&FileId::new(3)));
        cluster.shutdown();
    }

    #[test]
    fn maintenance_splits_oversized_acgs() {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 2,
            group_capacity: 1000,
            split_threshold: 50,
            ..Default::default()
        });
        let mut client = cluster.client();
        client.index_files((0..120).map(|i| record(i, 1)).collect()).unwrap();
        // First round: heartbeats reveal the oversized ACG; splits run.
        let splits = cluster.run_maintenance().unwrap();
        assert!(splits >= 1, "expected at least one split, got {splits}");
        // All files still searchable afterwards.
        let hits = client.search_text("size>0").unwrap();
        assert_eq!(hits.len(), 120);
        cluster.shutdown();
    }

    #[test]
    fn custom_index_cluster_wide() {
        let cluster = Cluster::start(ClusterConfig::default());
        let mut client = cluster.client();
        client.create_index(IndexSpec::btree("uid_idx", AttrName::Uid)).unwrap();
        // Duplicate rejected by the master.
        assert!(client.create_index(IndexSpec::btree("uid_idx", AttrName::Uid)).is_err());
        client.index_files((0..10).map(|i| record(i, 10)).collect()).unwrap();
        assert_eq!(client.search_text("uid=0").unwrap().len(), 10);
        cluster.shutdown();
    }

    #[test]
    fn acg_flush_reaches_index_nodes() {
        let cluster = Cluster::start(ClusterConfig::default());
        let mut client = cluster.client();
        client.index_files((0..4).map(|i| record(i, 1)).collect()).unwrap();
        let pid = propeller_types::ProcessId::new(1);
        client.observe_open(pid, FileId::new(0), propeller_types::OpenMode::Read);
        client.observe_open(pid, FileId::new(1), propeller_types::OpenMode::Write);
        client.end_process(pid);
        assert_eq!(client.buffered_edges(), 1);
        let flushed = client.flush_acg().unwrap();
        assert_eq!(flushed, 1);
        assert_eq!(client.buffered_edges(), 0);
        cluster.shutdown();
    }

    #[test]
    fn parallel_clients() {
        let cluster = Cluster::start(ClusterConfig { index_nodes: 4, ..Default::default() });
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut client = cluster.client();
                s.spawn(move || {
                    let base = t * 1000;
                    client
                        .index_files((base..base + 100).map(|i| record(i, 20)).collect())
                        .unwrap();
                });
            }
        });
        let client = cluster.client();
        assert_eq!(client.search_text("size>16m").unwrap().len(), 400);
        cluster.shutdown();
    }

    #[test]
    fn modeled_mode_charges_network_time() {
        let sim = SimClock::new();
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: 2,
            sim_clock: Some(sim.clone()),
            charge_network: true,
            ..Default::default()
        });
        let mut client = cluster.client();
        let before = sim.now();
        client.index_files((0..10).map(|i| record(i, 1)).collect()).unwrap();
        assert!(sim.now() > before, "network costs must accrue on the sim clock");
        cluster.shutdown();
    }
}
