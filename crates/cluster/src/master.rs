//! The Master Node (paper §IV).
//!
//! "The central index metadata and coordination server": it owns the
//! `file → ACG` mapping and ACG placement, routes client requests, tracks
//! Index Node liveness through heartbeats, decides when an ACG must be
//! split, and coordinates two-phase migrations. It never touches file
//! data or indices itself, which is why a single Master scales to
//! hundreds of Index Nodes.
//!
//! ## Durability: the Master as a logged state machine
//!
//! The Master's **hard state** — file placement, ACG creation, split
//! commits, replica adoption, the index-spec registry, in-flight
//! migrations, the next-ACG counter and the routing generation — is a
//! state machine over [`crate::meta::MetaOp`] transitions. Every
//! transition is appended to a control-plane WAL and fsynced *before* the
//! request is acked ([`MasterNode::open`] + `log_ops`); periodic
//! checksummed checkpoints bound recovery to O(delta) suffix replay.
//! **Soft state** — node liveness, heartbeat-refreshed file counts, split
//! *pressure* — is never logged: one heartbeat round rebuilds it.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use propeller_index::IndexSpec;
use propeller_obs::{names, Lane, NodeObs, SpanKind};
use propeller_sim::{Clock, WallClock};
use propeller_storage::SharedStorage;
use propeller_types::{AcgId, Duration, Error, FileId, NodeId, Timestamp};

use crate::messages::{AcgSummary, MigrationJob, Request, Response, RouteHints};
use crate::meta::{sorted_pairs, MetaImage, MetaOp, MetaStore, Migration};

/// Liveness/load record for one Index Node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// Last heartbeat receipt time.
    pub last_heartbeat: Timestamp,
    /// Total files across the node's ACGs.
    pub files: usize,
    /// Number of hosted ACGs.
    pub acgs: usize,
    /// The node's last self-reported instantaneous load (suspended
    /// streamed sessions) — what load-feedback follower reads rank by.
    pub load: u64,
}

impl NodeStatus {
    /// Whether the node has heartbeated within `timeout` of `now`.
    pub fn alive(&self, now: Timestamp, timeout: Duration) -> bool {
        now.since(self.last_heartbeat) <= timeout
    }
}

/// Master Node configuration.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Files per default-allocated ACG (new files without causality
    /// context fill the open ACG up to this size).
    pub group_capacity: usize,
    /// File count above which an ACG is scheduled for a split (paper
    /// example: 50 000).
    pub split_threshold: usize,
    /// Flush metadata to shared storage every this many heartbeats.
    pub flush_every_heartbeats: u64,
    /// How many committed splits the Master keeps in its route-hint log.
    /// A client further behind than this receives `complete: false` hints
    /// and drops its whole route cache (safe, just less surgical).
    pub split_log_capacity: usize,
    /// Replicas per ACG (R). Every ACG is placed on R distinct nodes
    /// (clamped to the cluster size): the first is the primary that
    /// accepts writes, the rest are followers fed the primary's WAL
    /// frames. R = 1 (the default) reproduces the unreplicated cluster
    /// exactly.
    pub replication: usize,
    /// Where the Master persists its control-plane WAL and metadata
    /// checkpoints ([`MasterNode::open`]); `None` runs memory-only
    /// (`MasterNode::new`), losing hard state on restart.
    pub data_dir: Option<std::path::PathBuf>,
    /// Cut a metadata checkpoint after this many logged transitions.
    pub meta_snapshot_every: usize,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            group_capacity: 1000,
            split_threshold: 50_000,
            flush_every_heartbeats: 16,
            split_log_capacity: 64,
            replication: 1,
            data_dir: None,
            meta_snapshot_every: 64,
        }
    }
}

/// The Master Node state machine. Driven as an actor by the cluster
/// runtime; unit tests can drive [`MasterNode::handle`] directly.
pub struct MasterNode {
    config: MasterConfig,
    index_nodes: Vec<NodeId>,
    file_to_acg: HashMap<FileId, AcgId>,
    /// Each ACG's replica set, primary first. Splits and migrations
    /// replace the whole set; individual nodes are never swapped out of
    /// it silently, so clients can cache `(acg, replicas)` rows.
    acg_replicas: HashMap<AcgId, Vec<NodeId>>,
    acg_files: HashMap<AcgId, usize>,
    node_status: HashMap<NodeId, NodeStatus>,
    next_acg: u64,
    open_acg: Option<AcgId>,
    pending_splits: Vec<(AcgId, NodeId)>,
    splitting: std::collections::HashSet<AcgId>,
    index_specs: Vec<IndexSpec>,
    shared: Option<Arc<SharedStorage>>,
    heartbeats_seen: u64,
    /// Monotonic count of committed splits — the routing generation
    /// clients synchronize their caches against.
    routing_gen: u64,
    /// The last `split_log_capacity` splits: `(generation, moved files)`,
    /// oldest first. Served as [`RouteHints`] on every resolve.
    split_log: std::collections::VecDeque<(u64, Vec<FileId>)>,
    /// In-flight two-phase migrations, keyed by the reserved new-ACG id.
    /// A migration's new group is **not routable** (absent from
    /// `acg_replicas`, shielded from heartbeat adoption) until commit.
    migrations: HashMap<AcgId, Migration>,
    /// The control-plane WAL + checkpoint store (in-memory for
    /// [`MasterNode::new`] Masters).
    meta: MetaStore,
    /// Time source for resolve spans (the cluster injects its own).
    clock: Arc<dyn Clock>,
    /// The Master lane's metrics registry + span buffer.
    obs: Arc<NodeObs>,
}

impl std::fmt::Debug for MasterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterNode")
            .field("index_nodes", &self.index_nodes)
            .field("acgs", &self.acg_replicas.len())
            .field("files", &self.file_to_acg.len())
            .field("routing_gen", &self.routing_gen)
            .finish()
    }
}

impl MasterNode {
    /// Creates a memory-only Master managing the given Index Nodes: hard
    /// state is kept but not persisted. Use [`MasterNode::open`] for a
    /// durable Master.
    pub fn new(index_nodes: Vec<NodeId>, config: MasterConfig) -> Self {
        MasterNode {
            config,
            index_nodes,
            file_to_acg: HashMap::new(),
            acg_replicas: HashMap::new(),
            acg_files: HashMap::new(),
            node_status: HashMap::new(),
            next_acg: 1,
            open_acg: None,
            pending_splits: Vec::new(),
            splitting: std::collections::HashSet::new(),
            index_specs: Vec::new(),
            shared: None,
            heartbeats_seen: 0,
            routing_gen: 0,
            split_log: std::collections::VecDeque::new(),
            migrations: HashMap::new(),
            meta: MetaStore::in_memory(),
            clock: Arc::new(WallClock::new()),
            obs: Arc::new(NodeObs::new(Lane::Master)),
        }
    }

    /// Replaces the Master's time source (builder style). Resolve spans
    /// are stamped against this clock.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Opens a **durable** Master under `config.data_dir`: recovers the
    /// newest valid metadata checkpoint, replays the control-plane WAL
    /// suffix, and from then on logs every hard-state transition before
    /// acking it. A fresh directory starts an empty Master.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `data_dir` is unset, [`Error::Io`]
    /// when the directory or WAL cannot be opened and [`Error::Corrupt`]
    /// when a WAL suffix frame fails to decode.
    pub fn open(index_nodes: Vec<NodeId>, config: MasterConfig) -> Result<Self, Error> {
        let dir = config
            .data_dir
            .clone()
            .ok_or_else(|| Error::Config("MasterNode::open requires data_dir".into()))?;
        let snapshot_every = config.meta_snapshot_every.max(1);
        let (meta, recovery) = MetaStore::open(&dir, snapshot_every)?;
        let mut master = MasterNode::new(index_nodes, config);
        master.meta = meta;
        if let Some(image) = recovery.image {
            master.load_image(image);
        }
        for op in &recovery.suffix {
            master.apply_op(op);
        }
        Ok(master)
    }

    /// Attaches shared storage for periodic metadata flushes.
    pub fn with_shared_storage(mut self, shared: Arc<SharedStorage>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Installs a recovered checkpoint image as the current hard state.
    fn load_image(&mut self, image: MetaImage) {
        self.next_acg = image.next_acg.max(1);
        self.routing_gen = image.routing_gen;
        self.open_acg = image.open_acg;
        self.file_to_acg = image.file_to_acg.into_iter().collect();
        self.acg_replicas = image.acg_replicas.into_iter().collect();
        // File counts are heartbeat-refreshed soft state; seed them from
        // the authoritative placement map so capacity/split decisions are
        // sane before the first heartbeat round.
        let mut counts: HashMap<AcgId, usize> = HashMap::new();
        for acg in self.file_to_acg.values() {
            *counts.entry(*acg).or_insert(0) += 1;
        }
        for acg in self.acg_replicas.keys() {
            counts.entry(*acg).or_insert(0);
        }
        self.acg_files = counts;
        self.index_specs = image.specs;
        self.split_log = image.split_log.into_iter().collect();
        for migration in image.migrations {
            self.splitting.insert(migration.source);
            self.migrations.insert(migration.new_acg, migration);
        }
    }

    /// The full hard-state image (checkpoint payload), deterministic for
    /// a given state.
    fn image(&self) -> MetaImage {
        let mut migrations: Vec<Migration> = self.migrations.values().cloned().collect();
        migrations.sort_by_key(|m| m.new_acg);
        MetaImage {
            next_acg: self.next_acg,
            routing_gen: self.routing_gen,
            open_acg: self.open_acg,
            file_to_acg: sorted_pairs(&self.file_to_acg),
            acg_replicas: sorted_pairs(&self.acg_replicas),
            specs: self.index_specs.clone(),
            split_log: self.split_log.iter().cloned().collect(),
            migrations,
        }
    }

    /// Applies one logged transition to the in-memory state. Recovery
    /// replay and the live mutating arms share this, so a replayed Master
    /// is the live Master by construction.
    fn apply_op(&mut self, op: &MetaOp) {
        match op {
            MetaOp::PlaceFiles { placements } => {
                for (file, acg) in placements {
                    let old = self.file_to_acg.insert(*file, *acg);
                    if old != Some(*acg) {
                        *self.acg_files.entry(*acg).or_insert(0) += 1;
                        if let Some(old_acg) = old {
                            if let Some(c) = self.acg_files.get_mut(&old_acg) {
                                *c = c.saturating_sub(1);
                            }
                        }
                    }
                }
            }
            MetaOp::CreateAcg { acg, replicas, open } => {
                self.acg_replicas.insert(*acg, replicas.clone());
                self.acg_files.entry(*acg).or_insert(0);
                self.next_acg = self.next_acg.max(acg.raw() + 1);
                if *open {
                    self.open_acg = Some(*acg);
                }
            }
            MetaOp::CommitSplit { acg, new_acg, moved, targets } => {
                for file in moved {
                    self.file_to_acg.insert(*file, *new_acg);
                }
                self.acg_replicas.insert(*new_acg, targets.clone());
                self.acg_files.insert(*new_acg, moved.len());
                if let Some(c) = self.acg_files.get_mut(acg) {
                    *c = c.saturating_sub(moved.len());
                }
                self.next_acg = self.next_acg.max(new_acg.raw() + 1);
                self.splitting.remove(acg);
                self.migrations.remove(new_acg);
                self.routing_gen += 1;
                self.split_log.push_back((self.routing_gen, moved.clone()));
                while self.split_log.len() > self.config.split_log_capacity.max(1) {
                    self.split_log.pop_front();
                }
            }
            MetaOp::AdoptReplica { acg, node } => {
                let replicas = self.acg_replicas.entry(*acg).or_default();
                if !replicas.contains(node) {
                    replicas.push(*node);
                }
                self.acg_files.entry(*acg).or_insert(0);
                self.next_acg = self.next_acg.max(acg.raw() + 1);
            }
            MetaOp::CreateIndexSpec { spec } => {
                if !self.index_specs.iter().any(|s| s.name == spec.name) {
                    self.index_specs.push(spec.clone());
                }
            }
            MetaOp::DropIndexSpec { name } => {
                self.index_specs.retain(|s| s.name != *name);
            }
            MetaOp::BeginMigration { source, new_acg, moved, targets } => {
                self.next_acg = self.next_acg.max(new_acg.raw() + 1);
                self.splitting.insert(*source);
                self.migrations.insert(
                    *new_acg,
                    Migration {
                        source: *source,
                        new_acg: *new_acg,
                        moved: moved.clone(),
                        targets: targets.clone(),
                        installed: false,
                    },
                );
            }
            MetaOp::InstallAcked { new_acg } => {
                if let Some(m) = self.migrations.get_mut(new_acg) {
                    m.installed = true;
                }
            }
        }
    }

    /// Durably logs `ops` (fsync before returning) and cuts a checkpoint
    /// when one is due. The caller must not have mutated state it cannot
    /// roll back if this errors.
    fn log_ops(&mut self, ops: &[MetaOp]) -> Result<(), Error> {
        self.meta.log(ops)?;
        if self.meta.checkpoint_due() {
            let image = self.image();
            // Checkpoint failure is not fatal: the WAL still holds every
            // transition, recovery just replays a longer suffix.
            let _ = self.meta.checkpoint(&image);
        }
        Ok(())
    }

    /// The `r` nodes with the fewest hosted files (replica-set placement
    /// target), least-loaded first. Load counts every replica a node
    /// hosts: an ACG's files weigh on all R of its nodes.
    fn least_loaded(&self, r: usize) -> Vec<NodeId> {
        let mut load: HashMap<NodeId, usize> = self.index_nodes.iter().map(|&n| (n, 0)).collect();
        for (acg, files) in &self.acg_files {
            for node in self.acg_replicas.get(acg).map(Vec::as_slice).unwrap_or(&[]) {
                *load.entry(*node).or_insert(0) += files;
            }
        }
        let mut ranked = self.index_nodes.clone();
        ranked.sort_by_key(|n| (load.get(n).copied().unwrap_or(0), n.raw()));
        ranked.truncate(r);
        ranked
    }

    /// The effective replication factor: the configured R, clamped to the
    /// cluster size (a 2-node cluster cannot hold 3 distinct replicas).
    fn effective_replication(&self) -> usize {
        self.config.replication.max(1).min(self.index_nodes.len().max(1))
    }

    fn allocate_acg(&mut self) -> Result<(AcgId, Vec<NodeId>), Error> {
        let nodes = self.least_loaded(self.effective_replication());
        if nodes.is_empty() {
            return Err(Error::Config("cluster has no index nodes".into()));
        }
        let acg = AcgId::new(self.next_acg);
        self.next_acg += 1;
        self.acg_replicas.insert(acg, nodes.clone());
        self.acg_files.insert(acg, 0);
        Ok((acg, nodes))
    }

    /// Undoes an [`MasterNode::allocate_acg`] whose transition failed to
    /// log: the id is un-minted, so the next allocation re-uses it.
    fn unallocate_acg(&mut self, acg: AcgId) {
        self.acg_replicas.remove(&acg);
        self.acg_files.remove(&acg);
        self.next_acg = acg.raw();
    }

    /// The replica sets of every distinct ACG named in `rows`, for the
    /// [`Response::Resolved`] payload.
    fn replicas_of(&self, rows: &[(FileId, AcgId, NodeId)]) -> Vec<(AcgId, Vec<NodeId>)> {
        let mut acgs: Vec<AcgId> = rows.iter().map(|(_, a, _)| *a).collect();
        acgs.sort();
        acgs.dedup();
        acgs.into_iter()
            .filter_map(|a| self.acg_replicas.get(&a).map(|nodes| (a, nodes.clone())))
            .collect()
    }

    fn resolve(&mut self, files: Vec<FileId>) -> Result<Vec<(FileId, AcgId, NodeId)>, Error> {
        // Mutate optimistically while recording enough to (a) log the
        // transition and (b) undo everything if the log write fails — an
        // unlogged placement must never be acked.
        let prev_open = self.open_acg;
        let prev_next = self.next_acg;
        let mut created: Vec<(AcgId, Vec<NodeId>)> = Vec::new();
        let mut placed: Vec<(FileId, AcgId)> = Vec::new();
        let mut out = Vec::with_capacity(files.len());
        let result = (|| -> Result<(), Error> {
            for file in files {
                let acg = match self.file_to_acg.get(&file) {
                    Some(&acg) => acg,
                    None => {
                        // Fill the open ACG; roll over at capacity.
                        let need_new = match self.open_acg {
                            Some(acg) => {
                                self.acg_files.get(&acg).copied().unwrap_or(0)
                                    >= self.config.group_capacity
                            }
                            None => true,
                        };
                        if need_new {
                            let (acg, nodes) = self.allocate_acg()?;
                            self.open_acg = Some(acg);
                            created.push((acg, nodes));
                        }
                        let acg = self.open_acg.expect("just ensured");
                        self.file_to_acg.insert(file, acg);
                        *self.acg_files.entry(acg).or_insert(0) += 1;
                        placed.push((file, acg));
                        acg
                    }
                };
                let node = *self
                    .acg_replicas
                    .get(&acg)
                    .and_then(|r| r.first())
                    .ok_or(Error::AcgNotFound(acg))?;
                out.push((file, acg, node));
            }
            let mut ops: Vec<MetaOp> = created
                .iter()
                .map(|(acg, replicas)| MetaOp::CreateAcg {
                    acg: *acg,
                    replicas: replicas.clone(),
                    open: true,
                })
                .collect();
            if !placed.is_empty() {
                ops.push(MetaOp::PlaceFiles { placements: placed.clone() });
            }
            if !ops.is_empty() {
                self.log_ops(&ops)?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            for (file, acg) in placed {
                self.file_to_acg.remove(&file);
                if let Some(c) = self.acg_files.get_mut(&acg) {
                    *c = c.saturating_sub(1);
                }
            }
            for (acg, _) in created {
                self.acg_replicas.remove(&acg);
                self.acg_files.remove(&acg);
            }
            self.open_acg = prev_open;
            self.next_acg = prev_next;
            return Err(e);
        }
        Ok(out)
    }

    fn on_heartbeat(&mut self, node: NodeId, acgs: Vec<AcgSummary>, load: u64, now: Timestamp) {
        self.heartbeats_seen += 1;
        let (files, count) = (acgs.iter().map(|a| a.files).sum(), acgs.len());
        self.node_status.insert(node, NodeStatus { last_heartbeat: now, files, acgs: count, load });
        for summary in acgs {
            // Adopt ACGs this Master has never seen on this node: a node
            // that recovered its groups from disk (a memory-only Master
            // restart, or a revived node with placements the Master lost)
            // re-registers through its first heartbeats, so the search
            // fan-out reaches the recovered data again. Adoption is a
            // hard-state change — it extends a replica set — so it is
            // logged like any other transition; if the log write fails
            // the adoption is skipped and the next heartbeat retries.
            //
            // The guard: a mid-migration new group is *installed* on its
            // targets (it heartbeats!) but must not become routable until
            // the migration commits, or its files would briefly be served
            // from two homes. Its summaries are ignored wholesale here.
            if self.migrations.contains_key(&summary.acg) {
                continue;
            }
            let known = self.acg_replicas.get(&summary.acg).is_some_and(|r| r.contains(&node));
            if !known {
                let op = MetaOp::AdoptReplica { acg: summary.acg, node };
                if self.log_ops(std::slice::from_ref(&op)).is_err() {
                    continue;
                }
                self.apply_op(&op);
            }
            self.acg_files.insert(summary.acg, summary.files);
            if summary.files > self.config.split_threshold && !self.splitting.contains(&summary.acg)
            {
                // Split work always runs on the primary (it has the
                // authoritative WAL the followers chain from).
                let primary = self.acg_replicas[&summary.acg][0];
                self.splitting.insert(summary.acg);
                self.pending_splits.push((summary.acg, primary));
            }
        }
        if self.heartbeats_seen.is_multiple_of(self.config.flush_every_heartbeats) {
            self.flush_metadata();
        }
    }

    /// Serialises the file→ACG map to shared storage (crash protection for
    /// index metadata, paper §IV "Master Node").
    fn flush_metadata(&self) {
        let Some(shared) = &self.shared else { return };
        let mut buf = BytesMut::with_capacity(8 + self.file_to_acg.len() * 16);
        buf.put_u64_le(self.file_to_acg.len() as u64);
        let mut rows: Vec<(&FileId, &AcgId)> = self.file_to_acg.iter().collect();
        rows.sort();
        for (file, acg) in rows {
            buf.put_u64_le(file.raw());
            buf.put_u64_le(acg.raw());
        }
        shared.put_blob("master/file_to_acg", buf.to_vec());
    }

    /// Reloads the file→ACG map from a metadata blob (recovery path).
    pub fn load_metadata(&mut self, blob: &[u8]) -> Result<usize, Error> {
        let mut cursor = blob;
        if cursor.len() < 8 {
            return Err(Error::Corrupt("metadata blob too short".into()));
        }
        let n = cursor.get_u64_le() as usize;
        if cursor.len() < n * 16 {
            return Err(Error::Corrupt("metadata blob truncated".into()));
        }
        for _ in 0..n {
            let file = FileId::new(cursor.get_u64_le());
            let acg = AcgId::new(cursor.get_u64_le());
            self.file_to_acg.insert(file, acg);
            self.next_acg = self.next_acg.max(acg.raw() + 1);
        }
        Ok(n)
    }

    /// The route invalidations a client at generation `since` is missing.
    /// Complete (surgical) hints need the split log to reach back to
    /// `since + 1`; a client further behind gets `complete: false` and
    /// drops its whole cache.
    fn route_hints(&self, since: u64) -> RouteHints {
        let upto = self.routing_gen;
        if since >= upto {
            return RouteHints { upto, moved: Vec::new(), complete: true };
        }
        match self.split_log.front() {
            Some((oldest, _)) if *oldest <= since + 1 => RouteHints {
                upto,
                moved: self
                    .split_log
                    .iter()
                    .filter(|(gen, _)| *gen > since)
                    .flat_map(|(_, files)| files.iter().copied())
                    .collect(),
                complete: true,
            },
            _ => RouteHints { upto, moved: Vec::new(), complete: false },
        }
    }

    /// Status table of the nodes (for tests and operators).
    pub fn node_status(&self) -> &HashMap<NodeId, NodeStatus> {
        &self.node_status
    }

    /// Number of distinct ACGs allocated.
    pub fn acg_count(&self) -> usize {
        self.acg_replicas.len()
    }

    /// Handles one request (the actor body).
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::ResolveFiles { files, hints_since, ctx } => {
                let span = self.obs.spans.begin(ctx, SpanKind::Resolve, self.clock.now());
                self.obs.metrics.counter(names::RESOLVES_SERVED).inc();
                let wanted = files.len();
                match self.resolve(files) {
                    Ok(rows) => {
                        let replicas = self.replicas_of(&rows);
                        if span.enabled() {
                            self.obs.spans.finish_with(
                                span,
                                self.clock.now(),
                                format!("files={wanted} rows={}", rows.len()),
                            );
                        }
                        Response::Resolved { rows, hints: self.route_hints(hints_since), replicas }
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Request::LocateAcgs => {
                let mut rows: Vec<(AcgId, Vec<NodeId>)> =
                    self.acg_replicas.iter().map(|(&a, n)| (a, n.clone())).collect();
                rows.sort();
                Response::Located(rows)
            }
            Request::CreateIndex { spec } => {
                if self.index_specs.iter().any(|s| s.name == spec.name) {
                    return Response::Err(Error::IndexExists(spec.name));
                }
                let op = MetaOp::CreateIndexSpec { spec };
                if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                    return Response::Err(e);
                }
                self.apply_op(&op);
                Response::Ok
            }
            Request::DropIndex { name } => {
                // Idempotent: rolling back a registration that partially
                // propagated must always succeed. Only an actual removal
                // is a transition worth logging.
                if self.index_specs.iter().any(|s| s.name == name) {
                    let op = MetaOp::DropIndexSpec { name };
                    if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                        return Response::Err(e);
                    }
                    self.apply_op(&op);
                }
                Response::Ok
            }
            Request::ListIndexSpecs => Response::IndexSpecs(self.index_specs.clone()),
            Request::Heartbeat { node, acgs, load, now } => {
                self.on_heartbeat(node, acgs, load, now);
                Response::Ok
            }
            Request::NodeLoads => {
                let mut rows: Vec<(NodeId, u64)> =
                    self.node_status.iter().map(|(&n, s)| (n, s.load)).collect();
                rows.sort();
                Response::NodeLoadReport(rows)
            }
            Request::TakeSplitWork => {
                let work = std::mem::take(&mut self.pending_splits);
                Response::SplitWork(work)
            }
            Request::TakeMigrationWork => {
                let mut jobs: Vec<MigrationJob> = self
                    .migrations
                    .values()
                    .filter_map(|m| {
                        let source_node =
                            *self.acg_replicas.get(&m.source).and_then(|r| r.first())?;
                        Some(MigrationJob {
                            source: m.source,
                            source_node,
                            new_acg: m.new_acg,
                            moved: m.moved.clone(),
                            targets: m.targets.clone(),
                            installed: m.installed,
                        })
                    })
                    .collect();
                jobs.sort_by_key(|j| j.new_acg);
                Response::MigrationWork(jobs)
            }
            Request::AllocateAcg => match self.allocate_acg() {
                Ok((acg, nodes)) => {
                    let op = MetaOp::CreateAcg { acg, replicas: nodes.clone(), open: false };
                    if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                        self.unallocate_acg(acg);
                        return Response::Err(e);
                    }
                    Response::AcgAllocated(acg, nodes)
                }
                Err(e) => Response::Err(e),
            },
            Request::BindFiles { acg, files } => {
                if !self.acg_replicas.contains_key(&acg) {
                    return Response::Err(Error::AcgNotFound(acg));
                }
                let placements: Vec<(FileId, AcgId)> = files
                    .iter()
                    .filter(|f| self.file_to_acg.get(f) != Some(&acg))
                    .map(|&f| (f, acg))
                    .collect();
                if placements.is_empty() {
                    return Response::Ok;
                }
                let op = MetaOp::PlaceFiles { placements };
                if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                    return Response::Err(e);
                }
                self.apply_op(&op);
                Response::Ok
            }
            Request::BeginMigration { acg, moved } => {
                if !self.acg_replicas.contains_key(&acg) {
                    return Response::Err(Error::AcgNotFound(acg));
                }
                if self.migrations.values().any(|m| m.source == acg) {
                    return Response::Err(Error::Rpc(format!(
                        "a migration out of {acg} is already in flight"
                    )));
                }
                let targets = self.least_loaded(self.effective_replication());
                if targets.is_empty() {
                    return Response::Err(Error::Config("cluster has no index nodes".into()));
                }
                let new_acg = AcgId::new(self.next_acg);
                let op = MetaOp::BeginMigration {
                    source: acg,
                    new_acg,
                    moved,
                    targets: targets.clone(),
                };
                if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                    return Response::Err(e);
                }
                self.apply_op(&op);
                Response::MigrationBegun { new_acg, targets }
            }
            Request::InstallAcked { new_acg } => {
                let Some(m) = self.migrations.get(&new_acg) else {
                    return Response::Err(Error::AcgNotFound(new_acg));
                };
                if !m.installed {
                    let op = MetaOp::InstallAcked { new_acg };
                    if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                        return Response::Err(e);
                    }
                    self.apply_op(&op);
                }
                Response::Ok
            }
            Request::CommitMigration { new_acg } => {
                let Some(m) = self.migrations.get(&new_acg) else {
                    return Response::Err(Error::AcgNotFound(new_acg));
                };
                if !m.installed {
                    return Response::Err(Error::Rpc(format!(
                        "migration into {new_acg} committed before its install was acked"
                    )));
                }
                let op = MetaOp::CommitSplit {
                    acg: m.source,
                    new_acg,
                    moved: m.moved.clone(),
                    targets: m.targets.clone(),
                };
                if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                    return Response::Err(e);
                }
                // Applying remaps the moved files, makes the new group
                // routable, advances the routing generation and retires
                // the migration — atomically from any observer's view,
                // because it all happens inside this one request.
                self.apply_op(&op);
                self.flush_metadata();
                Response::Ok
            }
            Request::CommitSplit { acg, kept: _, new_acg, moved, targets } => {
                // Legacy single-shot commit (coordinator-computed splits
                // whose extract/install already happened). Same logged
                // transition as a two-phase commit.
                let op = MetaOp::CommitSplit { acg, new_acg, moved, targets };
                if let Err(e) = self.log_ops(std::slice::from_ref(&op)) {
                    return Response::Err(e);
                }
                self.apply_op(&op);
                self.flush_metadata();
                Response::Ok
            }
            Request::DumpTrace { trace } => Response::TraceSpans(self.obs.spans.harvest(trace)),
            Request::Metrics => {
                self.obs.metrics.gauge("routing_gen").set(self.routing_gen);
                Response::Metrics(Box::new(self.obs.metrics.snapshot()))
            }
            Request::DumpSlowQueries => Response::SlowQueries(self.obs.slow.dump()),
            other => Response::Err(Error::Rpc(format!("master cannot handle {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId::new).collect()
    }

    fn master(n: u32, capacity: usize) -> MasterNode {
        MasterNode::new(
            nodes(n),
            MasterConfig { group_capacity: capacity, ..MasterConfig::default() },
        )
    }

    fn resolve(
        m: &mut MasterNode,
        ids: impl IntoIterator<Item = u64>,
    ) -> Vec<(FileId, AcgId, NodeId)> {
        match m.handle(Request::ResolveFiles {
            files: ids.into_iter().map(FileId::new).collect(),
            hints_since: 0,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { rows, .. } => rows,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolution_is_stable() {
        let mut m = master(4, 100);
        let first = resolve(&mut m, [1, 2, 3]);
        let second = resolve(&mut m, [1, 2, 3]);
        assert_eq!(first, second);
    }

    #[test]
    fn open_acg_rolls_over_at_capacity() {
        let mut m = master(2, 10);
        let rows = resolve(&mut m, 0..25);
        let acgs: std::collections::HashSet<AcgId> = rows.iter().map(|(_, a, _)| *a).collect();
        assert_eq!(acgs.len(), 3, "25 files / 10 capacity = 3 ACGs");
    }

    #[test]
    fn allocation_prefers_least_loaded_node() {
        let mut m = master(2, 5);
        // Fill several ACGs; placements should alternate as load grows.
        resolve(&mut m, 0..20);
        let located = match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => rows,
            other => panic!("{other:?}"),
        };
        let on_n1 = located.iter().filter(|(_, n)| n[0].raw() == 1).count();
        let on_n2 = located.iter().filter(|(_, n)| n[0].raw() == 2).count();
        assert_eq!(on_n1 + on_n2, 4);
        assert!(on_n1 >= 1 && on_n2 >= 1, "both nodes get ACGs");
    }

    #[test]
    fn heartbeat_marks_oversized_acgs_for_split() {
        let mut m = master(2, 1000);
        m.config.split_threshold = 50;
        resolve(&mut m, 0..10);
        let acg = *m.file_to_acg.get(&FileId::new(0)).unwrap();
        let node = m.acg_replicas.get(&acg).unwrap()[0];
        m.handle(Request::Heartbeat {
            node,
            acgs: vec![AcgSummary { acg, files: 60, pending_ops: 0 }],
            load: 0,
            now: Timestamp::from_secs(1),
        });
        match m.handle(Request::TakeSplitWork) {
            Response::SplitWork(work) => assert_eq!(work, vec![(acg, node)]),
            other => panic!("{other:?}"),
        }
        // Re-heartbeating while the split is in flight must not re-queue.
        m.handle(Request::Heartbeat {
            node,
            acgs: vec![AcgSummary { acg, files: 60, pending_ops: 0 }],
            load: 0,
            now: Timestamp::from_secs(2),
        });
        match m.handle(Request::TakeSplitWork) {
            Response::SplitWork(work) => assert!(work.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn commit_split_remaps_files() {
        let mut m = master(2, 1000);
        let rows = resolve(&mut m, 0..10);
        let acg = rows[0].1;
        let (new_acg, targets) = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, n) => (a, n),
            other => panic!("{other:?}"),
        };
        let moved: Vec<FileId> = (5..10).map(FileId::new).collect();
        let kept: Vec<FileId> = (0..5).map(FileId::new).collect();
        m.handle(Request::CommitSplit {
            acg,
            kept: kept.clone(),
            new_acg,
            moved: moved.clone(),
            targets: targets.clone(),
        });
        let after = resolve(&mut m, 0..10);
        for (file, a, n) in after {
            if file.raw() < 5 {
                assert_eq!(a, acg);
            } else {
                assert_eq!(a, new_acg);
                assert_eq!(n, targets[0]);
            }
        }
    }

    #[test]
    fn bind_files_moves_mappings() {
        let mut m = master(1, 1000);
        resolve(&mut m, 0..4);
        let acg = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, _) => a,
            other => panic!("{other:?}"),
        };
        m.handle(Request::BindFiles { acg, files: vec![FileId::new(2), FileId::new(3)] });
        let rows = resolve(&mut m, [2, 3]);
        assert!(rows.iter().all(|(_, a, _)| *a == acg));
    }

    fn commit_a_split(m: &mut MasterNode, moved: Vec<FileId>) {
        let acg = *m.file_to_acg.get(&moved[0]).unwrap();
        let (new_acg, targets) = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, n) => (a, n),
            other => panic!("{other:?}"),
        };
        m.handle(Request::CommitSplit { acg, kept: Vec::new(), new_acg, moved, targets });
    }

    #[test]
    fn resolve_carries_route_hints_for_committed_splits() {
        let mut m = master(2, 1000);
        resolve(&mut m, 0..10);
        // A client at generation 0 resolving before any split: no hints.
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: 0,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints, RouteHints { upto: 0, moved: vec![], complete: true });
            }
            other => panic!("{other:?}"),
        }
        commit_a_split(&mut m, vec![FileId::new(5), FileId::new(6)]);
        commit_a_split(&mut m, vec![FileId::new(7)]);
        // A client still at generation 0 hears about both splits...
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: 0,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert!(hints.complete);
                assert_eq!(hints.upto, 2);
                assert_eq!(hints.moved, vec![FileId::new(5), FileId::new(6), FileId::new(7)]);
            }
            other => panic!("{other:?}"),
        }
        // ...a client that already applied generation 1 only the second...
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: 1,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints.moved, vec![FileId::new(7)]);
            }
            other => panic!("{other:?}"),
        }
        // ...and an up-to-date client nothing.
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: 2,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => assert!(hints.moved.is_empty() && hints.complete),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn route_hints_past_the_bounded_log_are_incomplete() {
        let mut m = MasterNode::new(
            nodes(2),
            MasterConfig { split_log_capacity: 2, ..MasterConfig::default() },
        );
        resolve(&mut m, 0..10);
        for f in [1u64, 2, 3] {
            commit_a_split(&mut m, vec![FileId::new(f)]);
        }
        // Generation 1 fell off the 2-deep log: the client can't know
        // which routes it missed and must clear its cache.
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: 0,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert!(!hints.complete);
                assert_eq!(hints.upto, 3);
                assert!(hints.moved.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // A client only one generation behind is still covered.
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: 2,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert!(hints.complete);
                assert_eq!(hints.moved, vec![FileId::new(3)]);
            }
            other => panic!("{other:?}"),
        }
        // A hintless caller (`u64::MAX` — empty cache, nothing to
        // invalidate) costs no log walk and still learns the current
        // generation to sync to.
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(0)],
            hints_since: u64::MAX,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints, RouteHints { upto: 3, moved: vec![], complete: true });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_index_nodes_is_a_config_error() {
        let mut m = MasterNode::new(vec![], MasterConfig::default());
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(1)],
            hints_since: 0,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Err(Error::Config(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metadata_flush_and_reload() {
        let shared = Arc::new(SharedStorage::new());
        let mut m = MasterNode::new(
            nodes(2),
            MasterConfig { flush_every_heartbeats: 1, ..MasterConfig::default() },
        )
        .with_shared_storage(shared.clone());
        resolve(&mut m, 0..50);
        m.handle(Request::Heartbeat {
            node: NodeId::new(1),
            acgs: vec![],
            load: 0,
            now: Timestamp::from_secs(1),
        });
        let blob = shared.get_blob("master/file_to_acg").expect("flushed");
        let mut fresh = MasterNode::new(nodes(2), MasterConfig::default());
        let loaded = fresh.load_metadata(&blob).unwrap();
        assert_eq!(loaded, 50);
        assert_eq!(fresh.file_to_acg.get(&FileId::new(7)), m.file_to_acg.get(&FileId::new(7)));
    }

    #[test]
    fn corrupt_metadata_rejected() {
        let mut m = master(1, 10);
        assert!(m.load_metadata(&[1, 2, 3]).is_err());
        let mut blob = vec![0u8; 8];
        blob[0] = 200; // claims 200 rows, provides none
        assert!(m.load_metadata(&blob).is_err());
    }

    #[test]
    fn node_status_alive_tracking() {
        let mut m = master(2, 10);
        m.handle(Request::Heartbeat {
            node: NodeId::new(1),
            acgs: vec![],
            load: 0,
            now: Timestamp::from_secs(10),
        });
        let status = m.node_status().get(&NodeId::new(1)).unwrap();
        assert!(status.alive(Timestamp::from_secs(12), Duration::from_secs(5)));
        assert!(!status.alive(Timestamp::from_secs(30), Duration::from_secs(5)));
    }

    #[test]
    fn replicated_placement_uses_distinct_nodes() {
        let mut m = MasterNode::new(
            nodes(4),
            MasterConfig { group_capacity: 5, replication: 2, ..MasterConfig::default() },
        );
        resolve(&mut m, 0..20);
        let located = match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(located.len(), 4);
        for (acg, replicas) in &located {
            assert_eq!(replicas.len(), 2, "{acg:?} must have 2 replicas");
            assert_ne!(replicas[0], replicas[1], "{acg:?} replicas must be distinct nodes");
        }
    }

    #[test]
    fn replication_is_clamped_to_the_cluster_size() {
        let mut m =
            MasterNode::new(nodes(2), MasterConfig { replication: 3, ..MasterConfig::default() });
        resolve(&mut m, 0..3);
        match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => {
                assert!(rows.iter().all(|(_, r)| r.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resolve_reports_the_full_replica_set() {
        let mut m =
            MasterNode::new(nodes(3), MasterConfig { replication: 2, ..MasterConfig::default() });
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(1)],
            hints_since: 0,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { rows, replicas, .. } => {
                assert_eq!(rows.len(), 1);
                let (_, acg, primary) = rows[0];
                let set = &replicas.iter().find(|(a, _)| *a == acg).expect("replica row").1;
                assert_eq!(set.len(), 2);
                assert_eq!(set[0], primary, "the resolved node is the primary");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_commit_installs_the_whole_target_replica_set() {
        let mut m =
            MasterNode::new(nodes(3), MasterConfig { replication: 2, ..MasterConfig::default() });
        resolve(&mut m, 0..10);
        let acg = *m.file_to_acg.get(&FileId::new(0)).unwrap();
        let (new_acg, targets) = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, n) => (a, n),
            other => panic!("{other:?}"),
        };
        assert_eq!(targets.len(), 2);
        m.handle(Request::CommitSplit {
            acg,
            kept: (0..5).map(FileId::new).collect(),
            new_acg,
            moved: (5..10).map(FileId::new).collect(),
            targets: targets.clone(),
        });
        assert_eq!(m.acg_replicas.get(&new_acg), Some(&targets));
    }

    #[test]
    fn heartbeats_rebuild_replica_sets_after_a_master_restart() {
        let mut m = MasterNode::new(nodes(3), MasterConfig::default());
        let acg = AcgId::new(7);
        for node in [NodeId::new(2), NodeId::new(3)] {
            m.handle(Request::Heartbeat {
                node,
                acgs: vec![AcgSummary { acg, files: 4, pending_ops: 0 }],
                load: 0,
                now: Timestamp::from_secs(1),
            });
        }
        assert_eq!(m.acg_replicas.get(&acg), Some(&vec![NodeId::new(2), NodeId::new(3)]));
        assert!(m.next_acg > 7);
    }

    #[test]
    fn duplicate_index_name_rejected_at_master() {
        let mut m = master(1, 10);
        let spec = IndexSpec::btree("uid_idx", propeller_types::AttrName::Uid);
        assert!(matches!(m.handle(Request::CreateIndex { spec: spec.clone() }), Response::Ok));
        assert!(matches!(
            m.handle(Request::CreateIndex { spec }),
            Response::Err(Error::IndexExists(_))
        ));
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("propeller-master-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path) -> MasterConfig {
        MasterConfig {
            group_capacity: 1000,
            data_dir: Some(dir.to_path_buf()),
            ..MasterConfig::default()
        }
    }

    #[test]
    fn durable_master_recovers_its_state_machine_from_disk() {
        let dir = durable_dir("recover");
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        let before = resolve(&mut m, 0..20);
        let spec = IndexSpec::btree("uid_idx", propeller_types::AttrName::Uid);
        assert!(matches!(m.handle(Request::CreateIndex { spec: spec.clone() }), Response::Ok));
        drop(m); // Crash.
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        assert_eq!(resolve(&mut m, 0..20), before, "recovered placements must match");
        // The allocation cursor continued: a fresh ACG id never collides
        // with a recovered one.
        let taken: std::collections::HashSet<AcgId> = before.iter().map(|(_, a, _)| *a).collect();
        match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, _) => assert!(!taken.contains(&a), "{a:?} reused"),
            other => panic!("{other:?}"),
        }
        // The spec catalogue survived, duplicates still rejected.
        match m.handle(Request::ListIndexSpecs) {
            Response::IndexSpecs(specs) => assert_eq!(specs, vec![spec.clone()]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            m.handle(Request::CreateIndex { spec }),
            Response::Err(Error::IndexExists(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routing_generation_survives_a_master_restart() {
        let dir = durable_dir("gen");
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        resolve(&mut m, 0..10);
        commit_a_split(&mut m, (5..10).map(FileId::new).collect());
        drop(m); // Crash at generation 1.
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        commit_a_split(&mut m, (0..3).map(FileId::new).collect());
        // A client that saw generation 1 before the crash asks for the
        // delta. A generation counter that reset to 0 on restart would
        // re-issue gen 1 and the stale client would silently keep routing
        // the second split's files to the wrong ACG.
        match m.handle(Request::ResolveFiles {
            files: vec![FileId::new(4)],
            hints_since: 1,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints.upto, 2, "generation must continue past the restart, not reset");
                assert!(hints.complete, "the recovered split log must cover gen 2");
                assert!(
                    hints.moved.contains(&FileId::new(0)),
                    "the post-restart split's moved files must ride the hints: {:?}",
                    hints.moved
                );
            }
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_flight_migration_survives_restart_and_resumes_from_its_phase() {
        let dir = durable_dir("mig");
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        let rows = resolve(&mut m, 0..10);
        let source = rows[0].1;
        let moved: Vec<FileId> = (5..10).map(FileId::new).collect();
        let (new_acg, targets) =
            match m.handle(Request::BeginMigration { acg: source, moved: moved.clone() }) {
                Response::MigrationBegun { new_acg, targets } => (new_acg, targets),
                other => panic!("{other:?}"),
            };
        // The reserved group is not routable before commit.
        match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => assert!(rows.iter().all(|(a, _)| *a != new_acg)),
            other => panic!("{other:?}"),
        }
        drop(m); // Crash before the install ack.
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        match m.handle(Request::TakeMigrationWork) {
            Response::MigrationWork(jobs) => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(jobs[0].new_acg, new_acg);
                assert!(!jobs[0].installed, "crash pre-ack: recovery must re-extract");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(m.handle(Request::InstallAcked { new_acg }), Response::Ok));
        drop(m); // Crash after the install ack.
        let mut m = MasterNode::open(nodes(2), durable_config(&dir)).unwrap();
        match m.handle(Request::TakeMigrationWork) {
            Response::MigrationWork(jobs) => {
                assert_eq!(jobs.len(), 1);
                assert!(jobs[0].installed, "the logged ack must survive the crash");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(m.handle(Request::CommitMigration { new_acg }), Response::Ok));
        // Committed: files remapped, the group routable, the job retired.
        let after = resolve(&mut m, 5..10);
        assert!(after.iter().all(|(_, a, _)| *a == new_acg), "{after:?}");
        assert_eq!(m.acg_replicas.get(&new_acg), Some(&targets));
        match m.handle(Request::TakeMigrationWork) {
            Response::MigrationWork(jobs) => assert!(jobs.is_empty()),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn master_checkpoints_bound_recovery_replay() {
        let dir = durable_dir("ckpt");
        let config = || MasterConfig { meta_snapshot_every: 4, ..durable_config(&dir) };
        let mut m = MasterNode::open(nodes(2), config()).unwrap();
        // Dozens of logged ops: placements plus spec churn force several
        // checkpoint cycles (every 4 ops).
        for round in 0..6u64 {
            resolve(&mut m, round * 10..round * 10 + 10);
            let name = format!("idx_{round}");
            let spec = IndexSpec::btree(&name, propeller_types::AttrName::Uid);
            assert!(matches!(m.handle(Request::CreateIndex { spec }), Response::Ok));
        }
        let before = resolve(&mut m, 0..60);
        drop(m);
        // The WAL was truncated behind the checkpoints — recovery replays
        // a short suffix, not the whole history — and still lands on the
        // exact same state.
        let mut m = MasterNode::open(nodes(2), config()).unwrap();
        assert_eq!(resolve(&mut m, 0..60), before);
        match m.handle(Request::ListIndexSpecs) {
            Response::IndexSpecs(specs) => assert_eq!(specs.len(), 6),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
