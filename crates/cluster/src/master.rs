//! The Master Node (paper §IV).
//!
//! "The central index metadata and coordination server": it owns the
//! `file → ACG` mapping and ACG placement, routes client requests, tracks
//! Index Node liveness through heartbeats, decides when an ACG must be
//! split, and periodically flushes its metadata to shared storage so a
//! crash loses at most one flush interval of mappings. It never touches
//! file data or indices itself, which is why a single Master scales to
//! hundreds of Index Nodes.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use propeller_index::IndexSpec;
use propeller_storage::SharedStorage;
use propeller_types::{AcgId, Duration, Error, FileId, NodeId, Timestamp};

use crate::messages::{AcgSummary, Request, Response, RouteHints};

/// Liveness/load record for one Index Node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// Last heartbeat receipt time.
    pub last_heartbeat: Timestamp,
    /// Total files across the node's ACGs.
    pub files: usize,
    /// Number of hosted ACGs.
    pub acgs: usize,
}

impl NodeStatus {
    /// Whether the node has heartbeated within `timeout` of `now`.
    pub fn alive(&self, now: Timestamp, timeout: Duration) -> bool {
        now.since(self.last_heartbeat) <= timeout
    }
}

/// Master Node configuration.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Files per default-allocated ACG (new files without causality
    /// context fill the open ACG up to this size).
    pub group_capacity: usize,
    /// File count above which an ACG is scheduled for a split (paper
    /// example: 50 000).
    pub split_threshold: usize,
    /// Flush metadata to shared storage every this many heartbeats.
    pub flush_every_heartbeats: u64,
    /// How many committed splits the Master keeps in its route-hint log.
    /// A client further behind than this receives `complete: false` hints
    /// and drops its whole route cache (safe, just less surgical).
    pub split_log_capacity: usize,
    /// Replicas per ACG (R). Every ACG is placed on R distinct nodes
    /// (clamped to the cluster size): the first is the primary that
    /// accepts writes, the rest are followers fed the primary's WAL
    /// frames. R = 1 (the default) reproduces the unreplicated cluster
    /// exactly.
    pub replication: usize,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            group_capacity: 1000,
            split_threshold: 50_000,
            flush_every_heartbeats: 16,
            split_log_capacity: 64,
            replication: 1,
        }
    }
}

/// The Master Node state machine. Driven as an actor by the cluster
/// runtime; unit tests can drive [`MasterNode::handle`] directly.
#[derive(Debug)]
pub struct MasterNode {
    config: MasterConfig,
    index_nodes: Vec<NodeId>,
    file_to_acg: HashMap<FileId, AcgId>,
    /// Each ACG's replica set, primary first. Splits and migrations
    /// replace the whole set; individual nodes are never swapped out of
    /// it silently, so clients can cache `(acg, replicas)` rows.
    acg_replicas: HashMap<AcgId, Vec<NodeId>>,
    acg_files: HashMap<AcgId, usize>,
    node_status: HashMap<NodeId, NodeStatus>,
    next_acg: u64,
    open_acg: Option<AcgId>,
    pending_splits: Vec<(AcgId, NodeId)>,
    splitting: std::collections::HashSet<AcgId>,
    index_specs: Vec<IndexSpec>,
    shared: Option<Arc<SharedStorage>>,
    heartbeats_seen: u64,
    /// Monotonic count of committed splits — the routing generation
    /// clients synchronize their caches against.
    routing_gen: u64,
    /// The last `split_log_capacity` splits: `(generation, moved files)`,
    /// oldest first. Served as [`RouteHints`] on every resolve.
    split_log: std::collections::VecDeque<(u64, Vec<FileId>)>,
}

impl MasterNode {
    /// Creates a Master managing the given Index Nodes.
    pub fn new(index_nodes: Vec<NodeId>, config: MasterConfig) -> Self {
        MasterNode {
            config,
            index_nodes,
            file_to_acg: HashMap::new(),
            acg_replicas: HashMap::new(),
            acg_files: HashMap::new(),
            node_status: HashMap::new(),
            next_acg: 1,
            open_acg: None,
            pending_splits: Vec::new(),
            splitting: std::collections::HashSet::new(),
            index_specs: Vec::new(),
            shared: None,
            heartbeats_seen: 0,
            routing_gen: 0,
            split_log: std::collections::VecDeque::new(),
        }
    }

    /// Attaches shared storage for periodic metadata flushes.
    pub fn with_shared_storage(mut self, shared: Arc<SharedStorage>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// The `r` nodes with the fewest hosted files (replica-set placement
    /// target), least-loaded first. Load counts every replica a node
    /// hosts: an ACG's files weigh on all R of its nodes.
    fn least_loaded(&self, r: usize) -> Vec<NodeId> {
        let mut load: HashMap<NodeId, usize> = self.index_nodes.iter().map(|&n| (n, 0)).collect();
        for (acg, files) in &self.acg_files {
            for node in self.acg_replicas.get(acg).map(Vec::as_slice).unwrap_or(&[]) {
                *load.entry(*node).or_insert(0) += files;
            }
        }
        let mut ranked = self.index_nodes.clone();
        ranked.sort_by_key(|n| (load.get(n).copied().unwrap_or(0), n.raw()));
        ranked.truncate(r);
        ranked
    }

    /// The effective replication factor: the configured R, clamped to the
    /// cluster size (a 2-node cluster cannot hold 3 distinct replicas).
    fn effective_replication(&self) -> usize {
        self.config.replication.max(1).min(self.index_nodes.len().max(1))
    }

    fn allocate_acg(&mut self) -> Result<(AcgId, Vec<NodeId>), Error> {
        let nodes = self.least_loaded(self.effective_replication());
        if nodes.is_empty() {
            return Err(Error::Config("cluster has no index nodes".into()));
        }
        let acg = AcgId::new(self.next_acg);
        self.next_acg += 1;
        self.acg_replicas.insert(acg, nodes.clone());
        self.acg_files.insert(acg, 0);
        Ok((acg, nodes))
    }

    /// The replica sets of every distinct ACG named in `rows`, for the
    /// [`Response::Resolved`] payload.
    fn replicas_of(&self, rows: &[(FileId, AcgId, NodeId)]) -> Vec<(AcgId, Vec<NodeId>)> {
        let mut acgs: Vec<AcgId> = rows.iter().map(|(_, a, _)| *a).collect();
        acgs.sort();
        acgs.dedup();
        acgs.into_iter()
            .filter_map(|a| self.acg_replicas.get(&a).map(|nodes| (a, nodes.clone())))
            .collect()
    }

    fn resolve(&mut self, files: Vec<FileId>) -> Result<Vec<(FileId, AcgId, NodeId)>, Error> {
        let mut out = Vec::with_capacity(files.len());
        for file in files {
            let acg = match self.file_to_acg.get(&file) {
                Some(&acg) => acg,
                None => {
                    // Fill the open ACG; roll over at capacity.
                    let need_new = match self.open_acg {
                        Some(acg) => {
                            self.acg_files.get(&acg).copied().unwrap_or(0)
                                >= self.config.group_capacity
                        }
                        None => true,
                    };
                    if need_new {
                        let (acg, _) = self.allocate_acg()?;
                        self.open_acg = Some(acg);
                    }
                    let acg = self.open_acg.expect("just ensured");
                    self.file_to_acg.insert(file, acg);
                    *self.acg_files.entry(acg).or_insert(0) += 1;
                    acg
                }
            };
            let node = *self
                .acg_replicas
                .get(&acg)
                .and_then(|r| r.first())
                .ok_or(Error::AcgNotFound(acg))?;
            out.push((file, acg, node));
        }
        Ok(out)
    }

    fn on_heartbeat(&mut self, node: NodeId, acgs: Vec<AcgSummary>, now: Timestamp) {
        self.heartbeats_seen += 1;
        let (files, count) = (acgs.iter().map(|a| a.files).sum(), acgs.len());
        self.node_status.insert(node, NodeStatus { last_heartbeat: now, files, acgs: count });
        for summary in acgs {
            // Adopt ACGs this Master has never seen: after a full-cluster
            // restart the (in-memory) Master comes up empty while durable
            // Index Nodes recover their groups from disk — their first
            // heartbeats re-register the placements, so the search
            // fan-out reaches the recovered data again. In steady state
            // this never fires (every ACG is Master-allocated). File→ACG
            // routing for *new* batches of pre-restart files is not
            // rebuilt here; that needs persisted Master metadata (a
            // recorded follow-on).
            // With replication, each later replica's heartbeat re-joins
            // the adopted set (first reporter becomes the primary; the
            // order is arbitrary after a full restart, but replicas are
            // bit-identical so any of them can lead).
            let replicas = self.acg_replicas.entry(summary.acg).or_insert_with(|| {
                self.next_acg = self.next_acg.max(summary.acg.raw() + 1);
                Vec::new()
            });
            if !replicas.contains(&node) {
                replicas.push(node);
            }
            self.acg_files.insert(summary.acg, summary.files);
            if summary.files > self.config.split_threshold && !self.splitting.contains(&summary.acg)
            {
                // Split work always runs on the primary (it has the
                // authoritative WAL the followers chain from).
                let primary = self.acg_replicas[&summary.acg][0];
                self.splitting.insert(summary.acg);
                self.pending_splits.push((summary.acg, primary));
            }
        }
        if self.heartbeats_seen.is_multiple_of(self.config.flush_every_heartbeats) {
            self.flush_metadata();
        }
    }

    /// Serialises the file→ACG map to shared storage (crash protection for
    /// index metadata, paper §IV "Master Node").
    fn flush_metadata(&self) {
        let Some(shared) = &self.shared else { return };
        let mut buf = BytesMut::with_capacity(8 + self.file_to_acg.len() * 16);
        buf.put_u64_le(self.file_to_acg.len() as u64);
        let mut rows: Vec<(&FileId, &AcgId)> = self.file_to_acg.iter().collect();
        rows.sort();
        for (file, acg) in rows {
            buf.put_u64_le(file.raw());
            buf.put_u64_le(acg.raw());
        }
        shared.put_blob("master/file_to_acg", buf.to_vec());
    }

    /// Reloads the file→ACG map from a metadata blob (recovery path).
    pub fn load_metadata(&mut self, blob: &[u8]) -> Result<usize, Error> {
        let mut cursor = blob;
        if cursor.len() < 8 {
            return Err(Error::Corrupt("metadata blob too short".into()));
        }
        let n = cursor.get_u64_le() as usize;
        if cursor.len() < n * 16 {
            return Err(Error::Corrupt("metadata blob truncated".into()));
        }
        for _ in 0..n {
            let file = FileId::new(cursor.get_u64_le());
            let acg = AcgId::new(cursor.get_u64_le());
            self.file_to_acg.insert(file, acg);
            self.next_acg = self.next_acg.max(acg.raw() + 1);
        }
        Ok(n)
    }

    /// The route invalidations a client at generation `since` is missing.
    /// Complete (surgical) hints need the split log to reach back to
    /// `since + 1`; a client further behind gets `complete: false` and
    /// drops its whole cache.
    fn route_hints(&self, since: u64) -> RouteHints {
        let upto = self.routing_gen;
        if since >= upto {
            return RouteHints { upto, moved: Vec::new(), complete: true };
        }
        match self.split_log.front() {
            Some((oldest, _)) if *oldest <= since + 1 => RouteHints {
                upto,
                moved: self
                    .split_log
                    .iter()
                    .filter(|(gen, _)| *gen > since)
                    .flat_map(|(_, files)| files.iter().copied())
                    .collect(),
                complete: true,
            },
            _ => RouteHints { upto, moved: Vec::new(), complete: false },
        }
    }

    /// Status table of the nodes (for tests and operators).
    pub fn node_status(&self) -> &HashMap<NodeId, NodeStatus> {
        &self.node_status
    }

    /// Number of distinct ACGs allocated.
    pub fn acg_count(&self) -> usize {
        self.acg_replicas.len()
    }

    /// Handles one request (the actor body).
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::ResolveFiles { files, hints_since } => match self.resolve(files) {
                Ok(rows) => {
                    let replicas = self.replicas_of(&rows);
                    Response::Resolved { rows, hints: self.route_hints(hints_since), replicas }
                }
                Err(e) => Response::Err(e),
            },
            Request::LocateAcgs => {
                let mut rows: Vec<(AcgId, Vec<NodeId>)> =
                    self.acg_replicas.iter().map(|(&a, n)| (a, n.clone())).collect();
                rows.sort();
                Response::Located(rows)
            }
            Request::CreateIndex { spec } => {
                if self.index_specs.iter().any(|s| s.name == spec.name) {
                    return Response::Err(Error::IndexExists(spec.name));
                }
                self.index_specs.push(spec);
                Response::Ok
            }
            Request::DropIndex { name } => {
                // Idempotent: rolling back a registration that partially
                // propagated must always succeed.
                self.index_specs.retain(|s| s.name != name);
                Response::Ok
            }
            Request::Heartbeat { node, acgs, now } => {
                self.on_heartbeat(node, acgs, now);
                Response::Ok
            }
            Request::TakeSplitWork => {
                let work = std::mem::take(&mut self.pending_splits);
                Response::SplitWork(work)
            }
            Request::AllocateAcg => match self.allocate_acg() {
                Ok((acg, nodes)) => Response::AcgAllocated(acg, nodes),
                Err(e) => Response::Err(e),
            },
            Request::BindFiles { acg, files } => {
                if !self.acg_replicas.contains_key(&acg) {
                    return Response::Err(Error::AcgNotFound(acg));
                }
                let mut added = 0;
                for file in files {
                    let old = self.file_to_acg.insert(file, acg);
                    if old != Some(acg) {
                        added += 1;
                        if let Some(old_acg) = old {
                            if let Some(c) = self.acg_files.get_mut(&old_acg) {
                                *c = c.saturating_sub(1);
                            }
                        }
                    }
                }
                *self.acg_files.entry(acg).or_insert(0) += added;
                Response::Ok
            }
            Request::CommitSplit { acg, kept, new_acg, moved, targets } => {
                for file in &moved {
                    self.file_to_acg.insert(*file, new_acg);
                }
                self.acg_replicas.insert(new_acg, targets);
                self.acg_files.insert(new_acg, moved.len());
                self.acg_files.insert(acg, kept.len());
                self.splitting.remove(&acg);
                // Record the move for eager client-side route
                // invalidation: the next resolve from each client carries
                // these files as hints, so the client drops the stale
                // routes before they can earn a StaleRoute rejection.
                self.routing_gen += 1;
                self.split_log.push_back((self.routing_gen, moved));
                while self.split_log.len() > self.config.split_log_capacity.max(1) {
                    self.split_log.pop_front();
                }
                self.flush_metadata();
                Response::Ok
            }
            other => Response::Err(Error::Rpc(format!("master cannot handle {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId::new).collect()
    }

    fn master(n: u32, capacity: usize) -> MasterNode {
        MasterNode::new(
            nodes(n),
            MasterConfig { group_capacity: capacity, ..MasterConfig::default() },
        )
    }

    fn resolve(
        m: &mut MasterNode,
        ids: impl IntoIterator<Item = u64>,
    ) -> Vec<(FileId, AcgId, NodeId)> {
        match m.handle(Request::ResolveFiles {
            files: ids.into_iter().map(FileId::new).collect(),
            hints_since: 0,
        }) {
            Response::Resolved { rows, .. } => rows,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolution_is_stable() {
        let mut m = master(4, 100);
        let first = resolve(&mut m, [1, 2, 3]);
        let second = resolve(&mut m, [1, 2, 3]);
        assert_eq!(first, second);
    }

    #[test]
    fn open_acg_rolls_over_at_capacity() {
        let mut m = master(2, 10);
        let rows = resolve(&mut m, 0..25);
        let acgs: std::collections::HashSet<AcgId> = rows.iter().map(|(_, a, _)| *a).collect();
        assert_eq!(acgs.len(), 3, "25 files / 10 capacity = 3 ACGs");
    }

    #[test]
    fn allocation_prefers_least_loaded_node() {
        let mut m = master(2, 5);
        // Fill several ACGs; placements should alternate as load grows.
        resolve(&mut m, 0..20);
        let located = match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => rows,
            other => panic!("{other:?}"),
        };
        let on_n1 = located.iter().filter(|(_, n)| n[0].raw() == 1).count();
        let on_n2 = located.iter().filter(|(_, n)| n[0].raw() == 2).count();
        assert_eq!(on_n1 + on_n2, 4);
        assert!(on_n1 >= 1 && on_n2 >= 1, "both nodes get ACGs");
    }

    #[test]
    fn heartbeat_marks_oversized_acgs_for_split() {
        let mut m = master(2, 1000);
        m.config.split_threshold = 50;
        resolve(&mut m, 0..10);
        let acg = *m.file_to_acg.get(&FileId::new(0)).unwrap();
        let node = m.acg_replicas.get(&acg).unwrap()[0];
        m.handle(Request::Heartbeat {
            node,
            acgs: vec![AcgSummary { acg, files: 60, pending_ops: 0 }],
            now: Timestamp::from_secs(1),
        });
        match m.handle(Request::TakeSplitWork) {
            Response::SplitWork(work) => assert_eq!(work, vec![(acg, node)]),
            other => panic!("{other:?}"),
        }
        // Re-heartbeating while the split is in flight must not re-queue.
        m.handle(Request::Heartbeat {
            node,
            acgs: vec![AcgSummary { acg, files: 60, pending_ops: 0 }],
            now: Timestamp::from_secs(2),
        });
        match m.handle(Request::TakeSplitWork) {
            Response::SplitWork(work) => assert!(work.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn commit_split_remaps_files() {
        let mut m = master(2, 1000);
        let rows = resolve(&mut m, 0..10);
        let acg = rows[0].1;
        let (new_acg, targets) = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, n) => (a, n),
            other => panic!("{other:?}"),
        };
        let moved: Vec<FileId> = (5..10).map(FileId::new).collect();
        let kept: Vec<FileId> = (0..5).map(FileId::new).collect();
        m.handle(Request::CommitSplit {
            acg,
            kept: kept.clone(),
            new_acg,
            moved: moved.clone(),
            targets: targets.clone(),
        });
        let after = resolve(&mut m, 0..10);
        for (file, a, n) in after {
            if file.raw() < 5 {
                assert_eq!(a, acg);
            } else {
                assert_eq!(a, new_acg);
                assert_eq!(n, targets[0]);
            }
        }
    }

    #[test]
    fn bind_files_moves_mappings() {
        let mut m = master(1, 1000);
        resolve(&mut m, 0..4);
        let acg = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, _) => a,
            other => panic!("{other:?}"),
        };
        m.handle(Request::BindFiles { acg, files: vec![FileId::new(2), FileId::new(3)] });
        let rows = resolve(&mut m, [2, 3]);
        assert!(rows.iter().all(|(_, a, _)| *a == acg));
    }

    fn commit_a_split(m: &mut MasterNode, moved: Vec<FileId>) {
        let acg = *m.file_to_acg.get(&moved[0]).unwrap();
        let (new_acg, targets) = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, n) => (a, n),
            other => panic!("{other:?}"),
        };
        m.handle(Request::CommitSplit { acg, kept: Vec::new(), new_acg, moved, targets });
    }

    #[test]
    fn resolve_carries_route_hints_for_committed_splits() {
        let mut m = master(2, 1000);
        resolve(&mut m, 0..10);
        // A client at generation 0 resolving before any split: no hints.
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: 0 }) {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints, RouteHints { upto: 0, moved: vec![], complete: true });
            }
            other => panic!("{other:?}"),
        }
        commit_a_split(&mut m, vec![FileId::new(5), FileId::new(6)]);
        commit_a_split(&mut m, vec![FileId::new(7)]);
        // A client still at generation 0 hears about both splits...
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: 0 }) {
            Response::Resolved { hints, .. } => {
                assert!(hints.complete);
                assert_eq!(hints.upto, 2);
                assert_eq!(hints.moved, vec![FileId::new(5), FileId::new(6), FileId::new(7)]);
            }
            other => panic!("{other:?}"),
        }
        // ...a client that already applied generation 1 only the second...
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: 1 }) {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints.moved, vec![FileId::new(7)]);
            }
            other => panic!("{other:?}"),
        }
        // ...and an up-to-date client nothing.
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: 2 }) {
            Response::Resolved { hints, .. } => assert!(hints.moved.is_empty() && hints.complete),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn route_hints_past_the_bounded_log_are_incomplete() {
        let mut m = MasterNode::new(
            nodes(2),
            MasterConfig { split_log_capacity: 2, ..MasterConfig::default() },
        );
        resolve(&mut m, 0..10);
        for f in [1u64, 2, 3] {
            commit_a_split(&mut m, vec![FileId::new(f)]);
        }
        // Generation 1 fell off the 2-deep log: the client can't know
        // which routes it missed and must clear its cache.
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: 0 }) {
            Response::Resolved { hints, .. } => {
                assert!(!hints.complete);
                assert_eq!(hints.upto, 3);
                assert!(hints.moved.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // A client only one generation behind is still covered.
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: 2 }) {
            Response::Resolved { hints, .. } => {
                assert!(hints.complete);
                assert_eq!(hints.moved, vec![FileId::new(3)]);
            }
            other => panic!("{other:?}"),
        }
        // A hintless caller (`u64::MAX` — empty cache, nothing to
        // invalidate) costs no log walk and still learns the current
        // generation to sync to.
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(0)], hints_since: u64::MAX })
        {
            Response::Resolved { hints, .. } => {
                assert_eq!(hints, RouteHints { upto: 3, moved: vec![], complete: true });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_index_nodes_is_a_config_error() {
        let mut m = MasterNode::new(vec![], MasterConfig::default());
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(1)], hints_since: 0 }) {
            Response::Err(Error::Config(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metadata_flush_and_reload() {
        let shared = Arc::new(SharedStorage::new());
        let mut m = MasterNode::new(
            nodes(2),
            MasterConfig { flush_every_heartbeats: 1, ..MasterConfig::default() },
        )
        .with_shared_storage(shared.clone());
        resolve(&mut m, 0..50);
        m.handle(Request::Heartbeat {
            node: NodeId::new(1),
            acgs: vec![],
            now: Timestamp::from_secs(1),
        });
        let blob = shared.get_blob("master/file_to_acg").expect("flushed");
        let mut fresh = MasterNode::new(nodes(2), MasterConfig::default());
        let loaded = fresh.load_metadata(&blob).unwrap();
        assert_eq!(loaded, 50);
        assert_eq!(fresh.file_to_acg.get(&FileId::new(7)), m.file_to_acg.get(&FileId::new(7)));
    }

    #[test]
    fn corrupt_metadata_rejected() {
        let mut m = master(1, 10);
        assert!(m.load_metadata(&[1, 2, 3]).is_err());
        let mut blob = vec![0u8; 8];
        blob[0] = 200; // claims 200 rows, provides none
        assert!(m.load_metadata(&blob).is_err());
    }

    #[test]
    fn node_status_alive_tracking() {
        let mut m = master(2, 10);
        m.handle(Request::Heartbeat {
            node: NodeId::new(1),
            acgs: vec![],
            now: Timestamp::from_secs(10),
        });
        let status = m.node_status().get(&NodeId::new(1)).unwrap();
        assert!(status.alive(Timestamp::from_secs(12), Duration::from_secs(5)));
        assert!(!status.alive(Timestamp::from_secs(30), Duration::from_secs(5)));
    }

    #[test]
    fn replicated_placement_uses_distinct_nodes() {
        let mut m = MasterNode::new(
            nodes(4),
            MasterConfig { group_capacity: 5, replication: 2, ..MasterConfig::default() },
        );
        resolve(&mut m, 0..20);
        let located = match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(located.len(), 4);
        for (acg, replicas) in &located {
            assert_eq!(replicas.len(), 2, "{acg:?} must have 2 replicas");
            assert_ne!(replicas[0], replicas[1], "{acg:?} replicas must be distinct nodes");
        }
    }

    #[test]
    fn replication_is_clamped_to_the_cluster_size() {
        let mut m =
            MasterNode::new(nodes(2), MasterConfig { replication: 3, ..MasterConfig::default() });
        resolve(&mut m, 0..3);
        match m.handle(Request::LocateAcgs) {
            Response::Located(rows) => {
                assert!(rows.iter().all(|(_, r)| r.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resolve_reports_the_full_replica_set() {
        let mut m =
            MasterNode::new(nodes(3), MasterConfig { replication: 2, ..MasterConfig::default() });
        match m.handle(Request::ResolveFiles { files: vec![FileId::new(1)], hints_since: 0 }) {
            Response::Resolved { rows, replicas, .. } => {
                assert_eq!(rows.len(), 1);
                let (_, acg, primary) = rows[0];
                let set = &replicas.iter().find(|(a, _)| *a == acg).expect("replica row").1;
                assert_eq!(set.len(), 2);
                assert_eq!(set[0], primary, "the resolved node is the primary");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_commit_installs_the_whole_target_replica_set() {
        let mut m =
            MasterNode::new(nodes(3), MasterConfig { replication: 2, ..MasterConfig::default() });
        resolve(&mut m, 0..10);
        let acg = *m.file_to_acg.get(&FileId::new(0)).unwrap();
        let (new_acg, targets) = match m.handle(Request::AllocateAcg) {
            Response::AcgAllocated(a, n) => (a, n),
            other => panic!("{other:?}"),
        };
        assert_eq!(targets.len(), 2);
        m.handle(Request::CommitSplit {
            acg,
            kept: (0..5).map(FileId::new).collect(),
            new_acg,
            moved: (5..10).map(FileId::new).collect(),
            targets: targets.clone(),
        });
        assert_eq!(m.acg_replicas.get(&new_acg), Some(&targets));
    }

    #[test]
    fn heartbeats_rebuild_replica_sets_after_a_master_restart() {
        let mut m = MasterNode::new(nodes(3), MasterConfig::default());
        let acg = AcgId::new(7);
        for node in [NodeId::new(2), NodeId::new(3)] {
            m.handle(Request::Heartbeat {
                node,
                acgs: vec![AcgSummary { acg, files: 4, pending_ops: 0 }],
                now: Timestamp::from_secs(1),
            });
        }
        assert_eq!(m.acg_replicas.get(&acg), Some(&vec![NodeId::new(2), NodeId::new(3)]));
        assert!(m.next_acg > 7);
    }

    #[test]
    fn duplicate_index_name_rejected_at_master() {
        let mut m = master(1, 10);
        let spec = IndexSpec::btree("uid_idx", propeller_types::AttrName::Uid);
        assert!(matches!(m.handle(Request::CreateIndex { spec: spec.clone() }), Response::Ok));
        assert!(matches!(
            m.handle(Request::CreateIndex { spec }),
            Response::Err(Error::IndexExists(_))
        ));
    }
}
