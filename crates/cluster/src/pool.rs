//! A persistent worker pool for intra-node search parallelism.
//!
//! Before this pool, every multi-ACG search spawned a fresh set of scoped
//! threads (`std::thread::scope`) and tore them down again — measurable
//! per-search overhead at high QPS. An [`IndexNode`](crate::IndexNode) now
//! owns one `WorkerPool`, created once from its configured
//! `search_parallelism` and reused across every search it serves.
//!
//! Design notes:
//!
//! * **Lazy spawn** — worker threads start on the first batch that needs
//!   them, so single-ACG nodes, `search_parallelism: 1` configs and the
//!   many short-lived nodes of simulated clusters never pay for idle
//!   threads.
//! * **Caller participation** — [`WorkerPool::run`] executes jobs on the
//!   calling (actor) thread too, so a pool of width `w` applies exactly
//!   `w` execution streams, matching the semantics of the scoped pool it
//!   replaces.
//! * **Shared queue** — jobs are pulled off one queue as workers free up
//!   (cheap dynamic load balancing: ACG sizes are skewed, so static
//!   striping would leave workers idle behind one big group).
//! * **Panic isolation** — a panicking job is caught on the worker,
//!   reported back, and re-raised on the caller; the worker itself
//!   survives for the next search.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// A queued unit of work: type-erased, result delivery captured inside.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The two job lanes shared between submitting threads and the workers.
///
/// `batch` holds the subjobs of a [`WorkerPool::run`] call; `detached`
/// holds fire-and-forget [`WorkerPool::submit`] jobs (whole searches with
/// the reply captured inside). They are separate lanes on purpose: a
/// detached search job may itself call `run` for its per-ACG scans, and
/// the helping loop inside `run` must only ever execute *batch* subjobs —
/// picking up another whole search there would nest searches and inflate
/// the outer one's latency unboundedly.
struct Queues {
    batch: VecDeque<Job>,
    detached: VecDeque<Job>,
}

struct Shared {
    queue: Mutex<Queues>,
    /// Signalled when jobs arrive or shutdown begins.
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Queues> {
        // Jobs run under `catch_unwind`, so a poisoned queue can only come
        // from a panic in the pool's own bookkeeping; recover rather than
        // cascade.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The spawned half of the pool (created on first use).
struct PoolInner {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl PoolInner {
    fn spawn(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queues { batch: VecDeque::new(), detached: VecDeque::new() }),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("propeller-search-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn search worker")
            })
            .collect();
        PoolInner { shared, handles }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queues = shared.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Batch subjobs first: they are the inner stages of
                // already-running searches, so finishing them unblocks a
                // waiting `run` caller; detached jobs are brand-new work.
                if let Some(job) = queues.batch.pop_front().or_else(|| queues.detached.pop_front())
                {
                    break job;
                }
                queues = shared.available.wait(queues).unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
    }
}

/// A persistent, lazily-spawned worker pool of fixed width.
///
/// `width` is the total number of concurrent execution streams a
/// [`WorkerPool::run`] call uses — `width - 1` pooled threads plus the
/// calling thread. A width of 0 or 1 degrades to inline sequential
/// execution (no threads are ever spawned).
pub struct WorkerPool {
    width: usize,
    inner: OnceLock<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .field("spawned", &self.inner.get().is_some())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of the given width. No threads are spawned until the first
    /// [`WorkerPool::run`] that can use them.
    pub fn new(width: usize) -> Self {
        WorkerPool { width: width.max(1), inner: OnceLock::new() }
    }

    /// The configured width (total concurrent execution streams).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Spawns the worker threads on first use. `run` on a width-1 pool
    /// never calls this (it stays inline); `submit` always needs at least
    /// one worker, so even a width-1 pool spawns one for its detached
    /// lane.
    fn spawned(&self) -> &PoolInner {
        self.inner.get_or_init(|| PoolInner::spawn(self.width.max(2) - 1))
    }

    /// Enqueues a fire-and-forget job (result delivery captured inside)
    /// and returns immediately — the submitting thread never blocks. Jobs
    /// run on the pool's workers in submission order as they free up; a
    /// panicking job is swallowed by the worker (the job owns its reply
    /// channel, so its caller observes a dropped reply, not a crash).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let inner = self.spawned();
        inner.shared.lock().detached.push_back(Box::new(move || {
            let _ = catch_unwind(AssertUnwindSafe(job));
        }));
        inner.shared.available.notify_one();
    }

    /// Runs `jobs` across the pool, returning their results **in job
    /// order**. Blocks until every job finished. With a single job or a
    /// width of 1 the jobs run inline on the caller; otherwise the caller
    /// participates as one of the `width` execution streams, pulling from
    /// the same queue as the workers.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic on the caller) if any job panicked.
    pub fn run<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        if self.width <= 1 || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let inner = self.spawned();
        let total = jobs.len();
        let (tx, rx) = std::sync::mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut queues = inner.shared.lock();
            for (i, job) in jobs.into_iter().enumerate() {
                let tx: Sender<(usize, std::thread::Result<T>)> = tx.clone();
                queues.batch.push_back(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    // The receiver only disappears if the caller panicked
                    // out of the collection loop; nothing left to report.
                    let _ = tx.send((i, result));
                }));
            }
        }
        drop(tx);
        inner.shared.available.notify_all();
        // The caller is one of the execution streams: drain *batch*
        // subjobs from the shared queue until it runs dry (other batches'
        // subjobs included — helping is always sound, the closures are
        // self-contained; detached whole-search jobs are never picked up
        // here, see `Queues`).
        loop {
            let job = inner.shared.lock().batch.pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        let mut results: Vec<Option<T>> = (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (i, result) = rx.recv().expect("search worker died before finishing its job");
            match result {
                Ok(value) => results[i] = Some(value),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results.into_iter().map(|r| r.expect("every job reported")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.shared.shutdown.store(true, Ordering::Release);
            inner.shared.available.notify_all();
            // The pool is shared with detached jobs (`submit` closures own
            // an `Arc<WorkerPool>`), so the last drop can happen *on a
            // worker thread* — when the owning node shuts down while a
            // search job is still in flight. Joining our own handle would
            // deadlock (EDEADLK); detach it instead — the shutdown flag is
            // set, so it exits right after this drop returns.
            let me = std::thread::current().id();
            for handle in inner.handles {
                if handle.thread().id() == me {
                    drop(handle);
                } else {
                    let _ = handle.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Uneven work so completion order scrambles.
                    std::thread::sleep(std::time::Duration::from_micros((64 - i as u64) * 10));
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run(jobs);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn width_one_runs_inline_without_spawning() {
        let pool = WorkerPool::new(1);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..8usize).map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>).collect();
        assert_eq!(pool.run(jobs), (0..8).collect::<Vec<_>>());
        assert!(pool.inner.get().is_none(), "width 1 must never spawn threads");
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..10usize {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| Box::new(move || round + i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let results = pool.run(jobs);
            assert_eq!(results, (0..16).map(|i| round + i).collect::<Vec<_>>());
        }
        assert_eq!(pool.inner.get().expect("spawned").handles.len(), 2, "width - 1 workers");
    }

    #[test]
    fn job_panic_propagates_but_pool_survives() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)));
        assert!(caught.is_err(), "the job panic must reach the caller");
        // The pool still serves the next batch.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..4usize).map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>).collect();
        assert_eq!(pool.run(jobs), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(8);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = Vec::new();
        assert!(pool.run(jobs).is_empty());
        assert!(pool.inner.get().is_none());
    }
}
