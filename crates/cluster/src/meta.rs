//! Control-plane durability: the Master's WAL codec and checkpoints.
//!
//! The Master is a state machine over a small set of typed transitions —
//! file placement, ACG creation, split/migration commits, replica
//! adoption, index-spec registry changes. This module gives those
//! transitions the same durability discipline the data plane already has
//! (`propeller_index::{Wal, snapshot}`): every transition is encoded as a
//! CRC-framed WAL record and fsynced **before** the Master acks it, and a
//! periodic checksummed snapshot of the full metadata image bounds replay
//! to an O(delta) WAL suffix.
//!
//! ## On-disk layout (under `<data_dir>/master/`)
//!
//! ```text
//! meta.wal            the control-plane WAL (propeller_index::Wal framing)
//! meta-<lsn>.snap :=
//!   [magic "PMET" 4][version u32 LE][payload_crc u32 LE][payload_len u64 LE]
//!   payload := the full MetaImage (see `MetaImage::encode`)
//! ```
//!
//! Retention mirrors the data plane's two-checkpoint rule: the newest two
//! snapshots are kept, older ones are deleted, and the WAL is truncated to
//! the suffix after the *older* kept snapshot — so even a torn newest
//! snapshot still recovers from the previous one plus replay.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};
use propeller_index::snapshot::{decode_spec_from, encode_spec_into};
use propeller_index::{crc32, IndexSpec, Wal};
use propeller_types::{AcgId, Error, FileId, NodeId, Result};

/// Magic prefix of a Master metadata snapshot file.
const MAGIC: [u8; 4] = *b"PMET";
/// On-disk format version of the metadata snapshot payload.
const VERSION: u32 = 1;
/// Fixed header: magic + version + payload CRC + payload length.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;
/// How many metadata checkpoints to retain (newest first).
const KEEP_SNAPSHOTS: usize = 2;

/// One durable Master state transition. Every mutation of hard Master
/// state is expressed as (a batch of) these, logged before the ack; soft
/// state — liveness, heartbeat freshness, split *pressure* — is never
/// logged because a restarted Master re-learns it from the next heartbeat
/// round.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MetaOp {
    /// Files were placed into ACGs (fresh `resolve` assignments and
    /// explicit `BindFiles` calls).
    PlaceFiles {
        /// `(file, acg)` pairs, already deduplicated by the caller.
        placements: Vec<(FileId, AcgId)>,
    },
    /// A new ACG id was minted and bound to a replica set. `open` marks it
    /// as the Master's current fill target.
    CreateAcg {
        /// The new group.
        acg: AcgId,
        /// Its replica set (primary first).
        replicas: Vec<NodeId>,
        /// Whether this group became the open fill target.
        open: bool,
    },
    /// A split/migration finished: `moved` files now live in `new_acg` on
    /// `targets`, and the routing generation advanced by one.
    CommitSplit {
        /// The source group.
        acg: AcgId,
        /// The group the moved files now live in.
        new_acg: AcgId,
        /// The files that moved.
        moved: Vec<FileId>,
        /// Replica set of the new group.
        targets: Vec<NodeId>,
    },
    /// A heartbeat revealed a recovered replica of `acg` on `node` that
    /// the placement map did not know about (node-local recovery).
    AdoptReplica {
        /// The adopted group.
        acg: AcgId,
        /// The node that reported hosting it.
        node: NodeId,
    },
    /// A cluster-wide named index was registered.
    CreateIndexSpec {
        /// The spec, exactly as broadcast to Index Nodes.
        spec: IndexSpec,
    },
    /// A cluster-wide named index was dropped.
    DropIndexSpec {
        /// The dropped index's name.
        name: String,
    },
    /// Phase one of a migration: `moved` files of `source` are bound for
    /// the freshly minted (but not yet routable) `new_acg` on `targets`.
    BeginMigration {
        /// The source group being carved.
        source: AcgId,
        /// The reserved id of the new group.
        new_acg: AcgId,
        /// The files being carved out.
        moved: Vec<FileId>,
        /// The replica set the part is being installed on.
        targets: Vec<NodeId>,
    },
    /// Every target durably installed the part of migration `new_acg`;
    /// the source's copy may now be removed.
    InstallAcked {
        /// The migration's new-group id.
        new_acg: AcgId,
    },
}

/// An in-flight two-phase migration, exactly as the Master persists it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Migration {
    /// The group the part is being carved out of.
    pub source: AcgId,
    /// The reserved id of the new group (not routable until commit).
    pub new_acg: AcgId,
    /// The files being moved.
    pub moved: Vec<FileId>,
    /// The replica set the part is installed on.
    pub targets: Vec<NodeId>,
    /// Whether every target's Install was durably acked — once true, the
    /// source's retained copy may be removed; until then it must not be.
    pub installed: bool,
}

/// A full image of the Master's hard state — everything a checkpoint must
/// capture for recovery to be snapshot + O(delta) suffix replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct MetaImage {
    /// The next ACG id to mint.
    pub next_acg: u64,
    /// The routing generation (monotone across restarts — satellite fix).
    pub routing_gen: u64,
    /// The current open fill target, if any.
    pub open_acg: Option<AcgId>,
    /// The authoritative `file → acg` map.
    pub file_to_acg: Vec<(FileId, AcgId)>,
    /// Placement: each ACG's replica set (primary first).
    pub acg_replicas: Vec<(AcgId, Vec<NodeId>)>,
    /// The cluster-wide named-index registry.
    pub specs: Vec<IndexSpec>,
    /// The recent-splits log backing `RouteHints` (gen, moved files).
    pub split_log: Vec<(u64, Vec<FileId>)>,
    /// In-flight two-phase migrations keyed implicitly by `new_acg`.
    pub migrations: Vec<Migration>,
}

// ---------------------------------------------------------------- codec --

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn need(data: &[u8], n: usize) -> Result<()> {
    if data.len() < n {
        Err(Error::Corrupt(format!("truncated meta frame: need {n} bytes, have {}", data.len())))
    } else {
        Ok(())
    }
}

fn take_u8(data: &mut &[u8]) -> Result<u8> {
    need(data, 1)?;
    Ok(data.get_u8())
}

fn take_u32(data: &mut &[u8]) -> Result<u32> {
    need(data, 4)?;
    Ok(data.get_u32_le())
}

fn take_u64(data: &mut &[u8]) -> Result<u64> {
    need(data, 8)?;
    Ok(data.get_u64_le())
}

fn take_str(data: &mut &[u8]) -> Result<String> {
    let len = take_u32(data)? as usize;
    need(data, len)?;
    let (s, rest) = data.split_at(len);
    let out = String::from_utf8(s.to_vec())
        .map_err(|e| Error::Corrupt(format!("invalid utf-8 in meta frame: {e}")))?;
    *data = rest;
    Ok(out)
}

fn put_files(buf: &mut BytesMut, files: &[FileId]) {
    buf.put_u32_le(files.len() as u32);
    for f in files {
        buf.put_u64_le(f.raw());
    }
}

fn take_files(data: &mut &[u8]) -> Result<Vec<FileId>> {
    let n = take_u32(data)? as usize;
    let mut files = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        files.push(FileId::new(take_u64(data)?));
    }
    Ok(files)
}

fn put_nodes(buf: &mut BytesMut, nodes: &[NodeId]) {
    buf.put_u32_le(nodes.len() as u32);
    for n in nodes {
        buf.put_u32_le(n.raw());
    }
}

fn take_nodes(data: &mut &[u8]) -> Result<Vec<NodeId>> {
    let n = take_u32(data)? as usize;
    let mut nodes = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        nodes.push(NodeId::new(take_u32(data)?));
    }
    Ok(nodes)
}

impl MetaOp {
    /// Encodes the op as one WAL frame payload (the WAL adds LSN + CRC).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            MetaOp::PlaceFiles { placements } => {
                buf.put_u8(1);
                buf.put_u32_le(placements.len() as u32);
                for (file, acg) in placements {
                    buf.put_u64_le(file.raw());
                    buf.put_u64_le(acg.raw());
                }
            }
            MetaOp::CreateAcg { acg, replicas, open } => {
                buf.put_u8(2);
                buf.put_u64_le(acg.raw());
                buf.put_u8(u8::from(*open));
                put_nodes(&mut buf, replicas);
            }
            MetaOp::CommitSplit { acg, new_acg, moved, targets } => {
                buf.put_u8(3);
                buf.put_u64_le(acg.raw());
                buf.put_u64_le(new_acg.raw());
                put_nodes(&mut buf, targets);
                put_files(&mut buf, moved);
            }
            MetaOp::AdoptReplica { acg, node } => {
                buf.put_u8(4);
                buf.put_u64_le(acg.raw());
                buf.put_u32_le(node.raw());
            }
            MetaOp::CreateIndexSpec { spec } => {
                buf.put_u8(5);
                encode_spec_into(&mut buf, spec);
            }
            MetaOp::DropIndexSpec { name } => {
                buf.put_u8(6);
                put_str(&mut buf, name);
            }
            MetaOp::BeginMigration { source, new_acg, moved, targets } => {
                buf.put_u8(7);
                buf.put_u64_le(source.raw());
                buf.put_u64_le(new_acg.raw());
                put_nodes(&mut buf, targets);
                put_files(&mut buf, moved);
            }
            MetaOp::InstallAcked { new_acg } => {
                buf.put_u8(8);
                buf.put_u64_le(new_acg.raw());
            }
        }
        buf.to_vec()
    }

    /// Decodes a frame written by [`MetaOp::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on an unknown tag, truncation, or
    /// trailing bytes.
    pub(crate) fn decode(mut data: &[u8]) -> Result<Self> {
        let cursor = &mut data;
        let op = match take_u8(cursor)? {
            1 => {
                let n = take_u32(cursor)? as usize;
                let mut placements = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let file = FileId::new(take_u64(cursor)?);
                    let acg = AcgId::new(take_u64(cursor)?);
                    placements.push((file, acg));
                }
                MetaOp::PlaceFiles { placements }
            }
            2 => {
                let acg = AcgId::new(take_u64(cursor)?);
                let open = take_u8(cursor)? != 0;
                let replicas = take_nodes(cursor)?;
                MetaOp::CreateAcg { acg, replicas, open }
            }
            3 => {
                let acg = AcgId::new(take_u64(cursor)?);
                let new_acg = AcgId::new(take_u64(cursor)?);
                let targets = take_nodes(cursor)?;
                let moved = take_files(cursor)?;
                MetaOp::CommitSplit { acg, new_acg, moved, targets }
            }
            4 => {
                let acg = AcgId::new(take_u64(cursor)?);
                let node = NodeId::new(take_u32(cursor)?);
                MetaOp::AdoptReplica { acg, node }
            }
            5 => MetaOp::CreateIndexSpec { spec: decode_spec_from(cursor)? },
            6 => MetaOp::DropIndexSpec { name: take_str(cursor)? },
            7 => {
                let source = AcgId::new(take_u64(cursor)?);
                let new_acg = AcgId::new(take_u64(cursor)?);
                let targets = take_nodes(cursor)?;
                let moved = take_files(cursor)?;
                MetaOp::BeginMigration { source, new_acg, moved, targets }
            }
            8 => MetaOp::InstallAcked { new_acg: AcgId::new(take_u64(cursor)?) },
            other => return Err(Error::Corrupt(format!("unknown meta op tag {other}"))),
        };
        if !cursor.is_empty() {
            return Err(Error::Corrupt(format!("{} trailing bytes in meta frame", cursor.len())));
        }
        Ok(op)
    }
}

impl MetaImage {
    fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.next_acg);
        buf.put_u64_le(self.routing_gen);
        buf.put_u64_le(self.open_acg.map_or(0, |a| a.raw()));
        buf.put_u64_le(self.file_to_acg.len() as u64);
        for (file, acg) in &self.file_to_acg {
            buf.put_u64_le(file.raw());
            buf.put_u64_le(acg.raw());
        }
        buf.put_u32_le(self.acg_replicas.len() as u32);
        for (acg, replicas) in &self.acg_replicas {
            buf.put_u64_le(acg.raw());
            put_nodes(&mut buf, replicas);
        }
        buf.put_u32_le(self.specs.len() as u32);
        for spec in &self.specs {
            encode_spec_into(&mut buf, spec);
        }
        buf.put_u32_le(self.split_log.len() as u32);
        for (gen, moved) in &self.split_log {
            buf.put_u64_le(*gen);
            put_files(&mut buf, moved);
        }
        buf.put_u32_le(self.migrations.len() as u32);
        for m in &self.migrations {
            buf.put_u64_le(m.source.raw());
            buf.put_u64_le(m.new_acg.raw());
            buf.put_u8(u8::from(m.installed));
            put_nodes(&mut buf, &m.targets);
            put_files(&mut buf, &m.moved);
        }
        buf
    }

    fn decode(mut data: &[u8]) -> Result<Self> {
        let cursor = &mut data;
        let next_acg = take_u64(cursor)?;
        let routing_gen = take_u64(cursor)?;
        let open_raw = take_u64(cursor)?;
        let open_acg = if open_raw == 0 { None } else { Some(AcgId::new(open_raw)) };
        let nfiles = take_u64(cursor)? as usize;
        let mut file_to_acg = Vec::with_capacity(nfiles.min(1 << 20));
        for _ in 0..nfiles {
            let file = FileId::new(take_u64(cursor)?);
            let acg = AcgId::new(take_u64(cursor)?);
            file_to_acg.push((file, acg));
        }
        let nacgs = take_u32(cursor)? as usize;
        let mut acg_replicas = Vec::with_capacity(nacgs.min(1 << 16));
        for _ in 0..nacgs {
            let acg = AcgId::new(take_u64(cursor)?);
            acg_replicas.push((acg, take_nodes(cursor)?));
        }
        let nspecs = take_u32(cursor)? as usize;
        let mut specs = Vec::with_capacity(nspecs.min(256));
        for _ in 0..nspecs {
            specs.push(decode_spec_from(cursor)?);
        }
        let nsplits = take_u32(cursor)? as usize;
        let mut split_log = Vec::with_capacity(nsplits.min(1 << 12));
        for _ in 0..nsplits {
            let gen = take_u64(cursor)?;
            split_log.push((gen, take_files(cursor)?));
        }
        let nmig = take_u32(cursor)? as usize;
        let mut migrations = Vec::with_capacity(nmig.min(1 << 10));
        for _ in 0..nmig {
            let source = AcgId::new(take_u64(cursor)?);
            let new_acg = AcgId::new(take_u64(cursor)?);
            let installed = take_u8(cursor)? != 0;
            let targets = take_nodes(cursor)?;
            let moved = take_files(cursor)?;
            migrations.push(Migration { source, new_acg, moved, targets, installed });
        }
        if !cursor.is_empty() {
            return Err(Error::Corrupt(format!("{} trailing bytes in meta image", cursor.len())));
        }
        Ok(MetaImage {
            next_acg,
            routing_gen,
            open_acg,
            file_to_acg,
            acg_replicas,
            specs,
            split_log,
            migrations,
        })
    }
}

// ------------------------------------------------------------- the store --

/// The canonical file name of a Master metadata checkpoint covering `lsn`.
fn meta_snapshot_name(lsn: u64) -> String {
    format!("meta-{lsn}.snap")
}

fn parse_meta_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("meta-")?.strip_suffix(".snap")?.parse().ok()
}

/// Metadata checkpoints under `dir`, newest (highest LSN) first.
fn list_meta_snapshots(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else { return found };
    for entry in entries.flatten() {
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_meta_snapshot_name) {
            found.push((lsn, entry.path()));
        }
    }
    found.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    found
}

fn read_meta_snapshot(path: &Path) -> Result<(u64, MetaImage)> {
    let corrupt =
        |reason: String| Error::SnapshotCorrupt { path: path.display().to_string(), reason };
    let raw = fs::read(path)?;
    if raw.len() < HEADER_LEN || raw[0..4] != MAGIC {
        return Err(corrupt("missing or truncated header".into()));
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let crc = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(raw[12..20].try_into().expect("8 bytes")) as usize;
    let payload = &raw[HEADER_LEN..];
    if payload.len() != len {
        return Err(corrupt(format!("payload is {} bytes, header promised {len}", payload.len())));
    }
    if crc32(payload) != crc {
        return Err(corrupt("payload crc mismatch".into()));
    }
    let image = MetaImage::decode(payload).map_err(|e| corrupt(e.to_string()))?;
    let lsn = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_meta_snapshot_name)
        .ok_or_else(|| corrupt("unparsable file name".into()))?;
    Ok((lsn, image))
}

/// What recovery found on disk: the newest valid checkpoint image (if
/// any) plus the WAL suffix to replay on top of it, in LSN order.
#[derive(Debug, Default)]
pub(crate) struct MetaRecovery {
    /// The checkpoint image, or `None` for a full-WAL replay.
    pub image: Option<MetaImage>,
    /// Ops after the checkpoint, to apply in order.
    pub suffix: Vec<MetaOp>,
}

/// The Master's durable metadata store: a control-plane WAL plus
/// two-checkpoint snapshot retention under `<data_dir>/master/`.
#[derive(Debug)]
pub(crate) struct MetaStore {
    dir: PathBuf,
    wal: Wal,
    /// Ops appended since the last checkpoint; drives `checkpoint_due`.
    ops_since_snapshot: usize,
    /// Checkpoint after this many logged ops.
    snapshot_every: usize,
}

impl MetaStore {
    /// Opens (or creates) the store under `dir` and recovers whatever the
    /// previous incarnation persisted: the newest **valid** checkpoint —
    /// corrupt ones are skipped, falling back to older files or a full
    /// replay — plus the decoded WAL suffix after it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the directory or WAL cannot be opened
    /// and [`Error::Corrupt`] when a WAL suffix frame fails to decode.
    pub(crate) fn open(dir: &Path, snapshot_every: usize) -> Result<(Self, MetaRecovery)> {
        fs::create_dir_all(dir)?;
        let mut wal = Wal::open(dir.join("meta.wal"))?;
        let mut image: Option<MetaImage> = None;
        let mut base_lsn = 0u64;
        for (_, path) in list_meta_snapshots(dir) {
            match read_meta_snapshot(&path) {
                Ok((lsn, img)) => {
                    image = Some(img);
                    base_lsn = lsn;
                    break;
                }
                Err(_) => continue, // torn/corrupt: fall back to older
            }
        }
        let mut suffix = Vec::new();
        for (_, frame) in wal.replay_from(base_lsn)? {
            suffix.push(MetaOp::decode(&frame)?);
        }
        let store = MetaStore {
            dir: dir.to_path_buf(),
            wal,
            ops_since_snapshot: suffix.len(),
            snapshot_every,
        };
        Ok((store, MetaRecovery { image, suffix }))
    }

    /// An ephemeral store for memory-only Masters: logging is a no-op-cost
    /// in-memory append and checkpoints never trigger.
    pub(crate) fn in_memory() -> Self {
        MetaStore {
            dir: PathBuf::new(),
            wal: Wal::in_memory(),
            ops_since_snapshot: 0,
            snapshot_every: usize::MAX,
        }
    }

    /// Appends `ops` as individual frames and makes them durable. The
    /// caller must **roll back** its in-memory mutation if this errors —
    /// an unlogged transition must not be acked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the append or fsync fails.
    pub(crate) fn log(&mut self, ops: &[MetaOp]) -> Result<()> {
        for op in ops {
            self.wal.append(&op.encode())?;
        }
        self.wal.sync()?;
        self.ops_since_snapshot += ops.len();
        Ok(())
    }

    /// Whether enough ops accumulated since the last checkpoint that the
    /// Master should cut a new one.
    pub(crate) fn checkpoint_due(&self) -> bool {
        self.ops_since_snapshot >= self.snapshot_every && self.wal.is_durable()
    }

    /// Writes a checkpoint of `image` covering every logged op, prunes to
    /// the newest [`KEEP_SNAPSHOTS`] files and truncates the WAL to the
    /// suffix after the *older* retained checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on file-system failure; the WAL is untouched
    /// in that case, so recovery is unaffected.
    pub(crate) fn checkpoint(&mut self, image: &MetaImage) -> Result<()> {
        if !self.wal.is_durable() {
            return Ok(());
        }
        let lsn = self.wal.last_lsn();
        let payload = image.encode();
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&crc32(&payload).to_le_bytes());
        header[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());

        let path = self.dir.join(meta_snapshot_name(lsn));
        let tmp = self.dir.join(format!("{}.tmp", meta_snapshot_name(lsn)));
        let write = (|| -> Result<()> {
            let mut out = File::create(&tmp)?;
            out.write_all(&header)?;
            out.write_all(&payload)?;
            out.sync_all()?;
            fs::rename(&tmp, &path)?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.ops_since_snapshot = 0;

        // Two-checkpoint retention + WAL truncation to the older kept LSN.
        let snaps = list_meta_snapshots(&self.dir);
        for (_, old) in snaps.iter().skip(KEEP_SNAPSHOTS) {
            let _ = fs::remove_file(old);
        }
        if let Some(&(keep_lsn, _)) = snaps.get(KEEP_SNAPSHOTS - 1).or_else(|| snaps.first()) {
            let _ = self.wal.truncate_upto(keep_lsn);
        }
        Ok(())
    }

    /// The number of live frames in the control-plane WAL (diagnostics).
    #[cfg(test)]
    pub(crate) fn entry_count(&self) -> u64 {
        self.wal.entry_count()
    }
}

/// Builds a `BTreeMap` view of `pairs` — a convenience for callers that
/// snapshot `HashMap` state into the deterministic image encoding.
pub(crate) fn sorted_pairs<K: Ord + Copy, V: Clone>(
    map: &std::collections::HashMap<K, V>,
) -> Vec<(K, V)> {
    let ordered: BTreeMap<K, V> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
    ordered.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_index::IndexKind;
    use propeller_types::AttrName;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("propeller-meta-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<MetaOp> {
        vec![
            MetaOp::CreateAcg {
                acg: AcgId::new(1),
                replicas: vec![NodeId::new(1), NodeId::new(2)],
                open: true,
            },
            MetaOp::PlaceFiles {
                placements: vec![(FileId::new(7), AcgId::new(1)), (FileId::new(8), AcgId::new(1))],
            },
            MetaOp::CreateIndexSpec {
                spec: IndexSpec {
                    name: "by-uid".into(),
                    kind: IndexKind::Hash,
                    attrs: vec![AttrName::Uid],
                },
            },
            MetaOp::BeginMigration {
                source: AcgId::new(1),
                new_acg: AcgId::new(2),
                moved: vec![FileId::new(8)],
                targets: vec![NodeId::new(2)],
            },
            MetaOp::InstallAcked { new_acg: AcgId::new(2) },
            MetaOp::CommitSplit {
                acg: AcgId::new(1),
                new_acg: AcgId::new(2),
                moved: vec![FileId::new(8)],
                targets: vec![NodeId::new(2)],
            },
            MetaOp::AdoptReplica { acg: AcgId::new(2), node: NodeId::new(3) },
            MetaOp::DropIndexSpec { name: "by-uid".into() },
        ]
    }

    #[test]
    fn meta_ops_round_trip() {
        for op in sample_ops() {
            let bytes = op.encode();
            assert_eq!(MetaOp::decode(&bytes).unwrap(), op, "round-trip of {op:?}");
        }
    }

    #[test]
    fn decode_rejects_unknown_tag_and_trailing_bytes() {
        assert!(MetaOp::decode(&[99]).is_err());
        let mut bytes = MetaOp::InstallAcked { new_acg: AcgId::new(1) }.encode();
        bytes.push(0);
        assert!(MetaOp::decode(&bytes).is_err());
    }

    #[test]
    fn image_round_trips() {
        let image = MetaImage {
            next_acg: 5,
            routing_gen: 3,
            open_acg: Some(AcgId::new(4)),
            file_to_acg: vec![(FileId::new(1), AcgId::new(1)), (FileId::new(2), AcgId::new(4))],
            acg_replicas: vec![
                (AcgId::new(1), vec![NodeId::new(1), NodeId::new(2)]),
                (AcgId::new(4), vec![NodeId::new(2)]),
            ],
            specs: vec![IndexSpec {
                name: "kw".into(),
                kind: IndexKind::Inverted,
                attrs: vec![AttrName::Keyword],
            }],
            split_log: vec![(1, vec![FileId::new(2)]), (2, vec![])],
            migrations: vec![Migration {
                source: AcgId::new(1),
                new_acg: AcgId::new(5),
                moved: vec![FileId::new(1)],
                targets: vec![NodeId::new(3)],
                installed: false,
            }],
        };
        let decoded = MetaImage::decode(&image.encode()).unwrap();
        assert_eq!(decoded, image);
    }

    #[test]
    fn store_recovers_logged_suffix_without_checkpoint() {
        let dir = temp_dir("suffix");
        {
            let (mut store, rec) = MetaStore::open(&dir, 1000).unwrap();
            assert!(rec.image.is_none() && rec.suffix.is_empty());
            store.log(&sample_ops()).unwrap();
        }
        let (_, rec) = MetaStore::open(&dir, 1000).unwrap();
        assert!(rec.image.is_none());
        assert_eq!(rec.suffix, sample_ops());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_and_prunes() {
        let dir = temp_dir("ckpt");
        let image = MetaImage { next_acg: 9, routing_gen: 2, ..Default::default() };
        {
            let (mut store, _) = MetaStore::open(&dir, 2).unwrap();
            store.log(&sample_ops()).unwrap();
            assert!(store.checkpoint_due());
            store.checkpoint(&image).unwrap();
            // Ops after the checkpoint become the replay suffix.
            store.log(&[MetaOp::InstallAcked { new_acg: AcgId::new(7) }]).unwrap();
            store.checkpoint(&image).unwrap();
            store.log(&[MetaOp::InstallAcked { new_acg: AcgId::new(8) }]).unwrap();
        }
        assert_eq!(list_meta_snapshots(&dir).len(), KEEP_SNAPSHOTS);
        let (store, rec) = MetaStore::open(&dir, 2).unwrap();
        assert_eq!(rec.image, Some(image));
        assert_eq!(rec.suffix, vec![MetaOp::InstallAcked { new_acg: AcgId::new(8) }]);
        // The WAL was truncated to the suffix after the older checkpoint.
        assert!(store.entry_count() <= 2, "wal holds {} frames", store.entry_count());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = temp_dir("torn");
        let good = MetaImage { next_acg: 3, ..Default::default() };
        {
            let (mut store, _) = MetaStore::open(&dir, 1).unwrap();
            store.log(&[MetaOp::InstallAcked { new_acg: AcgId::new(1) }]).unwrap();
            store.checkpoint(&good).unwrap();
            store.log(&[MetaOp::InstallAcked { new_acg: AcgId::new(2) }]).unwrap();
            store.checkpoint(&MetaImage { next_acg: 4, ..Default::default() }).unwrap();
        }
        let newest = list_meta_snapshots(&dir).remove(0).1;
        fs::write(&newest, b"PMETgarbage").unwrap();
        let (_, rec) = MetaStore::open(&dir, 1).unwrap();
        assert_eq!(rec.image, Some(good));
        assert_eq!(rec.suffix, vec![MetaOp::InstallAcked { new_acg: AcgId::new(2) }]);
        let _ = fs::remove_dir_all(&dir);
    }
}
