//! The client-side File Query Engine (paper §IV "Client").
//!
//! The engine (1) captures file accesses and accumulates access-causality
//! edges in RAM, flushing ACG deltas to Index Nodes after I/O completes,
//! (2) batches file-indexing requests, asking the Master for ACG routes
//! and sending per-ACG batches to Index Nodes **in parallel**, and (3)
//! serves searches by fanning the query out to every Index Node holding a
//! relevant ACG and aggregating the returned file sets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use propeller_index::{FileRecord, IndexOp, IndexSpec};
use propeller_obs::{
    names, Counter, Histogram, Lane, MetricsRegistry, NodeObs, OpenSpan, SpanKind, TraceContext,
    TraceTree,
};
use propeller_query::{
    merge_sorted_hits, next_cursor, Cursor, FanOutPolicy, Hit, HitMerger, Predicate, Query,
    SearchRequest, SearchResponse, SearchStats,
};
use propeller_sim::Clock;
use propeller_trace::CausalityTracker;
use propeller_types::{
    AcgId, Error, FileId, NodeId, OpenMode, ProcessId, Result, Timestamp, TraceEvent,
};

use crate::messages::{Request, Response, RouteHints};
use crate::rpc::Rpc;

/// Default bound on a client's route cache (see [`RouteCache`]).
const ROUTE_CACHE_CAPACITY: usize = 65_536;

/// Default page size for streamed cross-node searches (see
/// [`FileQueryEngine::with_search_page_size`]).
const SEARCH_PAGE_SIZE: usize = 64;

/// Bound on transparent session reopens per node per search. Every reopen
/// ships a page (opens are atomic open+first-page), so progress is
/// guaranteed; the cap only fences off a pathologically thrashing node.
const MAX_SESSION_REOPENS: usize = 16;

/// Process-wide client id allocator: Index Nodes key their per-client
/// session caps off this.
static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

/// A capacity-bounded file → (ACG, node) route cache with **LRU**
/// eviction.
///
/// Clients resolve every indexed file through the Master once and cache
/// the route; unbounded, a long-lived client indexing a large namespace
/// grows this map without limit. Past `capacity` the cache evicts its
/// least-recently-*used* entry: every hit re-stamps the route with a
/// fresh generation (touch-on-hit), so hot working sets stay resident
/// while one-shot routes age out. An evicted route is simply re-resolved
/// through the Master on next use. Per-entry generations keep a
/// superseded order entry (the file was touched, invalidated or
/// re-resolved since) from evicting the live route; the order queue is
/// compacted once stale entries dominate it, so touch-heavy workloads
/// don't grow it without bound.
#[derive(Debug, Default)]
struct RouteCache {
    map: HashMap<FileId, ((AcgId, NodeId), u64)>,
    order: std::collections::VecDeque<(FileId, u64)>,
    gen: u64,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
}

impl RouteCache {
    fn with_capacity(capacity: usize) -> Self {
        RouteCache { capacity: capacity.max(1), ..RouteCache::default() }
    }

    /// Points the cache's counters at `registry`'s `route_cache_*` series,
    /// so cache behaviour is visible in the client's metrics snapshot.
    fn register_metrics(&mut self, registry: &MetricsRegistry) {
        self.hits = registry.counter(names::ROUTE_CACHE_HITS);
        self.misses = registry.counter(names::ROUTE_CACHE_MISSES);
        self.evictions = registry.counter(names::ROUTE_CACHE_EVICTIONS);
        self.invalidations = registry.counter(names::ROUTE_CACHE_INVALIDATIONS);
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains_key(&self, file: &FileId) -> bool {
        self.map.contains_key(file)
    }

    /// Looks a route up, re-stamping it as most-recently-used on hit.
    fn get(&mut self, file: &FileId) -> Option<(AcgId, NodeId)> {
        let Some((route, gen)) = self.map.get_mut(file) else {
            self.misses.inc();
            return None;
        };
        self.hits.inc();
        let route = *route;
        self.gen += 1;
        *gen = self.gen;
        self.order.push_back((*file, self.gen));
        self.compact();
        Some(route)
    }

    fn insert(&mut self, file: FileId, route: (AcgId, NodeId)) {
        self.gen += 1;
        self.map.insert(file, (route, self.gen));
        self.order.push_back((file, self.gen));
        while self.map.len() > self.capacity {
            let Some((file, gen)) = self.order.pop_front() else { break };
            // Superseded order entries (the file was re-touched since)
            // pop as no-ops; only the live generation evicts.
            if self.map.get(&file).is_some_and(|(_, g)| *g == gen) {
                self.map.remove(&file);
                self.evictions.inc();
            }
        }
        self.compact();
    }

    fn remove(&mut self, file: &FileId) {
        // The stale order entry stays behind and pops as a no-op.
        self.map.remove(file);
    }

    /// Drops one route because a Master hint said it moved.
    fn invalidate(&mut self, file: &FileId) {
        if self.map.remove(file).is_some() {
            self.invalidations.inc();
        }
    }

    /// Drops every route (the `complete: false` hint path: the Master's
    /// split log no longer covers this client's generation, so any cached
    /// route may be stale).
    fn clear(&mut self) {
        self.invalidations.add(self.map.len() as u64);
        self.map.clear();
        self.order.clear();
    }

    /// Rebuilds the order queue from the live generations once stale
    /// (superseded) entries outnumber them 2:1 — amortized O(1) per
    /// touch, and the queue stays O(capacity).
    fn compact(&mut self) {
        if self.order.len() <= self.map.len().max(self.capacity).saturating_mul(2) {
            return;
        }
        let mut live: Vec<(FileId, u64)> =
            self.map.iter().map(|(&file, &(_, gen))| (file, gen)).collect();
        live.sort_unstable_by_key(|&(_, gen)| gen);
        self.order = live.into();
    }
}

/// A client handle to a Propeller cluster.
///
/// Cheap to create; each client keeps its own causality tracker and route
/// cache. See [`crate::Cluster::client`].
pub struct FileQueryEngine {
    rpc: Rpc,
    master: NodeId,
    index_nodes: Vec<NodeId>,
    clock: Arc<dyn Clock>,
    tracker: CausalityTracker,
    route_cache: RouteCache,
    /// The routing generation of the last [`RouteHints`] applied.
    route_gen: u64,
    /// This client's identity for per-client session caps on Index Nodes.
    client_id: u64,
    /// Hits per page for streamed cross-node searches (the *initial* page
    /// when adaptive sizing is on).
    search_page: usize,
    /// Adaptive page growth cap: when set, a node's page size doubles on
    /// every accepted page up to this bound — cold nodes ship one small
    /// page, nodes that keep winning the merge amortize round trips.
    /// `None` (the default) keeps every page at `search_page`.
    adaptive_max_page: Option<usize>,
    /// Latency budget for streamed session opens: past it a **hedged**
    /// duplicate open goes to the next live replica and the first answer
    /// wins. `None` (the default) never hedges.
    hedge_budget: Option<std::time::Duration>,
    /// Replica sets learned from `Resolved` responses (primary first) —
    /// the write path's replication fan-out.
    acg_replicas: HashMap<AcgId, Vec<NodeId>>,
    /// Spread streamed session opens across each replica set, preferring
    /// the least-loaded replica (see
    /// [`crate::ClusterConfig::follower_reads`]). `false` always opens at
    /// the primary.
    follower_reads: bool,
    /// Tie-break cursor for follower reads, advanced per opened group.
    open_rr: AtomicU64,
    /// This client's observability bundle ([`Lane::Client`]).
    obs: Arc<NodeObs>,
    /// Trace one request in every `trace_every` (0 = never sample).
    trace_every: u64,
    /// Requests seen by the sampler.
    trace_seq: AtomicU64,
    /// The most recently allocated trace id (0 = none yet).
    last_trace: AtomicU64,
    /// End-to-end search latency histogram (cached registry handle).
    h_client_search: Arc<Histogram>,
    /// Hedge / failover outcome counters (cached registry handles).
    c_hedges_fired: Arc<Counter>,
    c_hedges_won: Arc<Counter>,
    c_replica_failovers: Arc<Counter>,
}

impl std::fmt::Debug for FileQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileQueryEngine")
            .field("master", &self.master)
            .field("cached_routes", &self.route_cache.len())
            .finish()
    }
}

impl FileQueryEngine {
    pub(crate) fn new(
        rpc: Rpc,
        master: NodeId,
        index_nodes: Vec<NodeId>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let client_id = NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed);
        let obs = Arc::new(NodeObs::new(Lane::Client(client_id)));
        let mut route_cache = RouteCache::with_capacity(ROUTE_CACHE_CAPACITY);
        route_cache.register_metrics(&obs.metrics);
        let h_client_search = obs.metrics.histogram(names::CLIENT_SEARCH_LATENCY);
        let c_hedges_fired = obs.metrics.counter(names::HEDGES_FIRED);
        let c_hedges_won = obs.metrics.counter(names::HEDGES_WON);
        let c_replica_failovers = obs.metrics.counter(names::REPLICA_FAILOVERS);
        FileQueryEngine {
            rpc,
            master,
            index_nodes,
            clock,
            tracker: CausalityTracker::new(),
            route_cache,
            route_gen: 0,
            client_id,
            search_page: SEARCH_PAGE_SIZE,
            adaptive_max_page: None,
            hedge_budget: None,
            acg_replicas: HashMap::new(),
            follower_reads: false,
            open_rr: AtomicU64::new(0),
            obs,
            trace_every: 0,
            trace_seq: AtomicU64::new(0),
            last_trace: AtomicU64::new(0),
            h_client_search,
            c_hedges_fired,
            c_hedges_won,
            c_replica_failovers,
        }
    }

    /// Enables or disables follower reads (builder style): streamed
    /// session opens go to the **least-loaded** live replica of each ACG
    /// group — load being each node's suspended-session count, reported
    /// on heartbeats and aggregated at the Master — with round-robin
    /// rotation between equally loaded replicas, instead of always
    /// landing on the primary. Replicas serve byte-identical committed
    /// hits, so this spreads read load without changing any result; the
    /// failover order still walks the remaining replicas if the chosen
    /// one is down.
    #[must_use]
    pub fn with_follower_reads(mut self, enabled: bool) -> Self {
        self.follower_reads = enabled;
        self
    }

    /// Rebounds the route cache (builder style). Routes already cached are
    /// dropped; they re-resolve through the Master on next use.
    #[must_use]
    pub fn with_route_cache_capacity(mut self, capacity: usize) -> Self {
        self.route_cache = RouteCache::with_capacity(capacity);
        self.route_cache.register_metrics(&self.obs.metrics);
        self
    }

    /// Enables trace sampling (builder style): one request in every
    /// `every` gets a [`TraceContext`] and records spans on every lane it
    /// crosses, harvestable with [`FileQueryEngine::dump_trace`]. `0`
    /// (the default) never samples, and every recording site stays a
    /// no-op branch.
    #[must_use]
    pub fn with_trace_sampling(mut self, every: u64) -> Self {
        self.trace_every = every;
        self
    }

    /// Sets the page size for streamed cross-node searches (builder
    /// style): how many hits each `PullHits` round trip ships per node.
    /// Smaller pages tighten the cross-node cutoff (cold nodes ship
    /// less); larger pages cost fewer round trips.
    #[must_use]
    pub fn with_search_page_size(mut self, page: usize) -> Self {
        self.search_page = page.max(1);
        self
    }

    /// Enables adaptive page sizing (builder style): streamed searches
    /// start every node at `initial` hits per page and double a node's
    /// page on each accepted page up to `max`. Nodes that stop winning
    /// the merge are never pulled again, so the small first page bounds
    /// what a cold node ships while hot nodes converge to `max`-sized
    /// pulls (fewer round trips for the same hits).
    #[must_use]
    pub fn with_adaptive_paging(mut self, initial: usize, max: usize) -> Self {
        self.search_page = initial.max(1);
        self.adaptive_max_page = Some(max.max(initial.max(1)));
        self
    }

    /// Sets the tail-tolerance hedge budget (builder style): a streamed
    /// session open that has not answered within `budget` fires a
    /// duplicate "tied request" open at the next live replica of the same
    /// ACGs; the first answer wins and the loser's session is closed.
    /// Replicas answer bit-identically, so correctness never depends on
    /// who wins — only the tail latency does. No-op at replication 1
    /// (there is no second replica to hedge to).
    #[must_use]
    pub fn with_hedge_budget(mut self, budget: propeller_types::Duration) -> Self {
        self.hedge_budget = Some(budget.to_std());
        self
    }

    /// Number of file routes currently cached (bounded by the configured
    /// capacity).
    pub fn cached_routes(&self) -> usize {
        self.route_cache.len()
    }

    /// Whether a route for `file` is currently cached (introspection for
    /// tests and operators; does not touch LRU order).
    pub fn has_cached_route(&self, file: FileId) -> bool {
        self.route_cache.contains_key(&file)
    }

    /// This client's observability bundle: its metrics registry (route
    /// cache, hedging, end-to-end latency) and its span buffer.
    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.obs
    }

    /// The trace id allocated to the most recently sampled request, if
    /// any — pass it to [`FileQueryEngine::dump_trace`].
    pub fn last_trace_id(&self) -> Option<u64> {
        match self.last_trace.load(Ordering::Relaxed) {
            0 => None,
            t => Some(t),
        }
    }

    /// Decides whether the next request is traced. Counter-based (one in
    /// every `trace_every`), so tests sampling at 1 are deterministic;
    /// trace ids are `client_id << 32 | seq`, unique across clients.
    fn sample(&self) -> TraceContext {
        if self.trace_every == 0 {
            return TraceContext::NONE;
        }
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(self.trace_every) {
            return TraceContext::NONE;
        }
        let trace = (self.client_id << 32) | ((seq + 1) & 0xFFFF_FFFF).max(1);
        self.last_trace.store(trace, Ordering::Relaxed);
        TraceContext::root(trace)
    }

    /// Harvests every span of `trace` — this client's own buffer, the
    /// Master's and every Index Node's (dead nodes are skipped; their
    /// spans are simply absent) — and assembles the single trace tree
    /// with per-span wall times.
    ///
    /// Harvesting is destructive: a trace can be dumped once.
    ///
    /// # Errors
    ///
    /// Fails when no spans were recorded for `trace` or the harvested
    /// spans do not form a single-rooted tree (e.g. a bounded span buffer
    /// wrapped past the root).
    pub fn dump_trace(&self, trace: u64) -> Result<TraceTree> {
        let mut spans = self.obs.spans.harvest(trace);
        for node in std::iter::once(self.master).chain(self.index_nodes.iter().copied()) {
            if let Ok(Response::TraceSpans(remote)) =
                self.rpc.call(node, Request::DumpTrace { trace })
            {
                spans.extend(remote);
            }
        }
        TraceTree::assemble(spans).map_err(Error::Rpc)
    }

    /// Applies split-driven route invalidations from the Master: moved
    /// files drop out of the cache *before* their stale routes can earn a
    /// `StaleRoute` rejection and a retry round trip. Incomplete hints
    /// (the client fell behind the Master's bounded split log) drop the
    /// whole cache — safe, just less surgical.
    fn apply_route_hints(&mut self, hints: RouteHints) {
        if !hints.complete {
            self.route_cache.clear();
        } else {
            for file in &hints.moved {
                self.route_cache.invalidate(file);
            }
        }
        self.route_gen = self.route_gen.max(hints.upto);
    }

    /// Resolves routes for `files`, consulting the cache first and the
    /// Master for the rest (in one batch). Freshly resolved rows are kept
    /// aside for the answer: a batch larger than the cache's capacity may
    /// evict its own earliest rows while being cached.
    fn resolve(
        &mut self,
        files: &[FileId],
        ctx: TraceContext,
    ) -> Result<Vec<(FileId, AcgId, NodeId)>> {
        let span = self.obs.spans.begin(ctx, SpanKind::Resolve, self.clock.now());
        // Snapshot the batch's cache hits up front: caching the freshly
        // resolved rows below may FIFO-evict this very batch's hits.
        let mut routes: HashMap<FileId, (AcgId, NodeId)> = HashMap::with_capacity(files.len());
        for f in files {
            if let Some(route) = self.route_cache.get(f) {
                routes.insert(*f, route);
            }
        }
        let missing: Vec<FileId> =
            files.iter().copied().filter(|f| !routes.contains_key(f)).collect();
        let misses = missing.len();
        if !missing.is_empty() {
            // An empty cache has nothing to invalidate: ask for no hints
            // (`u64::MAX` sorts past any generation) and let the response
            // sync `route_gen` to the Master's current generation, so a
            // fresh client never makes the Master rebuild its whole
            // split-log history.
            let since = if self.route_cache.len() == 0 { u64::MAX } else { self.route_gen };
            let req = Request::ResolveFiles { files: missing, hints_since: since, ctx: span.ctx() };
            match self.rpc.call(self.master, req)? {
                Response::Resolved { rows, hints, replicas } => {
                    // Hints first: a `complete: false` hint clears the
                    // cache, and the fresh rows below must survive that.
                    self.apply_route_hints(hints);
                    for (acg, set) in replicas {
                        self.acg_replicas.insert(acg, set);
                    }
                    for (file, acg, node) in rows {
                        self.route_cache.insert(file, (acg, node));
                        routes.insert(file, (acg, node));
                    }
                }
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            }
        }
        if span.enabled() {
            let detail = format!("files={} cache_misses={misses}", files.len());
            self.obs.spans.finish_with(span, self.clock.now(), detail);
        }
        files
            .iter()
            .map(|f| routes.get(f).map(|&(a, n)| (*f, a, n)).ok_or(Error::FileNotFound(*f)))
            .collect()
    }

    /// Indexes a batch of file records: routes are resolved through the
    /// Master, then per-(ACG, node) batches go to the Index Nodes in
    /// parallel — the paper's parallel file-indexing path.
    ///
    /// Cached routes can go stale after an ACG split/migration; a batch
    /// rejected with [`Error::StaleRoute`] drops the offending cache
    /// entries, re-resolves through the Master and retries once.
    ///
    /// # Errors
    ///
    /// Fails if the Master or any involved Index Node is unreachable or
    /// rejects its batch (after the one stale-route retry).
    pub fn index_files(&mut self, records: Vec<FileRecord>) -> Result<()> {
        self.apply_ops(records.into_iter().map(IndexOp::Upsert).collect())
    }

    /// Removes files from the index (file-deletion path).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FileQueryEngine::index_files`].
    pub fn remove_files(&mut self, files: Vec<FileId>) -> Result<()> {
        self.apply_ops(files.into_iter().map(IndexOp::Remove).collect())
    }

    /// Routes, batches and dispatches index ops, retrying once with fresh
    /// routes when an Index Node reports a *cached* route moved. Only
    /// batches that used the cache keep a copy of their ops for the retry
    /// — freshly resolved batches ship without any extra clone.
    ///
    /// A freshly resolved route can still race an in-flight split (the
    /// window between `ExtractAcgPart` and `CommitSplit` at the Master):
    /// that narrow case surfaces as [`Error::StaleRoute`] and the caller
    /// may simply retry the batch.
    fn apply_ops(&mut self, ops: Vec<IndexOp>) -> Result<()> {
        let ctx = self.sample();
        let n_ops = ops.len();
        let root = self.obs.spans.begin(ctx, SpanKind::Request, self.clock.now());
        let out = self.apply_ops_traced(ops, root.ctx());
        if root.enabled() {
            let detail = format!("index ops={n_ops} ok={}", out.is_ok());
            self.obs.spans.finish_with(root, self.clock.now(), detail);
        }
        out
    }

    fn apply_ops_traced(&mut self, ops: Vec<IndexOp>, ctx: TraceContext) -> Result<()> {
        let files: Vec<FileId> = ops.iter().map(IndexOp::file).collect();
        let cached: std::collections::HashSet<FileId> =
            files.iter().copied().filter(|f| self.route_cache.contains_key(f)).collect();
        let routes = self.resolve(&files, ctx)?;
        let mut by_target: HashMap<(NodeId, AcgId), (Vec<IndexOp>, bool)> = HashMap::new();
        for (op, (file, acg, node)) in ops.into_iter().zip(routes) {
            let entry = by_target.entry((node, acg)).or_default();
            entry.1 |= cached.contains(&file);
            entry.0.push(op);
        }
        let failures = self.dispatch_batches(by_target, ctx);
        if failures.is_empty() {
            return Ok(());
        }
        // Stale cached routes are retried after invalidation; anything
        // else is fatal right away.
        let mut retry_ops = Vec::new();
        for (ops, err) in failures {
            match err {
                Error::StaleRoute { .. } if !ops.is_empty() => retry_ops.extend(ops),
                other => return Err(other),
            }
        }
        let retry = self.obs.spans.begin(ctx, SpanKind::RouteRetry, self.clock.now());
        let retry_files: Vec<FileId> = retry_ops.iter().map(IndexOp::file).collect();
        for file in &retry_files {
            self.route_cache.remove(file);
        }
        let out = (|| {
            let routes = self.resolve(&retry_files, retry.ctx())?;
            let mut by_target: HashMap<(NodeId, AcgId), (Vec<IndexOp>, bool)> = HashMap::new();
            for (op, (_, acg, node)) in retry_ops.into_iter().zip(routes) {
                by_target.entry((node, acg)).or_default().0.push(op);
            }
            match self.dispatch_batches(by_target, retry.ctx()).pop() {
                None => Ok(()),
                Some((_, err)) => Err(err),
            }
        })();
        if retry.enabled() {
            let detail = format!("stale routes dropped={}", retry_files.len());
            self.obs.spans.finish_with(retry, self.clock.now(), detail);
        }
        out
    }

    /// Sends the per-(node, ACG) batches in parallel, returning the failed
    /// batches and their errors. Batches flagged as cache-routed return
    /// their ops (kept for the stale-route retry); others return empty.
    ///
    /// Replication rides here: the primary acknowledges each batch with
    /// the WAL LSN it logged ([`Response::BatchLogged`]), and the same
    /// frame is then shipped to every follower replica as a
    /// [`Request::ReplicateBatch`]. The fan-out stays client-driven —
    /// nodes never call nodes, so the actor graph cannot deadlock on two
    /// primaries replicating to each other. A follower that reports a log
    /// gap is caught up from the primary (frames, or a full seed once the
    /// primary's WAL truncated); an unreachable follower is tolerated —
    /// it re-syncs on revival, and searches fail over around it.
    fn dispatch_batches(
        &self,
        by_target: HashMap<(NodeId, AcgId), (Vec<IndexOp>, bool)>,
        ctx: TraceContext,
    ) -> Vec<(Vec<IndexOp>, Error)> {
        let now = self.clock.now();
        std::thread::scope(|s| {
            let handles: Vec<_> = by_target
                .into_iter()
                .map(|((node, acg), (ops, cached))| {
                    let rpc = self.rpc.clone();
                    let followers: Vec<NodeId> = self
                        .acg_replicas
                        .get(&acg)
                        .map(|set| set.iter().copied().filter(|&n| n != node).collect())
                        .unwrap_or_default();
                    s.spawn(move || {
                        let keep = if cached { ops.clone() } else { Vec::new() };
                        let replicate = if followers.is_empty() { Vec::new() } else { ops.clone() };
                        let result = rpc.call(node, Request::IndexBatch { acg, ops, now, ctx });
                        if let Ok(Response::BatchLogged { lsn }) = &result {
                            for &follower in &followers {
                                replicate_frame(
                                    &rpc, node, follower, acg, *lsn, &replicate, now, ctx,
                                );
                            }
                        }
                        (keep, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| {
                    let (keep, result) = h.join().expect("batch thread");
                    result.err().map(|e| (keep, e))
                })
                .collect()
        })
    }

    /// The search fan-out plan, from the Master: ACGs grouped by their
    /// **full ordered replica set** (primary first). Grouping by set —
    /// not by primary — matters because a node answers a search only for
    /// the ACGs it actually hosts ([`Request::Search`] silently skips
    /// unknown ones): every node in a group hosts *all* of the group's
    /// ACGs, so a search for the group can be served, or failed over, to
    /// any member wholesale. Groups are sorted for deterministic fan-out.
    fn locate(&self) -> Result<Vec<(Vec<NodeId>, Vec<AcgId>)>> {
        let located = match self.rpc.call(self.master, Request::LocateAcgs)? {
            Response::Located(rows) => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut by_set: HashMap<Vec<NodeId>, Vec<AcgId>> = HashMap::new();
        for (acg, replicas) in located {
            by_set.entry(replicas).or_default().push(acg);
        }
        let mut groups: Vec<(Vec<NodeId>, Vec<AcgId>)> = by_set.into_iter().collect();
        for (_, acgs) in &mut groups {
            acgs.sort_unstable();
        }
        groups.sort();
        Ok(groups)
    }

    /// Runs a full [`SearchRequest`] against the cluster — the canonical
    /// search entry point.
    ///
    /// Limited (top-k) searches spanning several Index Nodes run the
    /// **streamed session protocol** ([`FileQueryEngine::search_streamed`]):
    /// the cluster-wide merge pulls each node one page at a time and stops
    /// pulling a node as soon as its next page provably sorts after the
    /// global k-th hit, so cold nodes ship ~one page instead of `k` hits.
    /// Unlimited or single-node searches keep the one-shot exchange
    /// ([`FileQueryEngine::search_one_shot`]). Both paths return
    /// byte-identical hits.
    ///
    /// # Errors
    ///
    /// Under [`FanOutPolicy::RequireAll`] any unreachable node fails the
    /// search. Under [`FanOutPolicy::AllowPartial`] node failures are
    /// tolerated as long as at least `min_nodes` nodes still answered;
    /// below that quorum the first node error is returned. Validation
    /// errors surface as [`Error::InvalidQuery`].
    pub fn search_with(&self, request: &SearchRequest) -> Result<SearchResponse> {
        request.validate()?;
        let groups = self.locate()?;
        if groups.is_empty() {
            return Ok(SearchResponse::empty());
        }
        let ctx = self.sample();
        match request.limit {
            Some(k) if k > 0 && groups.len() > 1 => self.run_streamed(groups, request, ctx),
            _ => self.run_one_shot(groups, request, ctx),
        }
    }

    /// The classic one-shot exchange: every relevant node answers with its
    /// full local top-k in one response; the engine k-way merges the
    /// lists. The baseline the streamed path is measured against, and the
    /// path unlimited or single-node searches take.
    ///
    /// # Errors
    ///
    /// Same policy-dependent failure modes as
    /// [`FileQueryEngine::search_with`].
    pub fn search_one_shot(&self, request: &SearchRequest) -> Result<SearchResponse> {
        request.validate()?;
        let groups = self.locate()?;
        if groups.is_empty() {
            return Ok(SearchResponse::empty());
        }
        let ctx = self.sample();
        self.run_one_shot(groups, request, ctx)
    }

    /// Wraps the one-shot exchange in the client-side root span and the
    /// end-to-end latency / hedge-outcome metrics.
    fn run_one_shot(
        &self,
        groups: Vec<(Vec<NodeId>, Vec<AcgId>)>,
        request: &SearchRequest,
        ctx: TraceContext,
    ) -> Result<SearchResponse> {
        let started = self.clock.now();
        let root = self.obs.spans.begin(ctx, SpanKind::Request, started);
        let out = self.run_one_shot_inner(groups, request, root.ctx());
        let finished = self.clock.now();
        self.h_client_search.record(finished.since(started).as_micros());
        if let Ok(response) = &out {
            self.c_replica_failovers.add(response.stats.replica_failovers as u64);
        }
        if root.enabled() {
            let detail = match &out {
                Ok(r) => format!("one-shot hits={} complete={}", r.hits.len(), r.complete),
                Err(e) => format!("one-shot failed: {e}"),
            };
            self.obs.spans.finish_with(root, finished, detail);
        }
        out
    }

    fn run_one_shot_inner(
        &self,
        groups: Vec<(Vec<NodeId>, Vec<AcgId>)>,
        request: &SearchRequest,
        ctx: TraceContext,
    ) -> Result<SearchResponse> {
        let now = self.clock.now();
        // Each replica group tries its members in order (primary first):
        // a dead primary costs one failed call before the follower — which
        // holds a byte-identical committed view — answers in its stead.
        type GroupResult = (Vec<AcgId>, usize, Result<(Vec<Hit>, SearchStats)>);
        let results: Vec<GroupResult> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|(replicas, acgs)| {
                    let rpc = self.rpc.clone();
                    let request = request.clone();
                    let obs = Arc::clone(&self.obs);
                    let clock = Arc::clone(&self.clock);
                    s.spawn(move || {
                        let mut failovers = 0usize;
                        let mut last_err = None;
                        for &node in &replicas {
                            let open = obs.spans.begin(ctx, SpanKind::Open, clock.now());
                            let req = Request::Search {
                                acgs: acgs.clone(),
                                request: request.clone(),
                                now,
                                ctx: open.ctx(),
                            };
                            match rpc.call(node, req) {
                                Ok(Response::SearchHits { hits, stats }) => {
                                    if open.enabled() {
                                        let detail = format!("{node} hits={}", hits.len());
                                        obs.spans.finish_with(open, clock.now(), detail);
                                    }
                                    return (acgs, failovers, Ok((hits, stats)));
                                }
                                Ok(other) => {
                                    if open.enabled() {
                                        let detail = format!("{node} unexpected response");
                                        obs.spans.finish_with(open, clock.now(), detail);
                                    }
                                    last_err =
                                        Some(Error::Rpc(format!("unexpected response {other:?}")));
                                }
                                Err(e) => {
                                    if open.enabled() {
                                        let detail = format!("{node} unreachable: {e}");
                                        obs.spans.finish_with(open, clock.now(), detail);
                                    }
                                    last_err = Some(e);
                                }
                            }
                            failovers += 1;
                        }
                        let err =
                            last_err.unwrap_or_else(|| Error::Rpc("empty replica set".to_string()));
                        (acgs, failovers, Err(err))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("search thread")).collect()
        });

        let mut lists = Vec::new();
        let mut stats = SearchStats::default();
        let mut failed: Vec<(Vec<AcgId>, Error)> = Vec::new();
        for (acgs, failovers, result) in results {
            match result {
                Ok((hits, node_stats)) => {
                    stats.absorb(node_stats);
                    // Only count failovers that *worked* — a group where
                    // every replica failed is unreachable, not failed-over.
                    stats.replica_failovers += failovers;
                    lists.push(hits);
                }
                Err(e) => match request.fan_out {
                    FanOutPolicy::RequireAll => return Err(e),
                    FanOutPolicy::AllowPartial { .. } => failed.push((acgs, e)),
                },
            }
        }
        // A search with no failures is complete regardless of how few
        // groups held relevant ACGs; the quorum only gates degraded runs.
        // A group counts as answering whichever replica served it, so with
        // R > 1 the search stays complete as long as *some* replica of
        // every ACG is alive.
        if let FanOutPolicy::AllowPartial { min_nodes } = request.fan_out {
            if !failed.is_empty() && lists.len() < min_nodes {
                return Err(failed.into_iter().next().map(|(_, e)| e).unwrap_or_else(|| {
                    Error::Rpc(format!(
                        "partial search needs {min_nodes} answering nodes, got {}",
                        lists.len()
                    ))
                }));
            }
        }

        let merge = self.obs.spans.begin(ctx, SpanKind::Merge, self.clock.now());
        let lists_merged = lists.len();
        let hits = merge_sorted_hits(lists, &request.sort, request.limit);
        if merge.enabled() {
            let detail = format!("lists={lists_merged} hits={}", hits.len());
            self.obs.spans.finish_with(merge, self.clock.now(), detail);
        }
        // `stats.elapsed` is the max per-node service time (each node
        // measures against its own injected clock; nodes ran in parallel,
        // so the slowest one is what this client waited for).
        let mut unreachable: Vec<AcgId> = failed.into_iter().flat_map(|(acgs, _)| acgs).collect();
        unreachable.sort_unstable();
        // A continuation cursor is only honest on a *complete* page:
        // paginating past an incomplete one would resume strictly after
        // its last hit and permanently skip every hit the unreachable
        // nodes held that sorted before the cursor. Incomplete responses
        // therefore carry no cursor — the caller retries the same page
        // (or a fresh search) once the nodes recover — unless the request
        // opted in (`cursor_on_incomplete`): availability-first callers
        // then resume over the reachable nodes and separately backfill
        // the listed unreachable ones.
        let cursor = if unreachable.is_empty() || request.cursor_on_incomplete {
            next_cursor(&hits, request.limit)
        } else {
            None
        };
        Ok(SearchResponse { complete: unreachable.is_empty(), unreachable, hits, stats, cursor })
    }

    /// Runs the **streamed session protocol** regardless of node count
    /// (the [`FileQueryEngine::search_with`] dispatcher reserves it for
    /// limited multi-node searches, where it pays): opens a search
    /// session on every relevant node (`OpenSearch` returns the first
    /// page), k-way merges the per-node page streams, and pulls a node's
    /// next page **only when its previous page has been fully consumed by
    /// the merge** — i.e. only while the node's hits still compete for
    /// the global top-k. Once `limit` hits are merged, unpulled nodes are
    /// closed where they stand; the node-side hits never computed or
    /// shipped are witnessed by [`SearchStats::node_hits_unsent`] and
    /// [`SearchStats::hits_shipped`].
    ///
    /// Hits are byte-identical to [`FileQueryEngine::search_one_shot`];
    /// only the stats (and the wire traffic) differ. Sessions evicted by
    /// a node mid-search are reopened transparently, resuming after the
    /// last hit received. Under [`FanOutPolicy::AllowPartial`], a node
    /// failing mid-stream degrades to an incomplete response that keeps
    /// the hits already merged.
    ///
    /// # Errors
    ///
    /// Same policy-dependent failure modes as
    /// [`FileQueryEngine::search_with`].
    pub fn search_streamed(&self, request: &SearchRequest) -> Result<SearchResponse> {
        request.validate()?;
        let groups = self.locate()?;
        if groups.is_empty() {
            return Ok(SearchResponse::empty());
        }
        let ctx = self.sample();
        self.run_streamed(groups, request, ctx)
    }

    /// Opens a **persistent** cluster search stream: node sessions stay
    /// open across the pages the caller draws, so paginating `p` pages
    /// deep costs O(p) node pulls total instead of O(p) fresh cursor
    /// searches each re-skipping everything before the cursor. The stream
    /// carries the same replica failover and hedging machinery as
    /// [`FileQueryEngine::search_streamed`]; call
    /// [`ClusterSearchStream::next_page`] until it returns an empty page,
    /// then [`ClusterSearchStream::finish`] for the stats and
    /// completeness verdict.
    ///
    /// # Errors
    ///
    /// Fails on invalid requests, an unreachable Master, or (under
    /// [`FanOutPolicy::RequireAll`]) any replica group with no live
    /// member.
    pub fn open_search_stream(&self, request: &SearchRequest) -> Result<ClusterSearchStream> {
        request.validate()?;
        let groups = self.locate()?;
        let ctx = self.sample();
        self.open_cluster_stream(groups, request, ctx)
    }

    fn run_streamed(
        &self,
        groups: Vec<(Vec<NodeId>, Vec<AcgId>)>,
        request: &SearchRequest,
        ctx: TraceContext,
    ) -> Result<SearchResponse> {
        let mut stream = self.open_cluster_stream(groups, request, ctx)?;
        // Drain the whole entitlement in one page: the merge stops at
        // `limit` merged hits anyway, so this is the classic streamed
        // search (the cluster-wide cutoff still prunes cold nodes).
        let hits = stream.next_page(usize::MAX)?;
        let mut response = stream.finish()?;
        // Same cursor honesty rule as the one-shot path: only a complete
        // page may carry a continuation — unless the request opted into
        // partial-resume (see `run_one_shot`).
        response.cursor = if response.complete || request.cursor_on_incomplete {
            next_cursor(&hits, request.limit)
        } else {
            None
        };
        response.hits = hits;
        Ok(response)
    }

    /// Builds one [`NodePageStream`] per replica group, opens them all in
    /// parallel and applies the open-time half of the fan-out policy.
    fn open_cluster_stream(
        &self,
        groups: Vec<(Vec<NodeId>, Vec<AcgId>)>,
        request: &SearchRequest,
        ctx: TraceContext,
    ) -> Result<ClusterSearchStream> {
        let now = self.clock.now();
        let root = self.obs.spans.begin(ctx, SpanKind::Request, now);
        // Follower reads are load-aware: the Master aggregates each node's
        // reported search load from heartbeats, and opens go to the
        // lightest replica of each group. A fresh cluster (or a dead
        // Master) reports no load, which degrades to plain round-robin.
        let loads: HashMap<NodeId, u64> =
            if self.follower_reads && groups.iter().any(|(r, _)| r.len() > 1) {
                match self.rpc.call(self.master, Request::NodeLoads) {
                    Ok(Response::NodeLoadReport(rows)) => rows.into_iter().collect(),
                    _ => HashMap::new(),
                }
            } else {
                HashMap::new()
            };
        let mut sources: Vec<NodePageStream> = groups
            .into_iter()
            .map(|(replicas, acgs)| {
                // Follower reads: open each group at its least-loaded
                // replica; ties rotate round-robin so equal replicas
                // still share the opens. Everything downstream (failover,
                // hedging) walks on from `current`.
                let current = if self.follower_reads && replicas.len() > 1 {
                    let load = |n: &NodeId| loads.get(n).copied().unwrap_or(0);
                    let min = replicas.iter().map(load).min().unwrap_or(0);
                    let lightest: Vec<usize> = replicas
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| load(n) == min)
                        .map(|(i, _)| i)
                        .collect();
                    let r = self.open_rr.fetch_add(1, Ordering::Relaxed) as usize;
                    lightest[r % lightest.len()]
                } else {
                    0
                };
                NodePageStream {
                    rpc: self.rpc.clone(),
                    dead: vec![false; replicas.len()],
                    replicas,
                    current,
                    acgs,
                    request: request.clone(),
                    client: self.client_id,
                    page: self.search_page,
                    adaptive_max: self.adaptive_max_page,
                    hedge: self.hedge_budget,
                    now,
                    opened: false,
                    session: 0,
                    buffer: Vec::new().into_iter(),
                    exhausted: false,
                    resume: None,
                    yielded: 0,
                    reopens: 0,
                    stats: SearchStats::default(),
                    error: None,
                    ctx: root.ctx(),
                    obs: Arc::clone(&self.obs),
                    clock: Arc::clone(&self.clock),
                }
            })
            .collect();
        // Open one session per group in parallel; every open ships the
        // first page, so cold groups are already done after this round.
        std::thread::scope(|s| {
            for source in &mut sources {
                s.spawn(move || source.ensure_open());
            }
        });
        if matches!(request.fan_out, FanOutPolicy::RequireAll) {
            if let Some(failed) = sources.iter_mut().find(|s| s.error.is_some()) {
                let err = failed.error.take().expect("just matched");
                // Be polite to *every* group that did open before failing
                // the search, so no suspended session is left to squat a
                // table slot until LRU eviction.
                for source in &sources {
                    source.close_best_effort();
                }
                if root.enabled() {
                    let detail = format!("streamed open failed: {err}");
                    self.obs.spans.finish_with(root, self.clock.now(), detail);
                }
                return Err(err);
            }
        }
        // Groups whose every replica refused the open stay in the stream
        // (their ACGs are reported unreachable by `finish`), but yield no
        // hits: their parked `error` keeps the iterator empty.
        let failed: Vec<usize> =
            sources.iter().enumerate().filter(|(_, s)| s.error.is_some()).map(|(i, _)| i).collect();
        let merger = HitMerger::new(request.sort.clone(), request.limit);
        Ok(ClusterSearchStream {
            sources,
            merger,
            fan_out: request.fan_out,
            failed,
            clock: Arc::clone(&self.clock),
            started: now,
            finished: false,
            obs: Arc::clone(&self.obs),
            root: Some(root),
            h_latency: Arc::clone(&self.h_client_search),
            c_hedges_fired: Arc::clone(&self.c_hedges_fired),
            c_hedges_won: Arc::clone(&self.c_hedges_won),
            c_replica_failovers: Arc::clone(&self.c_replica_failovers),
        })
    }

    /// Classic searches: the whole matching id set, sorted by file id
    /// (a thin wrapper over [`FileQueryEngine::search_with`]).
    ///
    /// # Errors
    ///
    /// Fails if the Master or any involved Index Node is unreachable.
    pub fn search(&self, predicate: &Predicate) -> Result<Vec<FileId>> {
        Ok(self.search_with(&SearchRequest::new(predicate.clone()))?.file_ids())
    }

    /// Parses and runs a textual query (`"size>16m & mtime<1day"`).
    ///
    /// # Errors
    ///
    /// Fails on parse errors or any [`FileQueryEngine::search`] failure.
    pub fn search_text(&self, text: &str) -> Result<Vec<FileId>> {
        let query = Query::parse(text, self.clock.now())?;
        self.search(&query.predicate)
    }

    /// Creates a user-defined index cluster-wide: registered at the Master
    /// (name uniqueness), then broadcast best-effort to every Index Node.
    /// A partial broadcast is rolled back — the spec is dropped from the
    /// nodes that did receive it and unregistered at the Master — and
    /// reported as [`Error::PartialIndexBroadcast`] listing the nodes that
    /// missed it, so the cluster is never left half-indexed.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names ([`Error::IndexExists`]) or with
    /// [`Error::PartialIndexBroadcast`] when any node was unreachable.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        self.rpc.call(self.master, Request::CreateIndex { spec: spec.clone() })?;
        let mut missed = Vec::new();
        let mut rejected: Option<Error> = None;
        for &node in &self.index_nodes {
            match self.rpc.call(node, Request::CreateIndex { spec: spec.clone() }) {
                Ok(_) => {}
                // Transport failures mean the node never saw the spec; any
                // other error is the node *rejecting* the spec — that is
                // the error the caller should see, not a broadcast report.
                Err(Error::NodeUnavailable(_) | Error::Rpc(_)) => missed.push(node),
                Err(e) => {
                    rejected.get_or_insert(e);
                }
            }
        }
        if missed.is_empty() && rejected.is_none() {
            return Ok(());
        }
        // Roll back: best-effort drop on *every* node — including the
        // "missed" ones, because a timed-out call may still have been
        // applied after the timeout fired — then unregister at the Master
        // so the name can be retried. (Nodes that rejected the spec
        // rolled their own groups back.)
        for &node in &self.index_nodes {
            let _ = self.rpc.call(node, Request::DropIndex { name: spec.name.clone() });
        }
        let _ = self.rpc.call(self.master, Request::DropIndex { name: spec.name.clone() });
        match rejected {
            Some(e) => Err(e),
            None => Err(Error::PartialIndexBroadcast { index: spec.name, missed }),
        }
    }

    // ---- access capture ---------------------------------------------------

    /// Observes a raw trace event (the FUSE interposer feed).
    pub fn observe(&mut self, event: TraceEvent) {
        self.tracker.observe(event);
    }

    /// Convenience: observes an open at the current time.
    pub fn observe_open(&mut self, pid: ProcessId, file: FileId, mode: OpenMode) {
        let now = self.clock.now();
        self.tracker.open(pid, file, mode, now);
    }

    /// Marks a traced process as exited.
    pub fn end_process(&mut self, pid: ProcessId) {
        self.tracker.end_process(pid);
    }

    /// Flushes accumulated causality edges to the Index Nodes hosting the
    /// destination files' ACGs ("flushed to the Index Nodes after the I/O
    /// process finishes"). Returns the number of edges flushed.
    ///
    /// ACG flushes are *weakly consistent* by design: a failed flush drops
    /// the delta (it can only cost partitioning quality, never search
    /// correctness), so per-node errors are swallowed.
    ///
    /// # Errors
    ///
    /// Fails only if the Master cannot resolve routes.
    pub fn flush_acg(&mut self) -> Result<usize> {
        let updates = self.tracker.drain_updates();
        if updates.is_empty() {
            return Ok(0);
        }
        let dst_files: Vec<FileId> = updates.iter().map(|u| u.dst).collect();
        let routes = self.resolve(&dst_files, TraceContext::NONE)?;
        let route_of: HashMap<FileId, (AcgId, NodeId)> =
            routes.into_iter().map(|(f, a, n)| (f, (a, n))).collect();
        let mut by_target: HashMap<(NodeId, AcgId), Vec<propeller_trace::EdgeUpdate>> =
            HashMap::new();
        let total = updates.len();
        for update in updates {
            let (acg, node) = route_of[&update.dst];
            by_target.entry((node, acg)).or_default().push(update);
        }
        for ((node, acg), edges) in by_target {
            // Weak consistency: ignore delivery failures.
            let _ = self.rpc.call(node, Request::FlushAcgDelta { acg, edges });
        }
        Ok(total)
    }

    /// Number of causality edges currently buffered client-side.
    pub fn buffered_edges(&self) -> usize {
        self.tracker.edge_count()
    }
}

/// Ships one committed WAL frame to a follower replica, catching the
/// follower up from the primary when it reports a log gap. Best-effort:
/// an unreachable follower is tolerated (searches fail over around it;
/// it re-syncs on revival), so nothing is returned.
#[allow(clippy::too_many_arguments)]
fn replicate_frame(
    rpc: &Rpc,
    primary: NodeId,
    follower: NodeId,
    acg: AcgId,
    lsn: u64,
    ops: &[IndexOp],
    now: Timestamp,
    ctx: TraceContext,
) {
    let req = Request::ReplicateBatch { acg, lsn, ops: ops.to_vec(), now, ctx };
    if let Ok(Response::ReplicaLagging { lsn: have }) = rpc.call(follower, req) {
        let _ = sync_replica(rpc, primary, follower, acg, have, now);
    }
}

/// Brings `target`'s copy of `acg` up to date with `source`'s, shipping
/// WAL frames after `after_lsn` when the source still retains them and a
/// full snapshot seed once the source's WAL has been truncated past the
/// gap. Returns the LSN the target acknowledged.
///
/// The sync is **client/coordinator-driven** — the source and target
/// never talk to each other — so the actor graph cannot deadlock on two
/// nodes catching each other up.
pub(crate) fn sync_replica(
    rpc: &Rpc,
    source: NodeId,
    target: NodeId,
    acg: AcgId,
    after_lsn: u64,
    now: Timestamp,
) -> Result<u64> {
    match rpc.call(source, Request::FetchAcgFrames { acg, after_lsn, now })? {
        Response::AcgFrames(frames) => {
            let mut applied = after_lsn;
            for (lsn, frame) in frames {
                let ops = IndexOp::decode_frame(&frame)?;
                // Catch-up traffic is never sampled: it runs outside any
                // client request.
                let req = Request::ReplicateBatch { acg, lsn, ops, now, ctx: TraceContext::NONE };
                match rpc.call(target, req)? {
                    Response::ReplicaApplied { lsn } => applied = lsn,
                    Response::ReplicaLagging { lsn } => {
                        return Err(Error::Rpc(format!(
                            "replica {target:?} still lagging at lsn {lsn} during catch-up"
                        )));
                    }
                    other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
                }
            }
            Ok(applied)
        }
        Response::AcgSeed { lsn, records } => {
            match rpc.call(target, Request::SeedAcg { acg, lsn, records, now })? {
                Response::ReplicaApplied { lsn } => Ok(lsn),
                other => Err(Error::Rpc(format!("unexpected response {other:?}"))),
            }
        }
        other => Err(Error::Rpc(format!("unexpected response {other:?}"))),
    }
}

/// One replica group's half of a streamed search, seen from the client:
/// an iterator yielding the group's hits in request sort order, pulling
/// the next page over the wire **lazily** — only when the merge has
/// consumed everything the group shipped so far. Feeding these into a
/// [`HitMerger`] *is* the cross-node cutoff: the merge holds one head
/// per source and refills a source only after emitting its head, so a
/// group whose page boundary sorts past the running global top-k is
/// never pulled again.
///
/// The stream is **replica-aware**: the session lives on one member of
/// the group at a time (the primary first). Opens past the hedge budget
/// race a duplicate open on the next live replica and take the first
/// answer; a member dying mid-stream fails the session over to the next
/// live member, resuming after the last hit yielded — replicas hold
/// byte-identical committed views, so the concatenation is exactly the
/// uninterrupted stream, no hits skipped or duplicated.
///
/// RPC failures cannot surface through `Iterator::next`, so once every
/// replica is dead the error parks in `error` (the stream ends) and the
/// caller applies the fan-out policy afterwards. An expired session
/// (evicted by the node) reopens transparently on the same node.
struct NodePageStream {
    rpc: Rpc,
    /// The group's full ordered replica set (primary first).
    replicas: Vec<NodeId>,
    /// Members that failed an RPC; never retried within this search.
    dead: Vec<bool>,
    /// Index into `replicas` of the member currently serving the session.
    current: usize,
    acgs: Vec<AcgId>,
    request: SearchRequest,
    client: u64,
    /// Hits per page; doubles per accepted page when `adaptive_max` is
    /// set (up to that bound).
    page: usize,
    adaptive_max: Option<usize>,
    /// Latency budget for hedged opens; `None` never hedges.
    hedge: Option<std::time::Duration>,
    now: Timestamp,
    /// Whether the initial open has been attempted (see `ensure_open`).
    opened: bool,
    /// The open session on `current` (0 = none: exhausted or never
    /// stored).
    session: u64,
    buffer: std::vec::IntoIter<Hit>,
    exhausted: bool,
    /// Resume point for transparent reopens and replica failovers: after
    /// the last yielded hit.
    resume: Option<Cursor>,
    /// Hits yielded so far — a reopen asks only for the *remaining*
    /// entitlement (`limit - yielded`), so the resumed session's pages
    /// concatenate with what was already received to exactly the one-shot
    /// result and the node never computes hits past the original `k`.
    yielded: usize,
    reopens: usize,
    /// Stats accumulated across the open and every pull.
    stats: SearchStats,
    error: Option<Error>,
    /// The stream's trace context (the client root span's child context;
    /// [`TraceContext::NONE`] when the request is unsampled).
    ctx: TraceContext,
    obs: Arc<NodeObs>,
    clock: Arc<dyn Clock>,
}

/// A hedge loser still owed a reply: its receiver plus what's needed to
/// close the session it may open.
struct LoserSession {
    rx: crossbeam::channel::Receiver<Response>,
    rpc: Rpc,
    node: NodeId,
}

/// The process-wide reaper that drains hedge losers and closes their
/// sessions. One long-lived thread instead of a spawn per hedge: thread
/// creation would land on the critical path of the winning open, and
/// best-effort cleanup tolerates the queueing.
fn loser_reaper() -> &'static crossbeam::channel::Sender<LoserSession> {
    static REAPER: std::sync::OnceLock<crossbeam::channel::Sender<LoserSession>> =
        std::sync::OnceLock::new();
    REAPER.get_or_init(|| {
        let (tx, rx) = crossbeam::channel::unbounded::<LoserSession>();
        std::thread::spawn(move || {
            while let Ok(loser) = rx.recv() {
                if let Ok(Response::SearchPage { session, exhausted, .. }) =
                    loser.rx.recv_timeout(std::time::Duration::from_secs(31))
                {
                    if !exhausted && session != 0 {
                        let _ = loser.rpc.call(loser.node, Request::CloseSearch { session });
                    }
                }
            }
        });
        tx
    })
}

impl NodePageStream {
    /// The open request resuming after the last yielded hit, asking only
    /// for the remaining entitlement. `ctx` is the span the node's
    /// service spans should hang under (the Open or Hedge attempt).
    fn open_request(&self, ctx: TraceContext) -> Request {
        let mut request = self.request.clone();
        if let Some(resume) = &self.resume {
            request.cursor = Some(resume.clone());
        }
        request.limit = request.limit.map(|k| k.saturating_sub(self.yielded));
        Request::OpenSearch {
            acgs: self.acgs.clone(),
            request,
            client: self.client,
            page: self.page,
            now: self.now,
            ctx,
        }
    }

    /// Performs the initial open, once (idempotent). Parallel-friendly:
    /// `open_cluster_stream` fans these out across a thread scope.
    fn ensure_open(&mut self) {
        if self.opened {
            return;
        }
        self.opened = true;
        self.open_session(false);
    }

    /// Opens (or re-opens) the session on the first live replica at or
    /// after `current`, cycling through the set and marking members that
    /// fail as dead. `counts_as_failover` distinguishes a mid-stream
    /// failover (the previous session's node died) from the initial open.
    fn open_session(&mut self, counts_as_failover: bool) {
        // Each failed attempt marks at least `current` dead, so this
        // terminates after at most `replicas.len()` opens.
        while let Some(idx) = self.first_live_at_or_after(self.current) {
            self.current = idx;
            if self.try_open_hedged() {
                if counts_as_failover {
                    self.stats.replica_failovers += 1;
                }
                self.error = None;
                return;
            }
        }
        if self.error.is_none() {
            self.error = Some(Error::Rpc("no live replica".to_string()));
        }
    }

    /// The first live replica slot at or cyclically after `from`.
    fn first_live_at_or_after(&self, from: usize) -> Option<usize> {
        (0..self.replicas.len())
            .map(|step| (from + step) % self.replicas.len())
            .find(|&idx| !self.dead[idx])
    }

    /// One open attempt against `current`, hedged when a budget is set:
    /// if the open misses the budget, a duplicate goes to the next live
    /// replica and the first `SearchPage` wins (the loser's session is
    /// closed by a detached cleanup thread). Returns whether a page was
    /// accepted; on failure `current`'s slot is marked dead and `error`
    /// holds the failure.
    fn try_open_hedged(&mut self) -> bool {
        let backup = self.next_live_after(self.current);
        let (budget, backup) = match (self.hedge, backup) {
            (Some(budget), Some(backup)) => (budget, backup),
            _ => return self.try_open_sync(),
        };
        let open = self.obs.spans.begin(self.ctx, SpanKind::Open, self.clock.now());
        let open_ctx = open.ctx();
        let mut open = Some(open);
        let primary_node = self.replicas[self.current];
        let primary_rx = match self.rpc.call_async(primary_node, self.open_request(open_ctx)) {
            Ok(rx) => rx,
            Err(e) => {
                self.dead[self.current] = true;
                self.finish_span(open.take(), || format!("{primary_node} unreachable"));
                self.error = Some(e);
                return false;
            }
        };
        match primary_rx.recv_timeout(budget) {
            Ok(response) => {
                let ok = self.accept_open_response(self.current, response);
                self.finish_span(open.take(), || format!("{primary_node} within budget ok={ok}"));
                return ok;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                self.dead[self.current] = true;
                self.finish_span(open.take(), || format!("{primary_node} disconnected"));
                self.error = Some(Error::NodeUnavailable(self.replicas[self.current]));
                return false;
            }
        }
        // Budget missed: fire the tied request. Both opens race into one
        // merged channel; the first SearchPage wins and the loser is
        // closed off-thread. Replicas hold byte-identical committed
        // views, so correctness never depends on who wins.
        self.stats.hedges_fired += 1;
        let backup_node = self.replicas[backup];
        let hedge = self.obs.spans.begin(open_ctx, SpanKind::Hedge, self.clock.now());
        let hedge_ctx = hedge.ctx();
        let mut hedge = Some(hedge);
        let backup_rx = match self.rpc.call_async(backup_node, self.open_request(hedge_ctx)) {
            Ok(rx) => rx,
            Err(_) => {
                // Backup unreachable: fall back to waiting out the
                // original open alone.
                self.finish_span(hedge.take(), || format!("{backup_node} unreachable"));
                let out = match primary_rx.recv() {
                    Ok(response) => self.accept_open_response(self.current, response),
                    Err(_) => {
                        self.dead[self.current] = true;
                        self.error = Some(Error::NodeUnavailable(self.replicas[self.current]));
                        false
                    }
                };
                self.finish_span(open.take(), || format!("{primary_node} after hedge ok={out}"));
                return out;
            }
        };
        // Race the two receivers by polling — the channel shim has no
        // select, and relay threads would put thread-spawn latency on the
        // critical path of exactly the opens hedging is meant to keep
        // fast. The backup usually answers within a poll or two.
        let mut slots = vec![(self.current, primary_rx), (backup, backup_rx)];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !slots.is_empty() && std::time::Instant::now() < deadline {
            let mut i = 0;
            while i < slots.len() {
                match slots[i].1.try_recv() {
                    Ok(Response::SearchPage { session, hits, stats, exhausted }) => {
                        let idx = slots[i].0;
                        if idx != self.current {
                            self.stats.hedges_won += 1;
                            self.current = idx;
                        }
                        self.accept_page(session, hits, stats, exhausted);
                        slots.remove(i);
                        // The loser may still answer with its own
                        // session: hand it to the shared reaper so this
                        // search isn't stalled by a slow loser and no
                        // session leaks.
                        if let Some((loser, loser_rx)) = slots.pop() {
                            let _ = loser_reaper().send(LoserSession {
                                rx: loser_rx,
                                rpc: self.rpc.clone(),
                                node: self.replicas[loser],
                            });
                        }
                        let winner = self.replicas[idx];
                        self.finish_span(hedge.take(), || {
                            format!(
                                "winner {winner} ({})",
                                if idx == backup { "hedge replica" } else { "primary" }
                            )
                        });
                        self.finish_span(open.take(), || format!("winner {winner}"));
                        return true;
                    }
                    Ok(other) => {
                        // This replica failed its open; keep waiting for
                        // the other one.
                        let idx = slots[i].0;
                        self.dead[idx] = true;
                        self.error = Some(Error::Rpc(format!("unexpected response {other:?}")));
                        slots.remove(i);
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => i += 1,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        let idx = slots[i].0;
                        self.dead[idx] = true;
                        self.error = Some(Error::NodeUnavailable(self.replicas[idx]));
                        slots.remove(i);
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        // Both opens died without a page.
        self.dead[self.current] = true;
        self.dead[backup] = true;
        if self.error.is_none() {
            self.error = Some(Error::NodeUnavailable(self.replicas[self.current]));
        }
        self.finish_span(hedge.take(), || "no winner".to_string());
        self.finish_span(open.take(), || format!("{primary_node} and {backup_node} dead"));
        false
    }

    /// Finishes a client-side span now, if it records anything. The
    /// detail closure only runs for sampled requests.
    fn finish_span(&self, span: Option<OpenSpan>, detail: impl FnOnce() -> String) {
        if let Some(span) = span {
            if span.enabled() {
                let detail = detail();
                self.obs.spans.finish_with(span, self.clock.now(), detail);
            }
        }
    }

    /// The plain unhedged open against `current`.
    fn try_open_sync(&mut self) -> bool {
        let open = self.obs.spans.begin(self.ctx, SpanKind::Open, self.clock.now());
        let node = self.replicas[self.current];
        match self.rpc.call(node, self.open_request(open.ctx())) {
            Ok(response) => {
                let ok = self.accept_open_response(self.current, response);
                self.finish_span(Some(open), || format!("{node} ok={ok}"));
                ok
            }
            Err(e) => {
                self.dead[self.current] = true;
                self.finish_span(Some(open), || format!("{node} unreachable: {e}"));
                self.error = Some(e);
                false
            }
        }
    }

    /// Applies an open's response from replica slot `idx`.
    fn accept_open_response(&mut self, idx: usize, response: Response) -> bool {
        match response {
            Response::SearchPage { session, hits, stats, exhausted } => {
                self.accept_page(session, hits, stats, exhausted);
                true
            }
            other => {
                self.dead[idx] = true;
                self.error = Some(Error::Rpc(format!("unexpected response {other:?}")));
                false
            }
        }
    }

    /// The first live replica slot strictly after `from` (cyclically),
    /// excluding `from` itself.
    fn next_live_after(&self, from: usize) -> Option<usize> {
        (1..self.replicas.len())
            .map(|step| (from + step) % self.replicas.len())
            .find(|&idx| !self.dead[idx])
    }

    /// Applies one `SearchPage`, whichever request produced it, growing
    /// the page size when adaptive sizing is on — a group that keeps
    /// winning the merge amortizes its round trips.
    fn accept_page(&mut self, session: u64, hits: Vec<Hit>, stats: SearchStats, exhausted: bool) {
        self.stats.absorb(stats);
        self.session = if exhausted { 0 } else { session };
        self.exhausted = exhausted;
        self.buffer = hits.into_iter();
        if let Some(max) = self.adaptive_max {
            self.page = (self.page * 2).min(max);
        }
    }

    /// Closes the node-side session if one is still open, returning the
    /// node's final accounting (`node_hits_unsent`, `merge_skipped`).
    /// Best-effort: a close lost to a dead node costs nothing — the node
    /// is gone, and live nodes evict abandoned sessions by LRU anyway.
    fn close_best_effort(&self) -> Option<SearchStats> {
        if self.session == 0 || self.exhausted {
            return None;
        }
        let close = Request::CloseSearch { session: self.session };
        match self.rpc.call(self.replicas[self.current], close) {
            Ok(Response::SearchClosed { stats }) => Some(stats),
            _ => None,
        }
    }
}

impl Iterator for NodePageStream {
    type Item = Hit;

    fn next(&mut self) -> Option<Hit> {
        loop {
            if let Some(hit) = self.buffer.next() {
                self.resume = Some(Cursor::after(&hit));
                self.yielded += 1;
                return Some(hit);
            }
            if self.exhausted || self.error.is_some() {
                return None;
            }
            let node = self.replicas[self.current];
            let span = self.obs.spans.begin(self.ctx, SpanKind::Pull, self.clock.now());
            let pull =
                Request::PullHits { session: self.session, page: self.page, ctx: span.ctx() };
            match self.rpc.call(node, pull) {
                Ok(Response::SearchPage { session, hits, stats, exhausted }) => {
                    let shipped = hits.len();
                    self.accept_page(session, hits, stats, exhausted);
                    self.finish_span(Some(span), || format!("{node} hits={shipped}"));
                }
                Err(Error::SearchSessionExpired { .. }) if self.reopens < MAX_SESSION_REOPENS => {
                    // The node evicted us (LRU or per-client cap), but is
                    // alive: reopen on the *same* node, resuming strictly
                    // after the last hit we saw. Every reopen ships a
                    // page, so this always makes progress.
                    self.finish_span(Some(span), || format!("{node} session expired, reopening"));
                    self.reopens += 1;
                    if !self.try_open_sync() {
                        return None;
                    }
                }
                Ok(other) => {
                    self.finish_span(Some(span), || format!("{node} unexpected response"));
                    self.error = Some(Error::Rpc(format!("unexpected response {other:?}")));
                    return None;
                }
                Err(_) => {
                    // The serving replica died mid-stream: fail the
                    // session over to the next live member, resuming
                    // after the last hit yielded. Byte-identical replicas
                    // make the spliced stream exact — no skips, no dups.
                    self.finish_span(Some(span), || {
                        format!("{node} died mid-stream, failing over")
                    });
                    self.dead[self.current] = true;
                    self.session = 0;
                    self.open_session(true);
                    if self.error.is_some() {
                        return None;
                    }
                }
            }
        }
    }
}

/// A **persistent** cluster-wide search stream: one open session per
/// replica group, a running k-way merge, and the caller in control of
/// page cadence. Produced by [`FileQueryEngine::open_search_stream`];
/// [`FileQueryEngine::search_streamed`] is the one-page special case.
///
/// Sessions stay open between [`ClusterSearchStream::next_page`] calls,
/// so paginating `p` pages deep costs O(p) node pulls in total — not the
/// O(p) fresh cursor searches (each re-skipping everything before its
/// cursor) that re-issuing `search_streamed` per page would cost.
pub struct ClusterSearchStream {
    sources: Vec<NodePageStream>,
    merger: HitMerger,
    fan_out: FanOutPolicy,
    /// Source indices that failed (open- or stream-time).
    failed: Vec<usize>,
    clock: Arc<dyn Clock>,
    started: Timestamp,
    finished: bool,
    obs: Arc<NodeObs>,
    /// The client-side root span, finished when the stream ends.
    root: Option<OpenSpan>,
    h_latency: Arc<Histogram>,
    c_hedges_fired: Arc<Counter>,
    c_hedges_won: Arc<Counter>,
    c_replica_failovers: Arc<Counter>,
}

impl ClusterSearchStream {
    /// Draws up to `n` more hits from the cluster-wide merge, in request
    /// sort order, continuing exactly where the previous page stopped.
    /// An empty page means the merge is done (every source exhausted or
    /// the request's `limit` reached).
    ///
    /// # Errors
    ///
    /// Under [`FanOutPolicy::RequireAll`], a replica group losing its
    /// every member mid-stream fails the search (all sessions are closed
    /// first). Under [`FanOutPolicy::AllowPartial`] the failure is
    /// recorded and surfaces in [`ClusterSearchStream::finish`].
    pub fn next_page(&mut self, n: usize) -> Result<Vec<Hit>> {
        let mut hits = Vec::new();
        while hits.len() < n {
            match self.merger.next_hit(&mut self.sources) {
                Some(hit) => hits.push(hit),
                None => break,
            }
        }
        // Sources that ran out of replicas park their error; apply the
        // fan-out policy now so RequireAll callers fail fast.
        for idx in 0..self.sources.len() {
            if self.sources[idx].error.is_some() && !self.failed.contains(&idx) {
                if matches!(self.fan_out, FanOutPolicy::RequireAll) {
                    let err = self.sources[idx].error.take().expect("just checked");
                    for source in &self.sources {
                        source.close_best_effort();
                    }
                    self.finished = true;
                    return Err(err);
                }
                self.failed.push(idx);
            }
        }
        Ok(hits)
    }

    /// Closes every live session and renders the final verdict: absorbed
    /// stats, the quorum check, and — with `R > 1` — `complete: false`
    /// **only when every replica of some ACG was unreachable**; the
    /// `unreachable` list names those ACGs (not nodes — with replication
    /// a dead node is not information the caller can act on).
    ///
    /// The returned response carries no hits (`next_page` already
    /// delivered them) and no cursor; [`FileQueryEngine::search_streamed`]
    /// fills both for the classic one-call path.
    ///
    /// # Errors
    ///
    /// Under [`FanOutPolicy::AllowPartial { min_nodes }`], fewer than
    /// `min_nodes` answering replica groups returns the first recorded
    /// group error.
    pub fn finish(mut self) -> Result<SearchResponse> {
        self.finished = true;
        let mut stats = SearchStats::default();
        let mut answered = 0usize;
        let mut unreachable: Vec<AcgId> = Vec::new();
        let mut first_error: Option<Error> = None;
        for (idx, source) in self.sources.iter_mut().enumerate() {
            stats.absorb(std::mem::take(&mut source.stats));
            if self.failed.contains(&idx) {
                if let Some(e) = source.error.take() {
                    first_error.get_or_insert(e);
                }
                unreachable.extend(source.acgs.iter().copied());
            } else {
                answered += 1;
                // Close the session where it stands; the node reports
                // what streaming saved it from shipping.
                if let Some(close_stats) = source.close_best_effort() {
                    stats.absorb(close_stats);
                }
            }
        }
        if let FanOutPolicy::AllowPartial { min_nodes } = self.fan_out {
            if !self.failed.is_empty() && answered < min_nodes {
                return Err(first_error.unwrap_or_else(|| {
                    Error::Rpc(format!(
                        "partial search needs {min_nodes} answering nodes, got {answered}"
                    ))
                }));
            }
        }
        unreachable.sort_unstable();
        // Pulls beyond the parallel opens are issued sequentially by the
        // merge, so the max-of-round-trips the absorbs accumulated is NOT
        // what the caller waited for — overwrite with the true wall time.
        let now = self.clock.now();
        stats.elapsed = now.since(self.started);
        self.h_latency.record(stats.elapsed.as_micros());
        self.c_hedges_fired.add(stats.hedges_fired as u64);
        self.c_hedges_won.add(stats.hedges_won as u64);
        self.c_replica_failovers.add(stats.replica_failovers as u64);
        if let Some(root) = self.root.take() {
            if root.enabled() {
                let detail =
                    format!("streamed groups={} complete={}", answered, unreachable.is_empty());
                self.obs.spans.finish_with(root, now, detail);
            }
        }
        Ok(SearchResponse {
            complete: unreachable.is_empty(),
            unreachable,
            hits: Vec::new(),
            stats,
            cursor: None,
        })
    }
}

impl Drop for ClusterSearchStream {
    /// A stream abandoned without [`ClusterSearchStream::finish`] still
    /// closes its node-side sessions, so no slot squats a session table
    /// until LRU eviction.
    fn drop(&mut self) {
        if !self.finished {
            for source in &self.sources {
                source.close_best_effort();
            }
        }
        // A stream abandoned mid-flight still closes its root span, so a
        // later `dump_trace` assembles a single-rooted tree.
        if let Some(root) = self.root.take() {
            if root.enabled() {
                self.obs.spans.finish_with(root, self.clock.now(), "abandoned".to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(n: u64) -> (AcgId, NodeId) {
        (AcgId::new(n), NodeId::new(n as u32))
    }

    #[test]
    fn route_cache_evicts_least_recently_used_not_oldest_inserted() {
        let mut cache = RouteCache::with_capacity(3);
        cache.insert(FileId::new(1), route(1));
        cache.insert(FileId::new(2), route(2));
        cache.insert(FileId::new(3), route(3));
        // Touch the oldest-inserted entry: it becomes most-recently-used.
        assert_eq!(cache.get(&FileId::new(1)), Some(route(1)));
        // Inserting a fourth must evict file 2 (the LRU), not file 1
        // (which FIFO would have evicted).
        cache.insert(FileId::new(4), route(4));
        assert_eq!(cache.len(), 3);
        assert!(cache.contains_key(&FileId::new(1)), "touched entry stays resident");
        assert!(!cache.contains_key(&FileId::new(2)), "LRU entry evicted");
        assert!(cache.contains_key(&FileId::new(3)));
        assert!(cache.contains_key(&FileId::new(4)));
    }

    #[test]
    fn route_cache_hot_set_survives_a_scan() {
        // A hot working set being re-hit must survive a one-shot scan of
        // cold routes through the cache (the LRU-over-FIFO payoff).
        let mut cache = RouteCache::with_capacity(8);
        for i in 0..4u64 {
            cache.insert(FileId::new(i), route(i));
        }
        for cold in 100..160u64 {
            for hot in 0..4u64 {
                assert!(cache.get(&FileId::new(hot)).is_some(), "hot route {hot} evicted");
            }
            cache.insert(FileId::new(cold), route(cold));
        }
        for hot in 0..4u64 {
            assert!(cache.contains_key(&FileId::new(hot)));
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn route_cache_order_queue_stays_bounded_under_touch_storms() {
        let mut cache = RouteCache::with_capacity(4);
        for i in 0..4u64 {
            cache.insert(FileId::new(i), route(i));
        }
        for _ in 0..10_000 {
            cache.get(&FileId::new(1));
        }
        assert!(
            cache.order.len() <= 2 * 4 + 1,
            "touch-on-hit must not grow the order queue unboundedly: {}",
            cache.order.len()
        );
        // Eviction order still correct after compaction.
        cache.insert(FileId::new(9), route(9));
        assert!(cache.contains_key(&FileId::new(1)), "the touched route survives");
    }

    #[test]
    fn route_cache_remove_then_reinsert_is_not_evicted_by_stale_order() {
        let mut cache = RouteCache::with_capacity(2);
        cache.insert(FileId::new(1), route(1));
        cache.remove(&FileId::new(1));
        cache.insert(FileId::new(1), route(7));
        cache.insert(FileId::new(2), route(2));
        // The stale order entry for the removed generation pops as a
        // no-op; the re-inserted route must still be live.
        cache.insert(FileId::new(3), route(3));
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains_key(&FileId::new(1)), "oldest live entry evicted");
        assert!(cache.contains_key(&FileId::new(2)));
        assert!(cache.contains_key(&FileId::new(3)));
    }

    #[test]
    fn route_cache_counters_track_every_transition() {
        let registry = MetricsRegistry::new();
        let mut cache = RouteCache::with_capacity(2);
        cache.register_metrics(&registry);
        let count = |name: &str| registry.counter(name).get();

        assert_eq!(cache.get(&FileId::new(1)), None);
        assert_eq!(count(names::ROUTE_CACHE_MISSES), 1);
        cache.insert(FileId::new(1), route(1));
        assert_eq!(cache.get(&FileId::new(1)), Some(route(1)));
        assert_eq!(count(names::ROUTE_CACHE_HITS), 1);

        // Filling past capacity evicts exactly one live route.
        cache.insert(FileId::new(2), route(2));
        cache.insert(FileId::new(3), route(3));
        assert_eq!(count(names::ROUTE_CACHE_EVICTIONS), 1);
        // A superseded order entry popping is NOT an eviction: re-touch
        // file 3 (new generation), then evict — still one live removal.
        assert_eq!(cache.get(&FileId::new(3)), Some(route(3)));
        cache.insert(FileId::new(4), route(4));
        assert_eq!(count(names::ROUTE_CACHE_EVICTIONS), 2);

        // A Master hint invalidates only resident routes.
        cache.invalidate(&FileId::new(3));
        cache.invalidate(&FileId::new(999));
        assert_eq!(count(names::ROUTE_CACHE_INVALIDATIONS), 1);
        // A stale-route drop is a plain remove — the batch retry path
        // discards routes the node rejected, which is not a Master hint.
        cache.insert(FileId::new(5), route(5));
        let invalidations_before = count(names::ROUTE_CACHE_INVALIDATIONS);
        cache.remove(&FileId::new(5));
        assert_eq!(count(names::ROUTE_CACHE_INVALIDATIONS), invalidations_before);
        // The `complete: false` hint path clears — every resident route
        // counts as invalidated.
        let resident = cache.len() as u64;
        assert!(resident > 0);
        cache.clear();
        assert_eq!(count(names::ROUTE_CACHE_INVALIDATIONS), invalidations_before + resident);
    }
}
