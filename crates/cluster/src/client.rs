//! The client-side File Query Engine (paper §IV "Client").
//!
//! The engine (1) captures file accesses and accumulates access-causality
//! edges in RAM, flushing ACG deltas to Index Nodes after I/O completes,
//! (2) batches file-indexing requests, asking the Master for ACG routes
//! and sending per-ACG batches to Index Nodes **in parallel**, and (3)
//! serves searches by fanning the query out to every Index Node holding a
//! relevant ACG and aggregating the returned file sets.

use std::collections::HashMap;
use std::sync::Arc;

use propeller_index::{FileRecord, IndexOp, IndexSpec};
use propeller_query::{Predicate, Query};
use propeller_sim::Clock;
use propeller_trace::CausalityTracker;
use propeller_types::{
    AcgId, Error, FileId, NodeId, OpenMode, ProcessId, Result, TraceEvent,
};

use crate::messages::{Request, Response};
use crate::rpc::Rpc;

/// A client handle to a Propeller cluster.
///
/// Cheap to create; each client keeps its own causality tracker and route
/// cache. See [`crate::Cluster::client`].
pub struct FileQueryEngine {
    rpc: Rpc,
    master: NodeId,
    index_nodes: Vec<NodeId>,
    clock: Arc<dyn Clock>,
    tracker: CausalityTracker,
    route_cache: HashMap<FileId, (AcgId, NodeId)>,
}

impl std::fmt::Debug for FileQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileQueryEngine")
            .field("master", &self.master)
            .field("cached_routes", &self.route_cache.len())
            .finish()
    }
}

impl FileQueryEngine {
    pub(crate) fn new(
        rpc: Rpc,
        master: NodeId,
        index_nodes: Vec<NodeId>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        FileQueryEngine {
            rpc,
            master,
            index_nodes,
            clock,
            tracker: CausalityTracker::new(),
            route_cache: HashMap::new(),
        }
    }

    /// Resolves routes for `files`, consulting the cache first and the
    /// Master for the rest (in one batch).
    fn resolve(&mut self, files: &[FileId]) -> Result<Vec<(FileId, AcgId, NodeId)>> {
        let missing: Vec<FileId> = files
            .iter()
            .copied()
            .filter(|f| !self.route_cache.contains_key(f))
            .collect();
        if !missing.is_empty() {
            match self.rpc.call(self.master, Request::ResolveFiles { files: missing })? {
                Response::Resolved(rows) => {
                    for (file, acg, node) in rows {
                        self.route_cache.insert(file, (acg, node));
                    }
                }
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            }
        }
        files
            .iter()
            .map(|f| {
                self.route_cache
                    .get(f)
                    .map(|&(a, n)| (*f, a, n))
                    .ok_or(Error::FileNotFound(*f))
            })
            .collect()
    }

    /// Indexes a batch of file records: routes are resolved through the
    /// Master, then per-(ACG, node) batches go to the Index Nodes in
    /// parallel — the paper's parallel file-indexing path.
    ///
    /// # Errors
    ///
    /// Fails if the Master or any involved Index Node is unreachable or
    /// rejects its batch.
    pub fn index_files(&mut self, records: Vec<FileRecord>) -> Result<()> {
        let files: Vec<FileId> = records.iter().map(|r| r.file).collect();
        let routes = self.resolve(&files)?;
        let mut by_target: HashMap<(NodeId, AcgId), Vec<IndexOp>> = HashMap::new();
        for (record, (_, acg, node)) in records.into_iter().zip(routes) {
            by_target.entry((node, acg)).or_default().push(IndexOp::Upsert(record));
        }
        self.send_batches(by_target)
    }

    /// Removes files from the index (file-deletion path).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FileQueryEngine::index_files`].
    pub fn remove_files(&mut self, files: Vec<FileId>) -> Result<()> {
        let routes = self.resolve(&files)?;
        let mut by_target: HashMap<(NodeId, AcgId), Vec<IndexOp>> = HashMap::new();
        for (file, acg, node) in routes {
            by_target.entry((node, acg)).or_default().push(IndexOp::Remove(file));
        }
        self.send_batches(by_target)
    }

    fn send_batches(&self, by_target: HashMap<(NodeId, AcgId), Vec<IndexOp>>) -> Result<()> {
        let now = self.clock.now();
        let results: Vec<Result<()>> = std::thread::scope(|s| {
            let handles: Vec<_> = by_target
                .into_iter()
                .map(|((node, acg), ops)| {
                    let rpc = self.rpc.clone();
                    s.spawn(move || {
                        rpc.call(node, Request::IndexBatch { acg, ops, now }).map(|_| ())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch thread")).collect()
        });
        results.into_iter().collect()
    }

    /// Searches the whole cluster: asks the Master for every ACG location,
    /// fans the query out to the owning Index Nodes in parallel, and
    /// aggregates the hits (paper §IV "Parallel File-Indexing and
    /// File-Search Operations").
    ///
    /// # Errors
    ///
    /// Fails if the Master or any involved Index Node is unreachable.
    pub fn search(&self, predicate: &Predicate) -> Result<Vec<FileId>> {
        let located = match self.rpc.call(self.master, Request::LocateAcgs)? {
            Response::Located(rows) => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut by_node: HashMap<NodeId, Vec<AcgId>> = HashMap::new();
        for (acg, node) in located {
            by_node.entry(node).or_default().push(acg);
        }
        let now = self.clock.now();
        let results: Vec<Result<Vec<FileId>>> = std::thread::scope(|s| {
            let handles: Vec<_> = by_node
                .into_iter()
                .map(|(node, acgs)| {
                    let rpc = self.rpc.clone();
                    let predicate = predicate.clone();
                    s.spawn(move || {
                        match rpc.call(node, Request::Search { acgs, predicate, now })? {
                            Response::SearchHits(hits) => Ok(hits),
                            other => Err(Error::Rpc(format!("unexpected response {other:?}"))),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("search thread")).collect()
        });
        let mut merged = Vec::new();
        for r in results {
            merged.extend(r?);
        }
        merged.sort_unstable();
        merged.dedup();
        Ok(merged)
    }

    /// Parses and runs a textual query (`"size>16m & mtime<1day"`).
    ///
    /// # Errors
    ///
    /// Fails on parse errors or any [`FileQueryEngine::search`] failure.
    pub fn search_text(&self, text: &str) -> Result<Vec<FileId>> {
        let query = Query::parse(text, self.clock.now())?;
        self.search(&query.predicate)
    }

    /// Creates a user-defined index cluster-wide: registered at the Master
    /// (name uniqueness), then broadcast to every Index Node.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or unreachable nodes.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        self.rpc.call(self.master, Request::CreateIndex { spec: spec.clone() })?;
        for &node in &self.index_nodes {
            self.rpc.call(node, Request::CreateIndex { spec: spec.clone() })?;
        }
        Ok(())
    }

    // ---- access capture ---------------------------------------------------

    /// Observes a raw trace event (the FUSE interposer feed).
    pub fn observe(&mut self, event: TraceEvent) {
        self.tracker.observe(event);
    }

    /// Convenience: observes an open at the current time.
    pub fn observe_open(&mut self, pid: ProcessId, file: FileId, mode: OpenMode) {
        let now = self.clock.now();
        self.tracker.open(pid, file, mode, now);
    }

    /// Marks a traced process as exited.
    pub fn end_process(&mut self, pid: ProcessId) {
        self.tracker.end_process(pid);
    }

    /// Flushes accumulated causality edges to the Index Nodes hosting the
    /// destination files' ACGs ("flushed to the Index Nodes after the I/O
    /// process finishes"). Returns the number of edges flushed.
    ///
    /// ACG flushes are *weakly consistent* by design: a failed flush drops
    /// the delta (it can only cost partitioning quality, never search
    /// correctness), so per-node errors are swallowed.
    ///
    /// # Errors
    ///
    /// Fails only if the Master cannot resolve routes.
    pub fn flush_acg(&mut self) -> Result<usize> {
        let updates = self.tracker.drain_updates();
        if updates.is_empty() {
            return Ok(0);
        }
        let dst_files: Vec<FileId> = updates.iter().map(|u| u.dst).collect();
        let routes = self.resolve(&dst_files)?;
        let route_of: HashMap<FileId, (AcgId, NodeId)> =
            routes.into_iter().map(|(f, a, n)| (f, (a, n))).collect();
        let mut by_target: HashMap<(NodeId, AcgId), Vec<propeller_trace::EdgeUpdate>> =
            HashMap::new();
        let total = updates.len();
        for update in updates {
            let (acg, node) = route_of[&update.dst];
            by_target.entry((node, acg)).or_default().push(update);
        }
        for ((node, acg), edges) in by_target {
            // Weak consistency: ignore delivery failures.
            let _ = self.rpc.call(node, Request::FlushAcgDelta { acg, edges });
        }
        Ok(total)
    }

    /// Number of causality edges currently buffered client-side.
    pub fn buffered_edges(&self) -> usize {
        self.tracker.edge_count()
    }
}
