//! The client-side File Query Engine (paper §IV "Client").
//!
//! The engine (1) captures file accesses and accumulates access-causality
//! edges in RAM, flushing ACG deltas to Index Nodes after I/O completes,
//! (2) batches file-indexing requests, asking the Master for ACG routes
//! and sending per-ACG batches to Index Nodes **in parallel**, and (3)
//! serves searches by fanning the query out to every Index Node holding a
//! relevant ACG and aggregating the returned file sets.

use std::collections::HashMap;
use std::sync::Arc;

use propeller_index::{FileRecord, IndexOp, IndexSpec};
use propeller_query::{
    merge_sorted_hits, next_cursor, FanOutPolicy, Hit, Predicate, Query, SearchRequest,
    SearchResponse, SearchStats,
};
use propeller_sim::Clock;
use propeller_trace::CausalityTracker;
use propeller_types::{AcgId, Error, FileId, NodeId, OpenMode, ProcessId, Result, TraceEvent};

use crate::messages::{Request, Response};
use crate::rpc::Rpc;

/// Default bound on a client's route cache (see [`RouteCache`]).
const ROUTE_CACHE_CAPACITY: usize = 65_536;

/// A capacity-bounded file → (ACG, node) route cache with **LRU**
/// eviction.
///
/// Clients resolve every indexed file through the Master once and cache
/// the route; unbounded, a long-lived client indexing a large namespace
/// grows this map without limit. Past `capacity` the cache evicts its
/// least-recently-*used* entry: every hit re-stamps the route with a
/// fresh generation (touch-on-hit), so hot working sets stay resident
/// while one-shot routes age out. An evicted route is simply re-resolved
/// through the Master on next use. Per-entry generations keep a
/// superseded order entry (the file was touched, invalidated or
/// re-resolved since) from evicting the live route; the order queue is
/// compacted once stale entries dominate it, so touch-heavy workloads
/// don't grow it without bound.
#[derive(Debug, Default)]
struct RouteCache {
    map: HashMap<FileId, ((AcgId, NodeId), u64)>,
    order: std::collections::VecDeque<(FileId, u64)>,
    gen: u64,
    capacity: usize,
}

impl RouteCache {
    fn with_capacity(capacity: usize) -> Self {
        RouteCache { capacity: capacity.max(1), ..RouteCache::default() }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains_key(&self, file: &FileId) -> bool {
        self.map.contains_key(file)
    }

    /// Looks a route up, re-stamping it as most-recently-used on hit.
    fn get(&mut self, file: &FileId) -> Option<(AcgId, NodeId)> {
        let (route, gen) = self.map.get_mut(file)?;
        let route = *route;
        self.gen += 1;
        *gen = self.gen;
        self.order.push_back((*file, self.gen));
        self.compact();
        Some(route)
    }

    fn insert(&mut self, file: FileId, route: (AcgId, NodeId)) {
        self.gen += 1;
        self.map.insert(file, (route, self.gen));
        self.order.push_back((file, self.gen));
        while self.map.len() > self.capacity {
            let Some((file, gen)) = self.order.pop_front() else { break };
            // Superseded order entries (the file was re-touched since)
            // pop as no-ops; only the live generation evicts.
            if self.map.get(&file).is_some_and(|(_, g)| *g == gen) {
                self.map.remove(&file);
            }
        }
        self.compact();
    }

    fn remove(&mut self, file: &FileId) {
        // The stale order entry stays behind and pops as a no-op.
        self.map.remove(file);
    }

    /// Rebuilds the order queue from the live generations once stale
    /// (superseded) entries outnumber them 2:1 — amortized O(1) per
    /// touch, and the queue stays O(capacity).
    fn compact(&mut self) {
        if self.order.len() <= self.map.len().max(self.capacity).saturating_mul(2) {
            return;
        }
        let mut live: Vec<(FileId, u64)> =
            self.map.iter().map(|(&file, &(_, gen))| (file, gen)).collect();
        live.sort_unstable_by_key(|&(_, gen)| gen);
        self.order = live.into();
    }
}

/// A client handle to a Propeller cluster.
///
/// Cheap to create; each client keeps its own causality tracker and route
/// cache. See [`crate::Cluster::client`].
pub struct FileQueryEngine {
    rpc: Rpc,
    master: NodeId,
    index_nodes: Vec<NodeId>,
    clock: Arc<dyn Clock>,
    tracker: CausalityTracker,
    route_cache: RouteCache,
}

impl std::fmt::Debug for FileQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileQueryEngine")
            .field("master", &self.master)
            .field("cached_routes", &self.route_cache.len())
            .finish()
    }
}

impl FileQueryEngine {
    pub(crate) fn new(
        rpc: Rpc,
        master: NodeId,
        index_nodes: Vec<NodeId>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        FileQueryEngine {
            rpc,
            master,
            index_nodes,
            clock,
            tracker: CausalityTracker::new(),
            route_cache: RouteCache::with_capacity(ROUTE_CACHE_CAPACITY),
        }
    }

    /// Rebounds the route cache (builder style). Routes already cached are
    /// dropped; they re-resolve through the Master on next use.
    #[must_use]
    pub fn with_route_cache_capacity(mut self, capacity: usize) -> Self {
        self.route_cache = RouteCache::with_capacity(capacity);
        self
    }

    /// Number of file routes currently cached (bounded by the configured
    /// capacity).
    pub fn cached_routes(&self) -> usize {
        self.route_cache.len()
    }

    /// Resolves routes for `files`, consulting the cache first and the
    /// Master for the rest (in one batch). Freshly resolved rows are kept
    /// aside for the answer: a batch larger than the cache's capacity may
    /// evict its own earliest rows while being cached.
    fn resolve(&mut self, files: &[FileId]) -> Result<Vec<(FileId, AcgId, NodeId)>> {
        // Snapshot the batch's cache hits up front: caching the freshly
        // resolved rows below may FIFO-evict this very batch's hits.
        let mut routes: HashMap<FileId, (AcgId, NodeId)> = HashMap::with_capacity(files.len());
        for f in files {
            if let Some(route) = self.route_cache.get(f) {
                routes.insert(*f, route);
            }
        }
        let missing: Vec<FileId> =
            files.iter().copied().filter(|f| !routes.contains_key(f)).collect();
        if !missing.is_empty() {
            match self.rpc.call(self.master, Request::ResolveFiles { files: missing })? {
                Response::Resolved(rows) => {
                    for (file, acg, node) in rows {
                        self.route_cache.insert(file, (acg, node));
                        routes.insert(file, (acg, node));
                    }
                }
                other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
            }
        }
        files
            .iter()
            .map(|f| routes.get(f).map(|&(a, n)| (*f, a, n)).ok_or(Error::FileNotFound(*f)))
            .collect()
    }

    /// Indexes a batch of file records: routes are resolved through the
    /// Master, then per-(ACG, node) batches go to the Index Nodes in
    /// parallel — the paper's parallel file-indexing path.
    ///
    /// Cached routes can go stale after an ACG split/migration; a batch
    /// rejected with [`Error::StaleRoute`] drops the offending cache
    /// entries, re-resolves through the Master and retries once.
    ///
    /// # Errors
    ///
    /// Fails if the Master or any involved Index Node is unreachable or
    /// rejects its batch (after the one stale-route retry).
    pub fn index_files(&mut self, records: Vec<FileRecord>) -> Result<()> {
        self.apply_ops(records.into_iter().map(IndexOp::Upsert).collect())
    }

    /// Removes files from the index (file-deletion path).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FileQueryEngine::index_files`].
    pub fn remove_files(&mut self, files: Vec<FileId>) -> Result<()> {
        self.apply_ops(files.into_iter().map(IndexOp::Remove).collect())
    }

    /// Routes, batches and dispatches index ops, retrying once with fresh
    /// routes when an Index Node reports a *cached* route moved. Only
    /// batches that used the cache keep a copy of their ops for the retry
    /// — freshly resolved batches ship without any extra clone.
    ///
    /// A freshly resolved route can still race an in-flight split (the
    /// window between `ExtractAcgPart` and `CommitSplit` at the Master):
    /// that narrow case surfaces as [`Error::StaleRoute`] and the caller
    /// may simply retry the batch.
    fn apply_ops(&mut self, ops: Vec<IndexOp>) -> Result<()> {
        let files: Vec<FileId> = ops.iter().map(IndexOp::file).collect();
        let cached: std::collections::HashSet<FileId> =
            files.iter().copied().filter(|f| self.route_cache.contains_key(f)).collect();
        let routes = self.resolve(&files)?;
        let mut by_target: HashMap<(NodeId, AcgId), (Vec<IndexOp>, bool)> = HashMap::new();
        for (op, (file, acg, node)) in ops.into_iter().zip(routes) {
            let entry = by_target.entry((node, acg)).or_default();
            entry.1 |= cached.contains(&file);
            entry.0.push(op);
        }
        let failures = self.dispatch_batches(by_target);
        if failures.is_empty() {
            return Ok(());
        }
        // Stale cached routes are retried after invalidation; anything
        // else is fatal right away.
        let mut retry_ops = Vec::new();
        for (ops, err) in failures {
            match err {
                Error::StaleRoute { .. } if !ops.is_empty() => retry_ops.extend(ops),
                other => return Err(other),
            }
        }
        let retry_files: Vec<FileId> = retry_ops.iter().map(IndexOp::file).collect();
        for file in &retry_files {
            self.route_cache.remove(file);
        }
        let routes = self.resolve(&retry_files)?;
        let mut by_target: HashMap<(NodeId, AcgId), (Vec<IndexOp>, bool)> = HashMap::new();
        for (op, (_, acg, node)) in retry_ops.into_iter().zip(routes) {
            by_target.entry((node, acg)).or_default().0.push(op);
        }
        match self.dispatch_batches(by_target).pop() {
            None => Ok(()),
            Some((_, err)) => Err(err),
        }
    }

    /// Sends the per-(node, ACG) batches in parallel, returning the failed
    /// batches and their errors. Batches flagged as cache-routed return
    /// their ops (kept for the stale-route retry); others return empty.
    fn dispatch_batches(
        &self,
        by_target: HashMap<(NodeId, AcgId), (Vec<IndexOp>, bool)>,
    ) -> Vec<(Vec<IndexOp>, Error)> {
        let now = self.clock.now();
        std::thread::scope(|s| {
            let handles: Vec<_> = by_target
                .into_iter()
                .map(|((node, acg), (ops, cached))| {
                    let rpc = self.rpc.clone();
                    s.spawn(move || {
                        let keep = if cached { ops.clone() } else { Vec::new() };
                        let result = rpc.call(node, Request::IndexBatch { acg, ops, now });
                        (keep, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| {
                    let (keep, result) = h.join().expect("batch thread");
                    result.err().map(|e| (keep, e))
                })
                .collect()
        })
    }

    /// Runs a full [`SearchRequest`] against the cluster — the canonical
    /// search entry point.
    ///
    /// The engine asks the Master for every ACG location, fans the request
    /// out to the owning Index Nodes in parallel (each answers with its
    /// local top-k in request sort order), k-way merges the per-node lists
    /// and attaches merged [`SearchStats`], a completeness marker and a
    /// continuation cursor.
    ///
    /// # Errors
    ///
    /// Under [`FanOutPolicy::RequireAll`] any unreachable node fails the
    /// search. Under [`FanOutPolicy::AllowPartial`] node failures are
    /// tolerated as long as at least `min_nodes` nodes still answered;
    /// below that quorum the first node error is returned. Validation
    /// errors surface as [`Error::InvalidQuery`].
    pub fn search_with(&self, request: &SearchRequest) -> Result<SearchResponse> {
        request.validate()?;
        let located = match self.rpc.call(self.master, Request::LocateAcgs)? {
            Response::Located(rows) => rows,
            other => return Err(Error::Rpc(format!("unexpected response {other:?}"))),
        };
        let mut by_node: HashMap<NodeId, Vec<AcgId>> = HashMap::new();
        for (acg, node) in located {
            by_node.entry(node).or_default().push(acg);
        }
        if by_node.is_empty() {
            return Ok(SearchResponse::empty());
        }
        let now = self.clock.now();
        type NodeResult = (NodeId, Result<(Vec<Hit>, SearchStats)>);
        let results: Vec<NodeResult> = std::thread::scope(|s| {
            let handles: Vec<_> = by_node
                .into_iter()
                .map(|(node, acgs)| {
                    let rpc = self.rpc.clone();
                    let request = request.clone();
                    s.spawn(move || {
                        let result = match rpc.call(node, Request::Search { acgs, request, now }) {
                            Ok(Response::SearchHits { hits, stats }) => Ok((hits, stats)),
                            Ok(other) => Err(Error::Rpc(format!("unexpected response {other:?}"))),
                            Err(e) => Err(e),
                        };
                        (node, result)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("search thread")).collect()
        });

        let mut lists = Vec::new();
        let mut stats = SearchStats::default();
        let mut failed: Vec<(NodeId, Error)> = Vec::new();
        for (node, result) in results {
            match result {
                Ok((hits, node_stats)) => {
                    stats.absorb(node_stats);
                    lists.push(hits);
                }
                Err(e) => match request.fan_out {
                    FanOutPolicy::RequireAll => return Err(e),
                    FanOutPolicy::AllowPartial { .. } => failed.push((node, e)),
                },
            }
        }
        // A search with no failures is complete regardless of how few
        // nodes held relevant ACGs; the quorum only gates degraded runs.
        if let FanOutPolicy::AllowPartial { min_nodes } = request.fan_out {
            if !failed.is_empty() && lists.len() < min_nodes {
                return Err(failed.into_iter().next().map(|(_, e)| e).unwrap_or_else(|| {
                    Error::Rpc(format!(
                        "partial search needs {min_nodes} answering nodes, got {}",
                        lists.len()
                    ))
                }));
            }
        }

        let hits = merge_sorted_hits(lists, &request.sort, request.limit);
        // `stats.elapsed` is the max per-node service time (each node
        // measures against its own injected clock; nodes ran in parallel,
        // so the slowest one is what this client waited for).
        let mut unreachable: Vec<NodeId> = failed.into_iter().map(|(n, _)| n).collect();
        unreachable.sort_unstable();
        // A continuation cursor is only honest on a *complete* page:
        // paginating past an incomplete one would resume strictly after
        // its last hit and permanently skip every hit the unreachable
        // nodes held that sorted before the cursor. Incomplete responses
        // therefore carry no cursor — the caller retries the same page
        // (or a fresh search) once the nodes recover.
        let cursor = if unreachable.is_empty() { next_cursor(&hits, request.limit) } else { None };
        Ok(SearchResponse { complete: unreachable.is_empty(), unreachable, hits, stats, cursor })
    }

    /// Classic searches: the whole matching id set, sorted by file id
    /// (a thin wrapper over [`FileQueryEngine::search_with`]).
    ///
    /// # Errors
    ///
    /// Fails if the Master or any involved Index Node is unreachable.
    pub fn search(&self, predicate: &Predicate) -> Result<Vec<FileId>> {
        Ok(self.search_with(&SearchRequest::new(predicate.clone()))?.file_ids())
    }

    /// Parses and runs a textual query (`"size>16m & mtime<1day"`).
    ///
    /// # Errors
    ///
    /// Fails on parse errors or any [`FileQueryEngine::search`] failure.
    pub fn search_text(&self, text: &str) -> Result<Vec<FileId>> {
        let query = Query::parse(text, self.clock.now())?;
        self.search(&query.predicate)
    }

    /// Creates a user-defined index cluster-wide: registered at the Master
    /// (name uniqueness), then broadcast best-effort to every Index Node.
    /// A partial broadcast is rolled back — the spec is dropped from the
    /// nodes that did receive it and unregistered at the Master — and
    /// reported as [`Error::PartialIndexBroadcast`] listing the nodes that
    /// missed it, so the cluster is never left half-indexed.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names ([`Error::IndexExists`]) or with
    /// [`Error::PartialIndexBroadcast`] when any node was unreachable.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        self.rpc.call(self.master, Request::CreateIndex { spec: spec.clone() })?;
        let mut missed = Vec::new();
        let mut rejected: Option<Error> = None;
        for &node in &self.index_nodes {
            match self.rpc.call(node, Request::CreateIndex { spec: spec.clone() }) {
                Ok(_) => {}
                // Transport failures mean the node never saw the spec; any
                // other error is the node *rejecting* the spec — that is
                // the error the caller should see, not a broadcast report.
                Err(Error::NodeUnavailable(_) | Error::Rpc(_)) => missed.push(node),
                Err(e) => {
                    rejected.get_or_insert(e);
                }
            }
        }
        if missed.is_empty() && rejected.is_none() {
            return Ok(());
        }
        // Roll back: best-effort drop on *every* node — including the
        // "missed" ones, because a timed-out call may still have been
        // applied after the timeout fired — then unregister at the Master
        // so the name can be retried. (Nodes that rejected the spec
        // rolled their own groups back.)
        for &node in &self.index_nodes {
            let _ = self.rpc.call(node, Request::DropIndex { name: spec.name.clone() });
        }
        let _ = self.rpc.call(self.master, Request::DropIndex { name: spec.name.clone() });
        match rejected {
            Some(e) => Err(e),
            None => Err(Error::PartialIndexBroadcast { index: spec.name, missed }),
        }
    }

    // ---- access capture ---------------------------------------------------

    /// Observes a raw trace event (the FUSE interposer feed).
    pub fn observe(&mut self, event: TraceEvent) {
        self.tracker.observe(event);
    }

    /// Convenience: observes an open at the current time.
    pub fn observe_open(&mut self, pid: ProcessId, file: FileId, mode: OpenMode) {
        let now = self.clock.now();
        self.tracker.open(pid, file, mode, now);
    }

    /// Marks a traced process as exited.
    pub fn end_process(&mut self, pid: ProcessId) {
        self.tracker.end_process(pid);
    }

    /// Flushes accumulated causality edges to the Index Nodes hosting the
    /// destination files' ACGs ("flushed to the Index Nodes after the I/O
    /// process finishes"). Returns the number of edges flushed.
    ///
    /// ACG flushes are *weakly consistent* by design: a failed flush drops
    /// the delta (it can only cost partitioning quality, never search
    /// correctness), so per-node errors are swallowed.
    ///
    /// # Errors
    ///
    /// Fails only if the Master cannot resolve routes.
    pub fn flush_acg(&mut self) -> Result<usize> {
        let updates = self.tracker.drain_updates();
        if updates.is_empty() {
            return Ok(0);
        }
        let dst_files: Vec<FileId> = updates.iter().map(|u| u.dst).collect();
        let routes = self.resolve(&dst_files)?;
        let route_of: HashMap<FileId, (AcgId, NodeId)> =
            routes.into_iter().map(|(f, a, n)| (f, (a, n))).collect();
        let mut by_target: HashMap<(NodeId, AcgId), Vec<propeller_trace::EdgeUpdate>> =
            HashMap::new();
        let total = updates.len();
        for update in updates {
            let (acg, node) = route_of[&update.dst];
            by_target.entry((node, acg)).or_default().push(update);
        }
        for ((node, acg), edges) in by_target {
            // Weak consistency: ignore delivery failures.
            let _ = self.rpc.call(node, Request::FlushAcgDelta { acg, edges });
        }
        Ok(total)
    }

    /// Number of causality edges currently buffered client-side.
    pub fn buffered_edges(&self) -> usize {
        self.tracker.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(n: u64) -> (AcgId, NodeId) {
        (AcgId::new(n), NodeId::new(n as u32))
    }

    #[test]
    fn route_cache_evicts_least_recently_used_not_oldest_inserted() {
        let mut cache = RouteCache::with_capacity(3);
        cache.insert(FileId::new(1), route(1));
        cache.insert(FileId::new(2), route(2));
        cache.insert(FileId::new(3), route(3));
        // Touch the oldest-inserted entry: it becomes most-recently-used.
        assert_eq!(cache.get(&FileId::new(1)), Some(route(1)));
        // Inserting a fourth must evict file 2 (the LRU), not file 1
        // (which FIFO would have evicted).
        cache.insert(FileId::new(4), route(4));
        assert_eq!(cache.len(), 3);
        assert!(cache.contains_key(&FileId::new(1)), "touched entry stays resident");
        assert!(!cache.contains_key(&FileId::new(2)), "LRU entry evicted");
        assert!(cache.contains_key(&FileId::new(3)));
        assert!(cache.contains_key(&FileId::new(4)));
    }

    #[test]
    fn route_cache_hot_set_survives_a_scan() {
        // A hot working set being re-hit must survive a one-shot scan of
        // cold routes through the cache (the LRU-over-FIFO payoff).
        let mut cache = RouteCache::with_capacity(8);
        for i in 0..4u64 {
            cache.insert(FileId::new(i), route(i));
        }
        for cold in 100..160u64 {
            for hot in 0..4u64 {
                assert!(cache.get(&FileId::new(hot)).is_some(), "hot route {hot} evicted");
            }
            cache.insert(FileId::new(cold), route(cold));
        }
        for hot in 0..4u64 {
            assert!(cache.contains_key(&FileId::new(hot)));
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn route_cache_order_queue_stays_bounded_under_touch_storms() {
        let mut cache = RouteCache::with_capacity(4);
        for i in 0..4u64 {
            cache.insert(FileId::new(i), route(i));
        }
        for _ in 0..10_000 {
            cache.get(&FileId::new(1));
        }
        assert!(
            cache.order.len() <= 2 * 4 + 1,
            "touch-on-hit must not grow the order queue unboundedly: {}",
            cache.order.len()
        );
        // Eviction order still correct after compaction.
        cache.insert(FileId::new(9), route(9));
        assert!(cache.contains_key(&FileId::new(1)), "the touched route survives");
    }

    #[test]
    fn route_cache_remove_then_reinsert_is_not_evicted_by_stale_order() {
        let mut cache = RouteCache::with_capacity(2);
        cache.insert(FileId::new(1), route(1));
        cache.remove(&FileId::new(1));
        cache.insert(FileId::new(1), route(7));
        cache.insert(FileId::new(2), route(2));
        // The stale order entry for the removed generation pops as a
        // no-op; the re-inserted route must still be live.
        cache.insert(FileId::new(3), route(3));
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains_key(&FileId::new(1)), "oldest live entry evicted");
        assert!(cache.contains_key(&FileId::new(2)));
        assert!(cache.contains_key(&FileId::new(3)));
    }
}
