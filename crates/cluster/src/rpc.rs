//! The in-process RPC fabric.
//!
//! Every node (Master or Index Node) owns a mailbox drained by its own
//! thread, so node state needs no locking — the actor pattern. Callers do
//! synchronous request/response through [`Rpc::call`]; an optional GbE
//! cost model charges virtual time per message for modeled-mode runs.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use propeller_sim::{NodeSlowdowns, SimClock};
use propeller_storage::Network;
use propeller_types::{Error, NodeId, Result};

use crate::messages::{Request, Response};

/// A message in flight: the request plus its reply channel.
pub(crate) type Envelope = (Request, Sender<Response>);

#[derive(Default)]
struct Registry {
    mailboxes: HashMap<NodeId, Sender<Envelope>>,
}

/// Handle to the cluster fabric. Cloning shares the same fabric.
#[derive(Clone)]
pub struct Rpc {
    registry: Arc<RwLock<Registry>>,
    /// Virtual network accounting: (model, clock, rng-state).
    charge: Option<Arc<(Network, SimClock, Mutex<rand::rngs::StdRng>)>>,
    /// Injected per-node delivery delays (tail-latency experiments) and
    /// the rng that samples them.
    slowdowns: Arc<NodeSlowdowns>,
    slow_rng: Arc<Mutex<rand::rngs::StdRng>>,
    /// Lazily-started executor for delayed async sends: one long-lived
    /// thread sleeps out each injected delay, keeping thread creation
    /// off the caller's critical path (a per-send spawn would charge
    /// spawn latency to exactly the hedged opens the delay simulates a
    /// slow node for).
    delayer: Arc<Mutex<Option<Sender<DelayedSend>>>>,
}

/// One async send waiting out its injected delivery delay.
struct DelayedSend {
    deadline: std::time::Instant,
    mailbox: Sender<Envelope>,
    req: Request,
    reply_tx: Sender<Response>,
}

impl std::fmt::Debug for Rpc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rpc")
            .field("nodes", &self.registry.read().mailboxes.len())
            .field("charging", &self.charge.is_some())
            .finish()
    }
}

impl Rpc {
    /// A fabric with free (uncharged) message delivery — the right choice
    /// for wall-clock measured runs.
    pub fn new() -> Self {
        Rpc {
            registry: Arc::new(RwLock::new(Registry::default())),
            charge: None,
            slowdowns: Arc::new(NodeSlowdowns::new()),
            slow_rng: Arc::new(Mutex::new(
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x510),
            )),
            delayer: Arc::new(Mutex::new(None)),
        }
    }

    /// A fabric that charges each message's cost to a virtual clock.
    pub fn with_network(network: Network, clock: SimClock, seed: u64) -> Self {
        Rpc {
            registry: Arc::new(RwLock::new(Registry::default())),
            charge: Some(Arc::new((
                network,
                clock,
                Mutex::new(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)),
            ))),
            slowdowns: Arc::new(NodeSlowdowns::new()),
            slow_rng: Arc::new(Mutex::new(
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x510),
            )),
            delayer: Arc::new(Mutex::new(None)),
        }
    }

    /// The fabric's injected-slowdown table. Setting a [`Latency`]
    /// distribution for a node stalls every delivery to it (on the wall
    /// clock) until cleared — the knob tail-tolerance tests and benches
    /// turn to make one replica slow.
    ///
    /// [`Latency`]: propeller_sim::Latency
    pub fn slowdowns(&self) -> &NodeSlowdowns {
        &self.slowdowns
    }

    /// Stalls the calling thread for the sampled slowdown of `node`, if
    /// one is injected. No-op (one cheap read-lock) otherwise.
    fn maybe_stall(&self, node: NodeId) {
        if self.slowdowns.is_empty() {
            return;
        }
        let delay = self.slowdowns.sample(node, &mut *self.slow_rng.lock());
        if let Some(delay) = delay {
            std::thread::sleep(delay.to_std());
        }
    }

    /// Registers a node, returning the receiver its thread should drain.
    pub(crate) fn register(&self, node: NodeId) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.registry.write().mailboxes.insert(node, tx);
        rx
    }

    /// Removes a node from the fabric (failure injection in tests).
    pub fn deregister(&self, node: NodeId) {
        self.registry.write().mailboxes.remove(&node);
    }

    /// Rough wire size of a request, for the network cost model.
    fn wire_size(req: &Request) -> u64 {
        match req {
            Request::IndexBatch { ops, .. } | Request::ReplicateBatch { ops, .. } => {
                64 + 128 * ops.len() as u64
            }
            Request::SeedAcg { records, .. } => 64 + 160 * records.len() as u64,
            Request::FetchAcgFrames { .. } | Request::AcgLsns => 64,
            Request::ResolveFiles { files, .. } => 64 + 12 * files.len() as u64,
            // Session control messages are tiny; the hits ride responses.
            Request::PullHits { .. } | Request::CloseSearch { .. } => 64,
            Request::FlushAcgDelta { edges, .. } => 64 + 20 * edges.len() as u64,
            Request::InstallAcg { records, edges, .. } => {
                64 + 160 * records.len() as u64 + 20 * edges.len() as u64
            }
            Request::ExtractAcgPart { files, .. } => 64 + 12 * files.len() as u64,
            Request::BindFiles { files, .. } => 64 + 12 * files.len() as u64,
            _ => 128,
        }
    }

    fn charge_message(&self, bytes: u64) {
        if let Some(charge) = &self.charge {
            let (network, clock, rng) = (&charge.0, &charge.1, &charge.2);
            let cost = network.message_cost(bytes, &mut *rng.lock());
            clock.advance(cost);
        }
    }

    /// Sends `req` to `node` and waits for its response.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeUnavailable`] for unknown nodes and
    /// [`Error::Rpc`] when the node died mid-call, plus any [`Error`] the
    /// handler itself reports via [`Response::Err`].
    pub fn call(&self, node: NodeId, req: Request) -> Result<Response> {
        let mailbox = self
            .registry
            .read()
            .mailboxes
            .get(&node)
            .cloned()
            .ok_or(Error::NodeUnavailable(node))?;
        self.charge_message(Self::wire_size(&req));
        self.maybe_stall(node);
        let (reply_tx, reply_rx) = bounded(1);
        mailbox.send((req, reply_tx)).map_err(|_| Error::NodeUnavailable(node))?;
        let resp = reply_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .map_err(|_| Error::Rpc(format!("timeout waiting for {node}")))?;
        self.charge_message(128);
        resp.into_result()
    }

    /// Sends `req` to `node` and returns the reply channel instead of
    /// blocking on it — the building block for hedged requests, where the
    /// caller waits on the first of several outstanding replies and
    /// abandons the rest. If `node` has an injected slowdown, the stall
    /// happens on a relay thread so the *caller* keeps running (that is
    /// the whole point of hedging). A dropped channel (node died mid-call)
    /// surfaces as a receive error on the returned receiver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeUnavailable`] for unknown nodes.
    pub fn call_async(&self, node: NodeId, req: Request) -> Result<Receiver<Response>> {
        let mailbox = self
            .registry
            .read()
            .mailboxes
            .get(&node)
            .cloned()
            .ok_or(Error::NodeUnavailable(node))?;
        self.charge_message(Self::wire_size(&req));
        let (reply_tx, reply_rx) = bounded(1);
        let delay = if self.slowdowns.is_empty() {
            None
        } else {
            self.slowdowns.sample(node, &mut *self.slow_rng.lock())
        };
        match delay {
            None => mailbox.send((req, reply_tx)).map_err(|_| Error::NodeUnavailable(node))?,
            // A delayed send goes to the long-lived delay executor. A
            // send failure there drops `reply_tx`, which the caller
            // observes as a dead-node receive error.
            Some(delay) => {
                let deadline = std::time::Instant::now() + delay.to_std();
                let _ = self.delayer_tx().send(DelayedSend { deadline, mailbox, req, reply_tx });
            }
        }
        Ok(reply_rx)
    }

    /// The delay-executor input, starting its thread on first use. FIFO
    /// processing is safe: a later-queued send with an earlier deadline
    /// only waits longer — injected delays are never shortened.
    fn delayer_tx(&self) -> Sender<DelayedSend> {
        let mut guard = self.delayer.lock();
        if let Some(tx) = guard.as_ref() {
            return tx.clone();
        }
        let (tx, rx) = unbounded::<DelayedSend>();
        std::thread::spawn(move || {
            while let Ok(send) = rx.recv() {
                let now = std::time::Instant::now();
                if send.deadline > now {
                    std::thread::sleep(send.deadline - now);
                }
                let _ = send.mailbox.send((send.req, send.reply_tx));
            }
        });
        *guard = Some(tx.clone());
        tx
    }

    /// Sends `req` without waiting for the reply (fire-and-forget).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeUnavailable`] for unknown nodes.
    pub fn cast(&self, node: NodeId, req: Request) -> Result<()> {
        let mailbox = self
            .registry
            .read()
            .mailboxes
            .get(&node)
            .cloned()
            .ok_or(Error::NodeUnavailable(node))?;
        self.charge_message(Self::wire_size(&req));
        let (reply_tx, _reply_rx) = bounded(1);
        mailbox.send((req, reply_tx)).map_err(|_| Error::NodeUnavailable(node))?;
        Ok(())
    }

    /// The registered node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.registry.read().mailboxes.keys().copied().collect();
        v.sort();
        v
    }
}

impl Default for Rpc {
    fn default() -> Self {
        Rpc::new()
    }
}

/// Runs a node actor: drains the mailbox, feeding each request to the
/// handler, until a `Shutdown` request arrives (which is acknowledged
/// before the loop exits).
pub(crate) fn run_actor<H>(rx: Receiver<Envelope>, mut handler: H)
where
    H: FnMut(Request) -> Response,
{
    while let Ok((req, reply)) = rx.recv() {
        let is_shutdown = matches!(req, Request::Shutdown);
        let resp = if is_shutdown { Response::Ok } else { handler(req) };
        let _ = reply.send(resp);
        if is_shutdown {
            break;
        }
    }
}

/// Runs a node actor whose handler may defer replies to worker threads:
/// each request comes with a `reply` closure owning the envelope's
/// response channel, so the handler can return before the response exists
/// and keep draining the mailbox (searches execute off-actor; ingest
/// proceeds meanwhile). `Shutdown` is acknowledged inline before the loop
/// exits.
pub(crate) fn run_actor_deferred<H>(rx: Receiver<Envelope>, mut handler: H)
where
    H: FnMut(Request, Box<dyn FnOnce(Response) + Send>),
{
    while let Ok((req, reply)) = rx.recv() {
        if matches!(req, Request::Shutdown) {
            let _ = reply.send(Response::Ok);
            break;
        }
        handler(
            req,
            Box::new(move |resp| {
                let _ = reply.send(resp);
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_node(rpc: &Rpc, id: NodeId) -> std::thread::JoinHandle<()> {
        let rx = rpc.register(id);
        std::thread::spawn(move || {
            run_actor(rx, |req| match req {
                Request::LocateAcgs => Response::Located(vec![]),
                _ => Response::Ok,
            })
        })
    }

    #[test]
    fn call_round_trip() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        let resp = rpc.call(NodeId::new(1), Request::LocateAcgs).unwrap();
        assert!(matches!(resp, Response::Located(_)));
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn unknown_node_is_an_error() {
        let rpc = Rpc::new();
        let err = rpc.call(NodeId::new(99), Request::LocateAcgs);
        assert!(matches!(err, Err(Error::NodeUnavailable(_))));
    }

    #[test]
    fn concurrent_callers_are_serialized_by_the_actor() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let rpc = rpc.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        rpc.call(NodeId::new(1), Request::LocateAcgs).unwrap();
                    }
                });
            }
        });
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn network_charging_advances_virtual_clock() {
        let clock = SimClock::new();
        let rpc = Rpc::with_network(Network::gigabit_ethernet(), clock.clone(), 7);
        let h = echo_node(&rpc, NodeId::new(1));
        let before = clock.now();
        rpc.call(NodeId::new(1), Request::LocateAcgs).unwrap();
        assert!(clock.now() > before, "message cost must be charged");
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn call_async_delivers_the_reply_on_the_channel() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        let rx = rpc.call_async(NodeId::new(1), Request::LocateAcgs).unwrap();
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(matches!(resp, Response::Located(_)));
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn injected_slowdown_stalls_delivery_but_not_the_async_caller() {
        use propeller_sim::Latency;
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        rpc.slowdowns()
            .set(NodeId::new(1), Latency::constant(propeller_types::Duration::from_millis(80)));
        let started = std::time::Instant::now();
        let rx = rpc.call_async(NodeId::new(1), Request::LocateAcgs).unwrap();
        assert!(started.elapsed() < std::time::Duration::from_millis(60), "caller must not stall");
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            Response::Located(_)
        ));
        assert!(started.elapsed() >= std::time::Duration::from_millis(80));
        rpc.slowdowns().clear(NodeId::new(1));
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn deregistered_node_unreachable() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
        rpc.deregister(NodeId::new(1));
        assert!(rpc.call(NodeId::new(1), Request::LocateAcgs).is_err());
    }
}
