//! The in-process RPC fabric.
//!
//! Every node (Master or Index Node) owns a mailbox drained by its own
//! thread, so node state needs no locking — the actor pattern. Callers do
//! synchronous request/response through [`Rpc::call`]; an optional GbE
//! cost model charges virtual time per message for modeled-mode runs.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use propeller_sim::SimClock;
use propeller_storage::Network;
use propeller_types::{Error, NodeId, Result};

use crate::messages::{Request, Response};

/// A message in flight: the request plus its reply channel.
pub(crate) type Envelope = (Request, Sender<Response>);

#[derive(Default)]
struct Registry {
    mailboxes: HashMap<NodeId, Sender<Envelope>>,
}

/// Handle to the cluster fabric. Cloning shares the same fabric.
#[derive(Clone)]
pub struct Rpc {
    registry: Arc<RwLock<Registry>>,
    /// Virtual network accounting: (model, clock, rng-state).
    charge: Option<Arc<(Network, SimClock, Mutex<rand::rngs::StdRng>)>>,
}

impl std::fmt::Debug for Rpc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rpc")
            .field("nodes", &self.registry.read().mailboxes.len())
            .field("charging", &self.charge.is_some())
            .finish()
    }
}

impl Rpc {
    /// A fabric with free (uncharged) message delivery — the right choice
    /// for wall-clock measured runs.
    pub fn new() -> Self {
        Rpc { registry: Arc::new(RwLock::new(Registry::default())), charge: None }
    }

    /// A fabric that charges each message's cost to a virtual clock.
    pub fn with_network(network: Network, clock: SimClock, seed: u64) -> Self {
        Rpc {
            registry: Arc::new(RwLock::new(Registry::default())),
            charge: Some(Arc::new((
                network,
                clock,
                Mutex::new(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)),
            ))),
        }
    }

    /// Registers a node, returning the receiver its thread should drain.
    pub(crate) fn register(&self, node: NodeId) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.registry.write().mailboxes.insert(node, tx);
        rx
    }

    /// Removes a node from the fabric (failure injection in tests).
    pub fn deregister(&self, node: NodeId) {
        self.registry.write().mailboxes.remove(&node);
    }

    /// Rough wire size of a request, for the network cost model.
    fn wire_size(req: &Request) -> u64 {
        match req {
            Request::IndexBatch { ops, .. } => 64 + 128 * ops.len() as u64,
            Request::ResolveFiles { files, .. } => 64 + 12 * files.len() as u64,
            // Session control messages are tiny; the hits ride responses.
            Request::PullHits { .. } | Request::CloseSearch { .. } => 64,
            Request::FlushAcgDelta { edges, .. } => 64 + 20 * edges.len() as u64,
            Request::InstallAcg { records, edges, .. } => {
                64 + 160 * records.len() as u64 + 20 * edges.len() as u64
            }
            Request::ExtractAcgPart { files, .. } => 64 + 12 * files.len() as u64,
            Request::BindFiles { files, .. } => 64 + 12 * files.len() as u64,
            _ => 128,
        }
    }

    fn charge_message(&self, bytes: u64) {
        if let Some(charge) = &self.charge {
            let (network, clock, rng) = (&charge.0, &charge.1, &charge.2);
            let cost = network.message_cost(bytes, &mut *rng.lock());
            clock.advance(cost);
        }
    }

    /// Sends `req` to `node` and waits for its response.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeUnavailable`] for unknown nodes and
    /// [`Error::Rpc`] when the node died mid-call, plus any [`Error`] the
    /// handler itself reports via [`Response::Err`].
    pub fn call(&self, node: NodeId, req: Request) -> Result<Response> {
        let mailbox = self
            .registry
            .read()
            .mailboxes
            .get(&node)
            .cloned()
            .ok_or(Error::NodeUnavailable(node))?;
        self.charge_message(Self::wire_size(&req));
        let (reply_tx, reply_rx) = bounded(1);
        mailbox.send((req, reply_tx)).map_err(|_| Error::NodeUnavailable(node))?;
        let resp = reply_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .map_err(|_| Error::Rpc(format!("timeout waiting for {node}")))?;
        self.charge_message(128);
        resp.into_result()
    }

    /// Sends `req` without waiting for the reply (fire-and-forget).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeUnavailable`] for unknown nodes.
    pub fn cast(&self, node: NodeId, req: Request) -> Result<()> {
        let mailbox = self
            .registry
            .read()
            .mailboxes
            .get(&node)
            .cloned()
            .ok_or(Error::NodeUnavailable(node))?;
        self.charge_message(Self::wire_size(&req));
        let (reply_tx, _reply_rx) = bounded(1);
        mailbox.send((req, reply_tx)).map_err(|_| Error::NodeUnavailable(node))?;
        Ok(())
    }

    /// The registered node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.registry.read().mailboxes.keys().copied().collect();
        v.sort();
        v
    }
}

impl Default for Rpc {
    fn default() -> Self {
        Rpc::new()
    }
}

/// Runs a node actor: drains the mailbox, feeding each request to the
/// handler, until a `Shutdown` request arrives (which is acknowledged
/// before the loop exits).
pub(crate) fn run_actor<H>(rx: Receiver<Envelope>, mut handler: H)
where
    H: FnMut(Request) -> Response,
{
    while let Ok((req, reply)) = rx.recv() {
        let is_shutdown = matches!(req, Request::Shutdown);
        let resp = if is_shutdown { Response::Ok } else { handler(req) };
        let _ = reply.send(resp);
        if is_shutdown {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_node(rpc: &Rpc, id: NodeId) -> std::thread::JoinHandle<()> {
        let rx = rpc.register(id);
        std::thread::spawn(move || {
            run_actor(rx, |req| match req {
                Request::LocateAcgs => Response::Located(vec![]),
                _ => Response::Ok,
            })
        })
    }

    #[test]
    fn call_round_trip() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        let resp = rpc.call(NodeId::new(1), Request::LocateAcgs).unwrap();
        assert!(matches!(resp, Response::Located(_)));
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn unknown_node_is_an_error() {
        let rpc = Rpc::new();
        let err = rpc.call(NodeId::new(99), Request::LocateAcgs);
        assert!(matches!(err, Err(Error::NodeUnavailable(_))));
    }

    #[test]
    fn concurrent_callers_are_serialized_by_the_actor() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let rpc = rpc.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        rpc.call(NodeId::new(1), Request::LocateAcgs).unwrap();
                    }
                });
            }
        });
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn network_charging_advances_virtual_clock() {
        let clock = SimClock::new();
        let rpc = Rpc::with_network(Network::gigabit_ethernet(), clock.clone(), 7);
        let h = echo_node(&rpc, NodeId::new(1));
        let before = clock.now();
        rpc.call(NodeId::new(1), Request::LocateAcgs).unwrap();
        assert!(clock.now() > before, "message cost must be charged");
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn deregistered_node_unreachable() {
        let rpc = Rpc::new();
        let h = echo_node(&rpc, NodeId::new(1));
        rpc.call(NodeId::new(1), Request::Shutdown).unwrap();
        h.join().unwrap();
        rpc.deregister(NodeId::new(1));
        assert!(rpc.call(NodeId::new(1), Request::LocateAcgs).is_err());
    }
}
