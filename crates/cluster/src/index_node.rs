//! The Index Node (paper §IV).
//!
//! Hosts the partitioned file indices: one [`AcgIndexGroup`] plus one
//! [`AcgGraph`] per ACG assigned to it. Handles file-indexing batches
//! (WAL + lazy cache), search requests (commit-then-search), ACG delta
//! flushes from clients, split computation (balanced bisection of its own
//! ACG) and migration (extract/install of ACG parts).
//!
//! With a [`IndexNodeConfig::data_dir`] configured the node is **durable**:
//! every hosted group gets a file-backed WAL (`acg-<id>.wal`) and
//! LSN-anchored snapshots (`acg-<id>-<lsn>.snap`) in that directory,
//! batches are fsynced before they are acknowledged, snapshots fire off a
//! WAL-bytes/ops threshold (and after migrations), and [`IndexNode::open`]
//! restores every group from the newest valid snapshot plus its WAL
//! suffix — so a crashed-and-revived node serves its pre-crash hits.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use propeller_acg::{bisect, AcgGraph, PartitionConfig};
use propeller_index::{
    snapshot, AcgEpoch, AcgIndexGroup, EpochSnapshotJob, FileRecord, GroupConfig, IndexSpec, Wal,
};
use propeller_obs::{names, Counter, Histogram, Lane, NodeObs, SlowQuery, SpanKind, TraceContext};
use propeller_query::{
    execute_classic, execute_node_request, ClassicResults, ClassicTask, GlobalCutoff, Hit,
    NodeSearchSession, SearchRequest, SearchStats, SessionPage,
};
use propeller_sim::{Clock, WallClock};
use propeller_trace::EdgeUpdate;
use propeller_types::{AcgId, Duration, Error, FileId, NodeId, Timestamp};

use crate::messages::{AcgSummary, Request, Response};
use crate::pool::WorkerPool;

/// Magic + version header of the durable stale-route tombstone file.
const TOMBSTONE_MAGIC: [u8; 4] = *b"PTMB";
const TOMBSTONE_VERSION: u32 = 1;

/// File name of the node-wide tombstone image inside the data dir.
fn tombstone_file_name() -> &'static str {
    "tombstones.tomb"
}

/// Serializes the tombstone state (the generation counter, the live
/// per-ACG maps and the FIFO eviction order). Both structures are written
/// because they diverge: [`Request::InstallAcg`] clears a `moved_away`
/// entry without touching `tombstone_order`, and replaying the order alone
/// would resurrect it.
fn encode_tombstones(
    gen: u64,
    moved: &HashMap<AcgId, HashMap<FileId, u64>>,
    order: &std::collections::VecDeque<(AcgId, FileId, u64)>,
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + order.len() * 24);
    payload.extend_from_slice(&gen.to_le_bytes());
    // Deterministic image: sort ACGs and files so identical state always
    // produces identical bytes (snapshot-diff friendliness).
    let mut acgs: Vec<&AcgId> = moved.keys().collect();
    acgs.sort_unstable();
    payload.extend_from_slice(&(acgs.len() as u64).to_le_bytes());
    for acg in acgs {
        let map = &moved[acg];
        payload.extend_from_slice(&acg.raw().to_le_bytes());
        payload.extend_from_slice(&(map.len() as u64).to_le_bytes());
        let mut files: Vec<(&FileId, &u64)> = map.iter().collect();
        files.sort_unstable();
        for (file, gen) in files {
            payload.extend_from_slice(&file.raw().to_le_bytes());
            payload.extend_from_slice(&gen.to_le_bytes());
        }
    }
    payload.extend_from_slice(&(order.len() as u64).to_le_bytes());
    for &(acg, file, gen) in order {
        payload.extend_from_slice(&acg.raw().to_le_bytes());
        payload.extend_from_slice(&file.raw().to_le_bytes());
        payload.extend_from_slice(&gen.to_le_bytes());
    }
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&TOMBSTONE_MAGIC);
    out.extend_from_slice(&TOMBSTONE_VERSION.to_le_bytes());
    out.extend_from_slice(&propeller_index::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The reconstructed tombstone state: `(generation counter, live per-ACG
/// maps, FIFO eviction order)`.
type TombstoneState =
    (u64, HashMap<AcgId, HashMap<FileId, u64>>, std::collections::VecDeque<(AcgId, FileId, u64)>);

/// Decodes a tombstone image, rejecting truncation, bad magic and CRC
/// mismatches (a torn write loses the tombstones, never the node).
fn decode_tombstones(bytes: &[u8]) -> Option<TombstoneState> {
    let mut pos = 0usize;
    let mut chunk = |n: usize| -> Option<&[u8]> {
        let end = pos.checked_add(n)?;
        let out = bytes.get(pos..end)?;
        pos = end;
        Some(out)
    };
    if chunk(4)? != TOMBSTONE_MAGIC {
        return None;
    }
    if u32::from_le_bytes(chunk(4)?.try_into().ok()?) != TOMBSTONE_VERSION {
        return None;
    }
    let crc = u32::from_le_bytes(chunk(4)?.try_into().ok()?);
    let len = u64::from_le_bytes(chunk(8)?.try_into().ok()?);
    let payload = chunk(usize::try_from(len).ok()?)?;
    if propeller_index::crc32(payload) != crc {
        return None;
    }
    let mut pos = 0usize;
    let mut next_u64 = |payload: &[u8]| -> Option<u64> {
        let end = pos.checked_add(8)?;
        let v = u64::from_le_bytes(payload.get(pos..end)?.try_into().ok()?);
        pos = end;
        Some(v)
    };
    let gen = next_u64(payload)?;
    let n_acgs = next_u64(payload)?;
    let mut moved: HashMap<AcgId, HashMap<FileId, u64>> = HashMap::new();
    for _ in 0..n_acgs {
        let acg = AcgId::new(next_u64(payload)?);
        let n_files = next_u64(payload)?;
        let map = moved.entry(acg).or_default();
        for _ in 0..n_files {
            let file = FileId::new(next_u64(payload)?);
            let g = next_u64(payload)?;
            map.insert(file, g);
        }
    }
    let n_order = next_u64(payload)?;
    let mut order = std::collections::VecDeque::new();
    for _ in 0..n_order {
        let acg = AcgId::new(next_u64(payload)?);
        let file = FileId::new(next_u64(payload)?);
        let g = next_u64(payload)?;
        order.push_back((acg, file, g));
    }
    Some((gen, moved, order))
}

/// One pooled per-ACG search execution and its result.
type SearchJob = Box<dyn FnOnce() -> (Vec<Hit>, SearchStats) + Send>;

/// Everything a pooled per-ACG scan needs to record its own `AcgExec`
/// span: the node's span buffer, the parent (node `Search`) span context
/// and the injected clock. `None` when the request is unsampled — the
/// scan closures then carry zero tracing overhead.
type AcgTrace = Option<(Arc<NodeObs>, TraceContext, Arc<dyn Clock>)>;

/// The classic-task executor both the one-shot and the streamed search
/// paths hand to the query layer: every non-ordered per-ACG scan becomes a
/// job on the node's persistent worker pool, sharing the node-global
/// cutoff.
fn run_classic_on_pool<'a>(
    pool: &'a WorkerPool,
    arcs: &'a [Arc<AcgEpoch>],
    request: &'a Arc<SearchRequest>,
    trace: AcgTrace,
) -> impl FnOnce(Vec<ClassicTask>, Option<&Arc<GlobalCutoff>>) -> ClassicResults + 'a {
    move |tasks, cutoff| {
        let jobs: Vec<SearchJob> = tasks
            .into_iter()
            .map(|task| {
                let group = Arc::clone(&arcs[task.group]);
                let request = Arc::clone(request);
                let cutoff = cutoff.cloned();
                let trace = trace.clone();
                Box::new(move || match trace {
                    Some((obs, parent, clock)) => {
                        let open = obs.spans.begin(parent, SpanKind::AcgExec, clock.now());
                        let out = execute_classic(&group, &request, task.plan, cutoff.as_deref());
                        obs.spans.finish_with(open, clock.now(), group.id().to_string());
                        out
                    }
                    None => execute_classic(&group, &request, task.plan, cutoff.as_deref()),
                }) as SearchJob
            })
            .collect();
        pool.run(jobs)
    }
}

/// Captures a finished search exchange into the node's slow-query ring
/// when its measured service time reaches the configured threshold: the
/// rendered request, the per-ACG plan (access paths), the full stats and
/// a copy of the spans this lane recorded for the trace (left in place
/// for later `DumpTrace` assembly).
fn note_if_slow(
    obs: &NodeObs,
    slow_after: Option<Duration>,
    ctx: TraceContext,
    finished: Timestamp,
    request: &SearchRequest,
    stats: &SearchStats,
) {
    let Some(threshold) = slow_after else { return };
    if stats.elapsed < threshold {
        return;
    }
    obs.metrics.counter(names::SLOW_QUERIES).inc();
    obs.slow.note(SlowQuery {
        trace: ctx.trace,
        lane: obs.spans.lane(),
        at: finished,
        elapsed: stats.elapsed,
        query: format!("{request:?}"),
        plan: stats
            .access_paths
            .iter()
            .map(|&(acg, kind)| (acg.raw(), format!("{kind:?}")))
            .collect(),
        stats: format!("{stats:?}"),
        spans: obs.spans.collect(ctx.trace),
    });
}

/// One suspended streamed search plus its eviction bookkeeping. The
/// session sits behind its own mutex so a pull job can page it off the
/// actor thread; the table lock is only held for lookups and evictions,
/// never across a pull.
struct SessionEntry {
    session: Arc<Mutex<NodeSearchSession>>,
    /// The opening client (per-client caps key off this).
    client: u64,
    /// Logical last-use stamp for LRU eviction.
    last_used: u64,
}

/// The node's suspended-session table, shared between the actor thread
/// (close, eviction) and the pool jobs that open and pull sessions.
struct SessionTable {
    entries: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
    seq: AtomicU64,
    max_sessions: usize,
    max_per_client: usize,
}

impl SessionTable {
    fn new(max_sessions: usize, max_per_client: usize) -> Self {
        SessionTable {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            max_sessions,
            max_per_client,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, SessionEntry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn len(&self) -> usize {
        self.lock().len()
    }

    /// Stores a suspended session under a fresh id, evicting the opening
    /// client's least-recently-pulled session past the per-client cap and
    /// the node-wide LRU session past the table cap. Evicted clients
    /// recover by reopening with a resume cursor, so eviction costs one
    /// extra round trip, never correctness.
    fn store(&self, client: u64, session: NodeSearchSession) -> u64 {
        let mut entries = self.lock();
        let per_client = self.max_per_client.max(1);
        while entries.values().filter(|e| e.client == client).count() >= per_client {
            let victim = entries
                .iter()
                .filter(|(_, e)| e.client == client)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            entries.remove(&id);
        }
        while entries.len() >= self.max_sessions.max(1) {
            let victim = entries.iter().min_by_key(|(_, e)| e.last_used).map(|(&id, _)| id);
            let Some(id) = victim else { break };
            entries.remove(&id);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let last_used = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        entries
            .insert(id, SessionEntry { session: Arc::new(Mutex::new(session)), client, last_used });
        id
    }

    /// Checks a session out for a pull: bumps its LRU stamp and returns a
    /// handle to its mutex. The table lock is released before the pull
    /// runs, so pulls on different sessions never serialize on the table.
    fn checkout(&self, id: u64) -> Option<Arc<Mutex<NodeSearchSession>>> {
        let stamp = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.lock();
        let entry = entries.get_mut(&id)?;
        entry.last_used = stamp;
        Some(Arc::clone(&entry.session))
    }

    fn remove(&self, id: u64) -> Option<Arc<Mutex<NodeSearchSession>>> {
        self.lock().remove(&id).map(|e| e.session)
    }
}

/// One unit of work for the background snapshot writer.
enum SnapshotTask {
    /// Serialize a pinned epoch to disk.
    Write { acg: AcgId, job: EpochSnapshotJob },
    /// Flush barrier: acknowledged once every earlier task finished.
    Barrier(std::sync::mpsc::Sender<()>),
}

/// The node's background snapshot writer: one thread serializing pinned
/// epochs to disk so snapshots stall neither the actor nor any search
/// (searches read other pins of the same immutable epochs). The actor
/// `begin`s a snapshot — pinning the epoch and marking the group
/// in-flight — enqueues the write here, and applies the completion
/// (`finish_snapshot`/`abort_snapshot`) when it next drains `done_rx`.
struct SnapshotWriter {
    tx: std::sync::mpsc::Sender<SnapshotTask>,
    /// Completions: `(acg, snapshot lsn, write succeeded)`.
    done_rx: std::sync::mpsc::Receiver<(AcgId, u64, bool)>,
}

impl SnapshotWriter {
    fn spawn(
        gate: Arc<(Mutex<bool>, Condvar)>,
        clock: Arc<dyn Clock>,
        durations: Arc<Histogram>,
    ) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<SnapshotTask>();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::Builder::new()
            .name("propeller-snap-writer".into())
            .spawn(move || {
                while let Ok(task) = rx.recv() {
                    match task {
                        SnapshotTask::Write { acg, job } => {
                            // Test hook: a closed gate holds every write
                            // (not the actor, not searches) until reopened.
                            let (paused, cv) = &*gate;
                            let mut held = paused.lock().unwrap_or_else(PoisonError::into_inner);
                            while *held {
                                held = cv.wait(held).unwrap_or_else(PoisonError::into_inner);
                            }
                            drop(held);
                            let t0 = clock.now();
                            let ok = job.write().is_ok();
                            durations.record(clock.now().since(t0).as_micros());
                            if done_tx.send((acg, job.lsn, ok)).is_err() {
                                return;
                            }
                        }
                        SnapshotTask::Barrier(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })
            .expect("spawn snapshot writer");
        SnapshotWriter { tx, done_rx }
    }
}

/// Index Node configuration.
#[derive(Debug, Clone)]
pub struct IndexNodeConfig {
    /// Lazy-commit timeout for every hosted group (paper default 5 s).
    pub commit_timeout: Duration,
    /// Partitioner settings for splits.
    pub partition: PartitionConfig,
    /// Upper bound on retained stale-route tombstones (files migrated out
    /// of an ACG hosted here). Oldest entries are evicted first; an
    /// evicted entry only matters for a client whose cached route predates
    /// that many migrations, which then degrades to pre-tombstone
    /// behaviour (the batch lands in the old group, still searchable).
    pub max_tombstones: usize,
    /// Worker-pool width for multi-ACG searches: the non-ordered per-ACG
    /// scans of one `Search` execute across a **persistent pool** of this
    /// many execution streams, owned by the node and reused across
    /// searches (no per-search thread spawn). Groups are independent once
    /// committed, so a 64-ACG node no longer serializes 64 scans. `1`
    /// restores strictly sequential inline execution; the default matches
    /// the host's available parallelism.
    pub search_parallelism: usize,
    /// Upper bound on concurrently suspended streamed search sessions.
    /// Past it the least-recently-pulled session is evicted; its client
    /// transparently reopens, resuming after the last hit it received.
    pub max_search_sessions: usize,
    /// Per-client bound on suspended sessions (an abandoned or slow client
    /// cannot monopolize the table). Evicts that client's LRU session.
    pub max_search_sessions_per_client: usize,
    /// Durable storage for this node's groups: each hosted ACG gets a
    /// file-backed WAL and snapshot files here, and [`IndexNode::open`]
    /// recovers from them. `None` (the default) keeps everything in
    /// memory — the historical, simulation-friendly behaviour.
    pub data_dir: Option<PathBuf>,
    /// Snapshot a durable group once this many frame bytes have been
    /// logged since its last snapshot (the log stays bounded regardless
    /// of op size).
    pub snapshot_wal_bytes: u64,
    /// Snapshot a durable group once this many ops have been logged since
    /// its last snapshot (recovery replay stays O(delta)).
    pub snapshot_wal_ops: u64,
    /// Capture any search whose node-side service time reaches this
    /// threshold into the slow-query ring (plan, stats, spans; see
    /// `Request::DumpSlowQueries`). `None` (the default) disables capture.
    pub slow_query_threshold: Option<Duration>,
    /// Record per-request metrics (latency histograms) on the hot paths.
    /// On by default; benches turn it off to measure the baseline.
    pub obs_enabled: bool,
}

impl Default for IndexNodeConfig {
    fn default() -> Self {
        IndexNodeConfig {
            commit_timeout: Duration::from_secs(5),
            partition: PartitionConfig::default(),
            max_tombstones: 1_000_000,
            search_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            max_search_sessions: 1024,
            max_search_sessions_per_client: 8,
            data_dir: None,
            snapshot_wal_bytes: 4 << 20,
            snapshot_wal_ops: 10_000,
            slow_query_threshold: None,
            obs_enabled: true,
        }
    }
}

/// One Index Node's state machine. Driven as an actor by the cluster
/// runtime; unit tests can drive [`IndexNode::handle`] directly.
pub struct IndexNode {
    id: NodeId,
    config: IndexNodeConfig,
    /// Time source for measured search latency ([`SearchStats::elapsed`]);
    /// the cluster/service injects its own (wall or virtual) clock.
    clock: Arc<dyn Clock>,
    /// Hosted groups, owned by the actor thread. The mutable build side
    /// (WAL, pending cache) lives here; searches never touch it — they
    /// pin each group's published [`AcgEpoch`] and read that immutable
    /// snapshot on the worker pool while the actor keeps committing.
    groups: HashMap<AcgId, AcgIndexGroup>,
    /// The node's persistent search pool (see `search_parallelism`),
    /// created once and reused by every search; shared with the deferred
    /// search jobs, which own their replies.
    pool: Arc<WorkerPool>,
    graphs: HashMap<AcgId, AcgGraph>,
    /// Indices to create on every (current and future) group.
    extra_specs: Vec<IndexSpec>,
    /// Files migrated *out* of each ACG hosted here, mapped to the
    /// generation of their latest tombstone. A later batch that still
    /// routes one of these files to the old ACG is a stale client route
    /// and is rejected with [`Error::StaleRoute`] so the client can
    /// re-resolve instead of silently resurrecting the file in the wrong
    /// group. Bounded by `config.max_tombstones` via FIFO eviction of
    /// `tombstone_order`; generations keep superseded order entries (a
    /// file re-installed and re-extracted) from evicting a live tombstone.
    moved_away: HashMap<AcgId, HashMap<FileId, u64>>,
    tombstone_order: std::collections::VecDeque<(AcgId, FileId, u64)>,
    tombstone_gen: u64,
    /// Suspended streamed searches, bounded by the session caps (see
    /// [`IndexNodeConfig::max_search_sessions`]); shared with the pool
    /// jobs that open and pull them.
    sessions: Arc<SessionTable>,
    /// This node's observability bundle (metrics registry, span buffer,
    /// slow-query ring), shared with pool jobs and the snapshot writer.
    obs: Arc<NodeObs>,
    /// Registry-backed counters, cached as handles so hot paths never
    /// take the registry's name-lookup lock. [`Request::NodeStats`] and
    /// [`Request::Metrics`] read the same cells.
    searches_served: Arc<Counter>,
    ops_received: Arc<Counter>,
    /// Epochs published by this node (non-empty commits). Shared with
    /// running search jobs so they can witness commits that overlapped
    /// their execution ([`SearchStats::commits_during_search`]).
    commits: Arc<Counter>,
    /// Snapshot jobs handed to the background writer so far.
    snapshots_offloaded: Arc<Counter>,
    /// Cached latency histograms (same no-lock rationale).
    h_search: Arc<Histogram>,
    h_pull: Arc<Histogram>,
    h_ingest: Arc<Histogram>,
    h_fsync: Arc<Histogram>,
    h_epoch_pin: Arc<Histogram>,
    /// Lazily-spawned background snapshot writer (durable nodes only).
    snapshot_writer: Option<SnapshotWriter>,
    /// Pause gate the writer checks before each write (test hook).
    snapshot_gate: Arc<(Mutex<bool>, Condvar)>,
}

impl std::fmt::Debug for IndexNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexNode")
            .field("id", &self.id)
            .field("acgs", &self.groups.len())
            .field("searches_served", &self.searches_served.get())
            .field("ops_received", &self.ops_received.get())
            .finish()
    }
}

impl IndexNode {
    /// Creates an empty Index Node (wall clock; see
    /// [`IndexNode::with_clock`] to inject a virtual one).
    pub fn new(id: NodeId, config: IndexNodeConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.search_parallelism));
        let sessions = Arc::new(SessionTable::new(
            config.max_search_sessions,
            config.max_search_sessions_per_client,
        ));
        let obs = Arc::new(NodeObs::new(Lane::Node(id.raw() as u64)));
        IndexNode {
            id,
            config,
            clock: Arc::new(WallClock::new()),
            groups: HashMap::new(),
            pool,
            graphs: HashMap::new(),
            extra_specs: Vec::new(),
            moved_away: HashMap::new(),
            tombstone_order: std::collections::VecDeque::new(),
            tombstone_gen: 0,
            sessions,
            searches_served: obs.metrics.counter(names::SEARCHES_SERVED),
            ops_received: obs.metrics.counter(names::OPS_RECEIVED),
            commits: obs.metrics.counter(names::COMMITS_PUBLISHED),
            snapshots_offloaded: obs.metrics.counter(names::SNAPSHOTS_OFFLOADED),
            h_search: obs.metrics.histogram(names::SEARCH_LATENCY),
            h_pull: obs.metrics.histogram(names::PULL_LATENCY),
            h_ingest: obs.metrics.histogram(names::INGEST_LATENCY),
            h_fsync: obs.metrics.histogram(names::WAL_FSYNC),
            h_epoch_pin: obs.metrics.histogram(names::EPOCH_PIN_WAIT),
            obs,
            snapshot_writer: None,
            snapshot_gate: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    /// This node's observability bundle (tests and embeddings; the RPC
    /// surface is `DumpTrace` / `Metrics` / `DumpSlowQueries`).
    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.obs
    }

    /// Opens a node, restoring every durable group from disk when a
    /// [`IndexNodeConfig::data_dir`] is configured: ACGs are discovered
    /// from their WAL and snapshot files, each is recovered from its
    /// newest valid snapshot plus the WAL suffix past the snapshot's LSN
    /// (falling back to older snapshots and ultimately a full replay on
    /// corruption), and the node serves its pre-crash committed state
    /// immediately. Without a data dir this is [`IndexNode::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the data directory cannot be created or
    /// scanned and any recovery error a group reports.
    pub fn open(id: NodeId, config: IndexNodeConfig) -> Result<Self, Error> {
        let mut node = Self::new(id, config);
        let Some(dir) = node.config.data_dir.clone() else { return Ok(node) };
        std::fs::create_dir_all(&dir)?;
        let mut acgs = snapshot::snapshot_acgs(&dir);
        for entry in std::fs::read_dir(&dir)?.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(acg) = snapshot::parse_wal_name(name) {
                acgs.push(acg);
            }
        }
        acgs.sort_unstable();
        acgs.dedup();
        for acg in acgs {
            let cfg = Self::group_config(&node.config, acg)?;
            let (group, _report) = AcgIndexGroup::recover_with_report(acg, cfg)?;
            node.groups.insert(acg, group);
        }
        // Stale-route tombstones are part of the node's durable identity:
        // a revived node must keep rejecting batches routed to files it
        // migrated away before the crash. A missing or corrupt image
        // degrades to pre-tombstone behaviour, never a failed open.
        if let Some((gen, moved, order)) = std::fs::read(dir.join(tombstone_file_name()))
            .ok()
            .and_then(|bytes| decode_tombstones(&bytes))
        {
            node.tombstone_gen = gen;
            node.moved_away = moved;
            node.tombstone_order = order;
        }
        Ok(node)
    }

    /// Writes the tombstone image under the data dir (temp file + rename,
    /// so a crash mid-write leaves the previous image intact). Best-effort
    /// like snapshots: the extraction that grew the tombstones is already
    /// acknowledged, so a failing write must not fail it — the next
    /// mutation retries.
    fn persist_tombstones(&self) {
        let Some(dir) = &self.config.data_dir else { return };
        let bytes = encode_tombstones(self.tombstone_gen, &self.moved_away, &self.tombstone_order);
        let tmp = dir.join(format!("{}.tmp", tombstone_file_name()));
        let path = dir.join(tombstone_file_name());
        let write = || -> std::io::Result<()> {
            std::fs::write(&tmp, &bytes)?;
            std::fs::File::open(&tmp)?.sync_all()?;
            std::fs::rename(&tmp, &path)
        };
        let _ = write();
    }

    /// The [`GroupConfig`] a group of this node gets: a file-backed WAL
    /// and snapshots under the data dir when one is configured, in-memory
    /// otherwise.
    fn group_config(config: &IndexNodeConfig, acg: AcgId) -> Result<GroupConfig, Error> {
        match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Ok(GroupConfig {
                    commit_timeout: config.commit_timeout,
                    wal: Wal::open(dir.join(snapshot::wal_file_name(acg)))?,
                    snapshot_dir: Some(dir.clone()),
                    ..GroupConfig::default()
                })
            }
            None => {
                Ok(GroupConfig { commit_timeout: config.commit_timeout, ..GroupConfig::default() })
            }
        }
    }

    /// Replaces the node's time source (builder style). Searches measure
    /// their service time against this clock.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of hosted ACGs.
    pub fn acg_count(&self) -> usize {
        self.groups.len()
    }

    /// `(searches served, ops received)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.searches_served.get(), self.ops_received.get())
    }

    fn group_mut(&mut self, acg: AcgId) -> Result<&mut AcgIndexGroup, Error> {
        if !self.groups.contains_key(&acg) {
            let mut group = AcgIndexGroup::new(acg, Self::group_config(&self.config, acg)?);
            for spec in &self.extra_specs {
                // Name collisions with defaults are rejected upstream.
                let _ = group.create_index(spec.clone());
            }
            self.groups.insert(acg, group);
        }
        Ok(self.groups.get_mut(&acg).expect("just inserted"))
    }

    /// Commits the group, counting a published epoch when ops applied.
    fn commit_group(
        commits: &Counter,
        group: &mut AcgIndexGroup,
        now: Timestamp,
    ) -> Result<usize, Error> {
        let n = group.commit(now)?;
        if n > 0 {
            commits.inc();
        }
        Ok(n)
    }

    /// The background snapshot writer, spawned on first use (memory-only
    /// nodes never pay for the thread).
    fn writer(&mut self) -> &SnapshotWriter {
        if self.snapshot_writer.is_none() {
            self.snapshot_writer = Some(SnapshotWriter::spawn(
                Arc::clone(&self.snapshot_gate),
                Arc::clone(&self.clock),
                self.obs.metrics.histogram(names::SNAPSHOT_DURATION),
            ));
        }
        self.snapshot_writer.as_ref().expect("just spawned")
    }

    /// Applies finished background snapshots: a successful write truncates
    /// the WAL and prunes old checkpoints (`finish_snapshot`); a failure
    /// just clears the in-flight flag so the next trigger retries.
    fn drain_snapshot_completions(&mut self) {
        let Some(writer) = &self.snapshot_writer else { return };
        let mut done = Vec::new();
        while let Ok(completion) = writer.done_rx.try_recv() {
            done.push(completion);
        }
        for (acg, lsn, ok) in done {
            let Some(group) = self.groups.get_mut(&acg) else { continue };
            if ok {
                let _ = group.finish_snapshot(lsn);
            } else {
                group.abort_snapshot();
            }
        }
    }

    /// Blocks until every enqueued background snapshot has been written
    /// *and applied*. Tests and benches use this to assert on durable
    /// state; migrations use it to quiesce the writer before rewriting a
    /// group's on-disk identity; the serving path never calls it.
    pub fn flush_snapshots(&mut self) {
        let Some(writer) = &self.snapshot_writer else { return };
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        if writer.tx.send(SnapshotTask::Barrier(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
        self.drain_snapshot_completions();
    }

    /// Test hook: holds the background snapshot writer before its next
    /// write until [`IndexNode::resume_snapshot_writer`]. The actor and
    /// every search keep running — that is the property under test.
    #[doc(hidden)]
    pub fn pause_snapshot_writer(&mut self) {
        let (paused, _) = &*self.snapshot_gate;
        *paused.lock().unwrap_or_else(PoisonError::into_inner) = true;
    }

    /// Reopens the gate closed by [`IndexNode::pause_snapshot_writer`].
    #[doc(hidden)]
    pub fn resume_snapshot_writer(&mut self) {
        let (paused, cv) = &*self.snapshot_gate;
        *paused.lock().unwrap_or_else(PoisonError::into_inner) = false;
        cv.notify_all();
    }

    /// Background snapshot jobs handed to the writer thread so far.
    pub fn snapshots_offloaded(&self) -> u64 {
        self.snapshots_offloaded.get()
    }

    /// Epochs published (non-empty commits) by this node so far.
    pub fn commits_published(&self) -> u64 {
        self.commits.get()
    }

    /// Commits a durable group and offloads a snapshot to the background
    /// writer once its WAL outgrows the thresholds. Best-effort by
    /// design: the batch that tripped the threshold is already durable in
    /// the WAL, so a failing snapshot must not fail it — the next trigger
    /// simply retries. The actor only pins the epoch and marks the group
    /// in-flight here; serialization happens off-thread, blocking neither
    /// ingest nor searches.
    fn maybe_snapshot(&mut self, acg: AcgId, now: Timestamp) {
        self.drain_snapshot_completions();
        let (ops_thr, bytes_thr) = (self.config.snapshot_wal_ops, self.config.snapshot_wal_bytes);
        let commits = Arc::clone(&self.commits);
        let Some(group) = self.groups.get_mut(&acg) else { return };
        if !group.is_durable() {
            return;
        }
        if (group.wal_ops() >= ops_thr || group.wal_bytes_since_snapshot() >= bytes_thr)
            && Self::commit_group(&commits, group, now).is_ok()
        {
            if let Some(job) = group.begin_snapshot() {
                self.snapshots_offloaded.inc();
                let _ = self.writer().tx.send(SnapshotTask::Write { acg, job });
            }
        }
    }

    /// Number of suspended streamed search sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The commit phase shared by one-shot `Search` and `OpenSearch` —
    /// the paper's consistency rule (commit before search) mutates each
    /// group and stays on the actor thread. The returned pinned epochs
    /// are immutable forever, which is what lets execution leave the
    /// actor entirely: the next `IndexBatch` commits into *new* epochs
    /// while the search still reads its pins.
    fn commit_for_search(
        &mut self,
        acgs: &[AcgId],
        now: Timestamp,
    ) -> Result<Vec<Arc<AcgEpoch>>, Error> {
        let commits = Arc::clone(&self.commits);
        for acg in acgs {
            if let Some(group) = self.groups.get_mut(acg) {
                Self::commit_group(&commits, group, now)?;
            }
        }
        Ok(acgs.iter().filter_map(|acg| self.groups.get(acg)).map(AcgIndexGroup::pin).collect())
    }

    /// Records stale-route tombstones for files migrated out of `acg`,
    /// evicting the oldest entries past the configured cap. An eviction
    /// only removes a tombstone whose generation matches the popped order
    /// entry — superseded entries (the file was re-installed and
    /// re-extracted since) pop as no-ops.
    fn add_tombstones(&mut self, acg: AcgId, files: &[FileId]) {
        let map = self.moved_away.entry(acg).or_default();
        for &file in files {
            self.tombstone_gen += 1;
            map.insert(file, self.tombstone_gen);
            self.tombstone_order.push_back((acg, file, self.tombstone_gen));
        }
        while self.tombstone_order.len() > self.config.max_tombstones {
            let Some((acg, file, gen)) = self.tombstone_order.pop_front() else { break };
            if let Some(map) = self.moved_away.get_mut(&acg) {
                if map.get(&file) == Some(&gen) {
                    map.remove(&file);
                }
                if map.is_empty() {
                    self.moved_away.remove(&acg);
                }
            }
        }
        self.persist_tombstones();
    }

    fn summaries(&self) -> Vec<AcgSummary> {
        let mut v: Vec<AcgSummary> = self
            .groups
            .iter()
            .map(|(&acg, g)| AcgSummary {
                // Scale includes buffered updates — the Master must see an
                // ACG outgrowing its threshold even between commits — but
                // only their *net* file-count effect: a pending re-upsert
                // of an already-indexed file adds nothing, a pending
                // remove subtracts. Counting raw pending ops inflated
                // re-upsert-heavy ACGs and triggered spurious splits.
                acg,
                files: g.projected_len(),
                pending_ops: g.pending_ops(),
            })
            .collect();
        v.sort_by_key(|s| s.acg);
        v
    }

    /// Handles one request synchronously. Unit tests, benches and inline
    /// embeddings drive this; it routes through
    /// [`IndexNode::handle_deferred`] and waits for the reply, so sync
    /// callers observe exactly the deferred semantics.
    pub fn handle(&mut self, req: Request) -> Response {
        let (tx, rx) = std::sync::mpsc::channel();
        self.handle_deferred(req, move |resp| {
            let _ = tx.send(resp);
        });
        match rx.recv() {
            Ok(resp) => resp,
            // The deferred job died (panicked) before replying.
            Err(_) => Response::Err(Error::Rpc("search job aborted".into())),
        }
    }

    /// Handles one request, delivering the response through `reply` (the
    /// actor body). Ingest, replication and maintenance requests mutate
    /// node state and reply inline from the actor thread. The search
    /// family — `Search`, `OpenSearch`, `PullHits` — does its mutating
    /// prefix here (the paper's commit-before-search, session checkout)
    /// and then executes on the worker pool against **pinned epochs**,
    /// replying from the pool job: the actor returns immediately and
    /// commits the next `IndexBatch` while the search still runs. A
    /// commit publishes a *new* epoch; running searches keep their pins,
    /// so ingest never blocks reads and reads never block ingest.
    pub fn handle_deferred(&mut self, req: Request, reply: impl FnOnce(Response) + Send + 'static) {
        match req {
            Request::Search { acgs, request, now, ctx } => {
                self.searches_served.inc();
                let started = self.clock.now();
                let span = self.obs.spans.begin(ctx, SpanKind::Search, started);
                let epochs = match self.commit_for_search(&acgs, now) {
                    Ok(epochs) => epochs,
                    Err(e) => return reply(Response::Err(e)),
                };
                // The commit-before-search prefix is the epoch-pin wait:
                // everything after it reads immutable pins.
                let pinned = self.clock.now();
                if self.config.obs_enabled {
                    self.h_epoch_pin.record(pinned.since(started).as_micros());
                }
                if span.enabled() {
                    let pin = self.obs.spans.begin(span.ctx(), SpanKind::EpochPin, started);
                    self.obs.spans.finish(pin, pinned);
                }
                let pool = Arc::clone(&self.pool);
                let clock = Arc::clone(&self.clock);
                let commits = Arc::clone(&self.commits);
                let commits_before = commits.get();
                let obs = Arc::clone(&self.obs);
                let obs_enabled = self.config.obs_enabled;
                let slow_after = self.config.slow_query_threshold;
                let h_search = Arc::clone(&self.h_search);
                let node_id = self.id;
                self.pool.submit(move || {
                    // Execution phase, under the node-global k cutoff:
                    // ordered-planned groups become lazy candidate streams
                    // pulled through one k-way merge (stop at k total
                    // admitted hits across all ACGs); the remaining groups
                    // run their bounded scans as pool subjobs, pruning
                    // against the shared merged bound. Everything reads
                    // the pinned epochs.
                    let refs: Vec<&AcgEpoch> = epochs.iter().map(Arc::as_ref).collect();
                    let request = Arc::new(request);
                    let acg_trace: AcgTrace =
                        span.enabled().then(|| (Arc::clone(&obs), span.ctx(), Arc::clone(&clock)));
                    let (hits, mut stats) = execute_node_request(
                        &refs,
                        request.as_ref(),
                        run_classic_on_pool(&pool, &epochs, &request, acg_trace),
                    );
                    // The whole answer ships in this one exchange — the
                    // baseline the streamed session path is measured
                    // against.
                    stats.pages_pulled = 1;
                    stats.hits_shipped = hits.len();
                    stats.epoch_pins = epochs.len();
                    stats.commits_during_search = (commits.get() - commits_before) as usize;
                    let finished = clock.now();
                    stats.elapsed = finished.since(started);
                    stats.node_elapsed = vec![(node_id, stats.elapsed)];
                    if obs_enabled {
                        h_search.record(stats.elapsed.as_micros());
                    }
                    if span.enabled() {
                        obs.spans.finish_with(
                            span,
                            finished,
                            format!("acgs={} hits={}", stats.epoch_pins, hits.len()),
                        );
                    }
                    note_if_slow(&obs, slow_after, ctx, finished, &request, &stats);
                    reply(Response::SearchHits { hits, stats });
                });
            }
            Request::OpenSearch { acgs, request, client, page, now, ctx } => {
                self.searches_served.inc();
                let started = self.clock.now();
                let span = self.obs.spans.begin(ctx, SpanKind::Search, started);
                // Commit-then-search, exactly as for a one-shot Search;
                // later pulls do NOT re-commit — the session pages the
                // epochs pinned here for its whole lifetime, so every
                // page reflects one consistent committed view.
                let epochs = match self.commit_for_search(&acgs, now) {
                    Ok(epochs) => epochs,
                    Err(e) => return reply(Response::Err(e)),
                };
                let pinned = self.clock.now();
                if self.config.obs_enabled {
                    self.h_epoch_pin.record(pinned.since(started).as_micros());
                }
                if span.enabled() {
                    let pin = self.obs.spans.begin(span.ctx(), SpanKind::EpochPin, started);
                    self.obs.spans.finish(pin, pinned);
                }
                let pool = Arc::clone(&self.pool);
                let clock = Arc::clone(&self.clock);
                let commits = Arc::clone(&self.commits);
                let commits_before = commits.get();
                let sessions = Arc::clone(&self.sessions);
                let obs = Arc::clone(&self.obs);
                let obs_enabled = self.config.obs_enabled;
                let slow_after = self.config.slow_query_threshold;
                let h_search = Arc::clone(&self.h_search);
                let node_id = self.id;
                self.pool.submit(move || {
                    let request = Arc::new(request);
                    let acg_trace: AcgTrace =
                        span.enabled().then(|| (Arc::clone(&obs), span.ctx(), Arc::clone(&clock)));
                    let (mut session, mut stats) = NodeSearchSession::open(
                        &epochs,
                        request.as_ref(),
                        run_classic_on_pool(&pool, &epochs, &request, acg_trace),
                    );
                    let SessionPage { hits, stats: page_stats, exhausted } =
                        session.pull_pinned(page);
                    stats.absorb(page_stats);
                    stats.epoch_pins = epochs.len();
                    stats.commits_during_search = (commits.get() - commits_before) as usize;
                    let session_id = if exhausted {
                        // Nothing left: report the final accounting now and
                        // never store the session (0 = do not pull or
                        // close).
                        stats.absorb(session.close());
                        0
                    } else {
                        sessions.store(client, session)
                    };
                    let finished = clock.now();
                    stats.elapsed = finished.since(started);
                    stats.node_elapsed = vec![(node_id, stats.elapsed)];
                    if obs_enabled {
                        h_search.record(stats.elapsed.as_micros());
                    }
                    if span.enabled() {
                        obs.spans.finish_with(
                            span,
                            finished,
                            format!("open session={session_id} hits={}", hits.len()),
                        );
                    }
                    note_if_slow(&obs, slow_after, ctx, finished, &request, &stats);
                    reply(Response::SearchPage { session: session_id, hits, stats, exhausted });
                });
            }
            Request::PullHits { session, page, ctx } => {
                let started = self.clock.now();
                let span = self.obs.spans.begin(ctx, SpanKind::Pull, started);
                let clock = Arc::clone(&self.clock);
                let sessions = Arc::clone(&self.sessions);
                let obs = Arc::clone(&self.obs);
                let obs_enabled = self.config.obs_enabled;
                let h_pull = Arc::clone(&self.h_pull);
                let node_id = self.id;
                self.pool.submit(move || {
                    let Some(slot) = sessions.checkout(session) else {
                        return reply(Response::Err(Error::SearchSessionExpired { session }));
                    };
                    // Concurrent pulls on one session serialize on its own
                    // mutex, never on the table or the actor.
                    let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    let SessionPage { hits, mut stats, exhausted } = guard.pull_pinned(page);
                    if exhausted {
                        stats.absorb(guard.close());
                        drop(guard);
                        sessions.remove(session);
                    }
                    let finished = clock.now();
                    stats.elapsed = finished.since(started);
                    stats.node_elapsed = vec![(node_id, stats.elapsed)];
                    if obs_enabled {
                        h_pull.record(stats.elapsed.as_micros());
                    }
                    if span.enabled() {
                        obs.spans.finish_with(
                            span,
                            finished,
                            format!("session={session} hits={}", hits.len()),
                        );
                    }
                    reply(Response::SearchPage { session, hits, stats, exhausted });
                });
            }
            other => reply(self.handle_sync(other)),
        }
    }

    /// The inline (actor-thread) arms of the request match.
    fn handle_sync(&mut self, req: Request) -> Response {
        match req {
            Request::IndexBatch { acg, ops, now, ctx } => {
                // Reject ops for files migrated out of this ACG: the client
                // is using a route that moved. It drops its cache entry,
                // re-resolves through the Master and retries.
                if let Some(moved) = self.moved_away.get(&acg) {
                    if let Some(op) = ops.iter().find(|op| moved.contains_key(&op.file())) {
                        return Response::Err(Error::StaleRoute { acg, file: op.file() });
                    }
                }
                let started = self.clock.now();
                let span = self.obs.spans.begin(ctx, SpanKind::Ingest, started);
                let obs = Arc::clone(&self.obs);
                let clock = Arc::clone(&self.clock);
                let obs_enabled = self.config.obs_enabled;
                let h_ingest = Arc::clone(&self.h_ingest);
                let h_fsync = Arc::clone(&self.h_fsync);
                let n_ops = ops.len();
                self.ops_received.add(n_ops as u64);
                let group = match self.group_mut(acg) {
                    Ok(group) => group,
                    Err(e) => return Response::Err(e),
                };
                // Group commit: the whole batch becomes ONE WAL frame (one
                // syscall on the file backend) and is buffered
                // all-or-nothing.
                if let Err(e) = group.enqueue_batch(ops, now) {
                    return Response::Err(e);
                }
                let lsn = group.last_lsn();
                // Durability point: a durable node acknowledges a batch
                // only once its frame is on stable storage.
                let durable = group.is_durable();
                if durable {
                    let f0 = clock.now();
                    if let Err(e) = group.sync_wal() {
                        return Response::Err(e);
                    }
                    let f1 = clock.now();
                    if obs_enabled {
                        h_fsync.record(f1.since(f0).as_micros());
                    }
                    if span.enabled() {
                        let fsync = obs.spans.begin(span.ctx(), SpanKind::WalFsync, f0);
                        obs.spans.finish(fsync, f1);
                    }
                    self.maybe_snapshot(acg, now);
                }
                let finished = clock.now();
                if obs_enabled {
                    h_ingest.record(finished.since(started).as_micros());
                }
                if span.enabled() {
                    obs.spans.finish_with(span, finished, format!("{acg} ops={n_ops} lsn={lsn}"));
                }
                Response::BatchLogged { lsn }
            }
            Request::ReplicateBatch { acg, lsn, ops, now, ctx } => {
                // No stale-route check here: the primary already validated
                // the batch's routes when it logged the frame; a replicated
                // frame must apply verbatim or replicas diverge.
                let started = self.clock.now();
                let span = self.obs.spans.begin(ctx, SpanKind::Replicate, started);
                let obs = Arc::clone(&self.obs);
                let clock = Arc::clone(&self.clock);
                let obs_enabled = self.config.obs_enabled;
                let h_fsync = Arc::clone(&self.h_fsync);
                let n_ops = ops.len();
                self.ops_received.add(n_ops as u64);
                let commits = Arc::clone(&self.commits);
                let group = match self.group_mut(acg) {
                    Ok(group) => group,
                    Err(e) => return Response::Err(e),
                };
                let have = group.last_lsn();
                if lsn <= have {
                    // Duplicate delivery (sender retry): already applied.
                    return Response::ReplicaApplied { lsn: have };
                }
                if lsn > have + 1 {
                    // Applying out of order would silently skip frames;
                    // make the sender run catch-up first.
                    return Response::ReplicaLagging { lsn: have };
                }
                if let Err(e) = group.enqueue_batch(ops, now) {
                    return Response::Err(e);
                }
                if group.is_durable() {
                    let f0 = clock.now();
                    if let Err(e) = group.sync_wal() {
                        return Response::Err(e);
                    }
                    let f1 = clock.now();
                    if obs_enabled {
                        h_fsync.record(f1.since(f0).as_micros());
                    }
                    if span.enabled() {
                        let fsync = obs.spans.begin(span.ctx(), SpanKind::WalFsync, f0);
                        obs.spans.finish(fsync, f1);
                    }
                }
                // Followers commit eagerly: a replica is only useful if a
                // failover search finds the acknowledged frames in it, and
                // the commit also keeps `applied == logged` so the ack LSN
                // reflects searchable state.
                if let Err(e) = Self::commit_group(&commits, group, now) {
                    return Response::Err(e);
                }
                let lsn = group.last_lsn();
                if group.is_durable() {
                    self.maybe_snapshot(acg, now);
                }
                if span.enabled() {
                    let finished = clock.now();
                    obs.spans.finish_with(span, finished, format!("{acg} ops={n_ops} lsn={lsn}"));
                }
                Response::ReplicaApplied { lsn }
            }
            Request::FetchAcgFrames { acg, after_lsn, now } => {
                let commits = Arc::clone(&self.commits);
                let Some(group) = self.groups.get_mut(&acg) else {
                    return Response::Err(Error::AcgNotFound(acg));
                };
                if group.can_ship_frames_after(after_lsn) {
                    match group.wal_frames_after(after_lsn) {
                        Ok(frames) => Response::AcgFrames(frames),
                        Err(e) => Response::Err(e),
                    }
                } else {
                    // The WAL no longer reaches back to `after_lsn`
                    // (truncated by commit or snapshot): fall back to a
                    // full seed. Commit first so the record set reflects
                    // every logged frame and the seed LSN is exact.
                    if let Err(e) = Self::commit_group(&commits, group, now) {
                        return Response::Err(e);
                    }
                    Response::AcgSeed {
                        lsn: group.last_lsn(),
                        records: group.records().cloned().collect(),
                    }
                }
            }
            Request::SeedAcg { acg, lsn, records, now } => {
                // Quiesce the background snapshot writer first: a seed
                // resets the WAL and rewrites the durable checkpoint, and
                // an in-flight write of the pre-seed epoch must not land
                // after (and contradict) the seed's on-disk image.
                self.flush_snapshots();
                // Seeded files live here now: clear their tombstones (same
                // rule as InstallAcg) or a revival would reject valid
                // batches forever.
                if let Some(moved) = self.moved_away.get_mut(&acg) {
                    let before = moved.len();
                    for record in &records {
                        moved.remove(&record.file);
                    }
                    let changed = moved.len() != before;
                    if moved.is_empty() {
                        self.moved_away.remove(&acg);
                    }
                    if changed {
                        self.persist_tombstones();
                    }
                }
                let group = match self.group_mut(acg) {
                    Ok(group) => group,
                    Err(e) => return Response::Err(e),
                };
                match group.install_seed(records, lsn, now) {
                    Ok(()) => Response::ReplicaApplied { lsn },
                    Err(e) => Response::Err(e),
                }
            }
            Request::AcgLsns => {
                let mut rows: Vec<(AcgId, u64)> =
                    self.groups.iter().map(|(&acg, g)| (acg, g.last_lsn())).collect();
                rows.sort();
                Response::AcgLsnReport(rows)
            }
            Request::CloseSearch { session } => match self.sessions.remove(session) {
                Some(slot) => {
                    let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    Response::SearchClosed { stats: guard.close() }
                }
                // Idempotent: the session was evicted or already closed.
                None => Response::SearchClosed { stats: SearchStats::default() },
            },
            Request::FlushAcgDelta { acg, edges } => {
                let graph = self.graphs.entry(acg).or_default();
                graph.apply_updates(edges);
                Response::Ok
            }
            Request::CreateIndex { spec } => {
                // Idempotent re-broadcast: a revived node may be handed a
                // spec it already carries (registered pre-crash, or
                // recovered from group snapshots). An identical spec acks
                // without touching the groups; only a *conflicting* spec
                // under the same name is an error.
                if self.extra_specs.contains(&spec) {
                    return Response::Ok;
                }
                if self.extra_specs.iter().any(|s| s.name == spec.name) {
                    return Response::Err(Error::IndexExists(spec.name));
                }
                // Apply to every group, rolling the spec back out of the
                // groups that already accepted it if one fails — a node
                // never ends up with the index on only some of its groups.
                let acgs: Vec<AcgId> = self.groups.keys().copied().collect();
                let mut applied: Vec<AcgId> = Vec::new();
                for acg in acgs {
                    let group = self.groups.get_mut(&acg).expect("key just listed");
                    // A group whose recovered snapshot already holds the
                    // identical spec is already done.
                    if group.index_specs().contains(&spec) {
                        continue;
                    }
                    match group.create_index(spec.clone()) {
                        Ok(()) => applied.push(acg),
                        Err(e) => {
                            for acg in applied {
                                if let Some(group) = self.groups.get_mut(&acg) {
                                    let _ = group.drop_index(&spec.name);
                                }
                            }
                            return Response::Err(e);
                        }
                    }
                }
                self.extra_specs.push(spec);
                Response::Ok
            }
            Request::DropIndex { name } => {
                self.extra_specs.retain(|s| s.name != name);
                for group in self.groups.values_mut() {
                    // Idempotent rollback: groups that never got the spec
                    // are fine.
                    let _ = group.drop_index(&name);
                }
                Response::Ok
            }
            Request::SplitAcg { acg } => {
                let commits = Arc::clone(&self.commits);
                let Some(group) = self.groups.get_mut(&acg) else {
                    return Response::Err(Error::AcgNotFound(acg));
                };
                // Commit so the split sees every acknowledged file.
                if let Err(e) = Self::commit_group(&commits, group, Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                let files = group.files();
                // Bisect the causality subgraph over the group's files;
                // files without causality data become isolated vertices and
                // get balanced across halves by the partitioner.
                let mut graph =
                    self.graphs.get(&acg).map(|g| g.subgraph(&files)).unwrap_or_default();
                for &f in &files {
                    graph.add_vertex(f);
                }
                let bisection = bisect(&graph, &self.config.partition);
                Response::SplitHalves { left: bisection.left, right: bisection.right }
            }
            Request::ExtractAcgPart { acg, files } => {
                // Phase one of the two-phase migration: hand the part to
                // the coordinator but **tombstone and retain** it. The
                // retained records keep this node the part's one durable
                // home until the Master logs the targets' install ack and
                // the coordinator issues the explicit RemoveAcgPart — a
                // crash anywhere in between loses nothing, and re-running
                // the extraction returns the identical payload.
                let commits = Arc::clone(&self.commits);
                let Some(group) = self.groups.get_mut(&acg) else {
                    return Response::Err(Error::AcgNotFound(acg));
                };
                // Commit so extracted records reflect every acknowledged op.
                if let Err(e) = Self::commit_group(&commits, group, Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                let wanted: std::collections::HashSet<FileId> = files.iter().copied().collect();
                let records: Vec<FileRecord> =
                    group.records().filter(|r| wanted.contains(&r.file)).cloned().collect();
                // Tombstone the moved files (durably): batches still
                // routing them here are stale and must re-resolve (see
                // IndexBatch) — the fence goes up before the part ever
                // leaves this node, so the extracted payload cannot be
                // diluted by late writes.
                self.add_tombstones(acg, &files);
                // Carve the matching subgraph out of the ACG graph.
                let edges: Vec<EdgeUpdate> = match self.graphs.get_mut(&acg) {
                    Some(graph) => {
                        let sub = graph.subgraph(&files);
                        for &f in &files {
                            graph.remove_vertex(f);
                        }
                        sub.edges()
                            .map(|(src, dst, weight)| EdgeUpdate { src, dst, weight })
                            .collect()
                    }
                    None => Vec::new(),
                };
                Response::AcgPart { records, edges }
            }
            Request::RemoveAcgPart { acg, files } => {
                // Phase two of the two-phase migration, issued only after
                // the Master durably logged the install ack: drop the
                // retained copies. Idempotent — files already removed (a
                // re-run after a coordinator crash) are skipped, and the
                // batch is all-or-nothing, so this node either still owns
                // the whole part durably or none of it.
                //
                // Quiesce the background writer first: the sync
                // post-removal snapshot below must not race an in-flight
                // write of the pre-removal epoch.
                self.flush_snapshots();
                let commits = Arc::clone(&self.commits);
                let Some(group) = self.groups.get_mut(&acg) else {
                    // The group itself is gone (already migrated away
                    // wholesale); nothing retained, nothing to remove.
                    return Response::Ok;
                };
                if let Err(e) = Self::commit_group(&commits, group, Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                let present: std::collections::HashSet<FileId> =
                    group.files().into_iter().collect();
                let removes: Vec<propeller_index::IndexOp> = files
                    .iter()
                    .filter(|f| present.contains(f))
                    .map(|&f| propeller_index::IndexOp::Remove(f))
                    .collect();
                if !removes.is_empty() {
                    if let Err(e) = group.enqueue_batch(removes, Timestamp::EPOCH) {
                        return Response::Err(e);
                    }
                    // Unlike the extract, the remove is fsynced and
                    // snapshot-covered *strictly* — an un-durable remove
                    // acked to the coordinator would let a later revival
                    // resurrect files the cluster has already rerouted.
                    if group.is_durable() {
                        if let Err(e) = group.sync_wal() {
                            return Response::Err(e);
                        }
                    }
                    if let Err(e) = Self::commit_group(&commits, group, Timestamp::EPOCH) {
                        return Response::Err(e);
                    }
                    let _ = group.snapshot();
                }
                // Re-assert the fence: a re-run after a crash must leave
                // the tombstones in place either way.
                self.add_tombstones(acg, &files);
                Response::Ok
            }
            Request::InstallAcg { acg, records, edges } => {
                // Quiesce the background writer (same reasoning as
                // ExtractAcgPart: the sync snapshot below must win).
                self.flush_snapshots();
                let commits = Arc::clone(&self.commits);
                // A file migrating (back) into an ACG hosted here is no
                // longer moved-away from it — durably, or a revival would
                // resurrect the tombstone and reject valid batches forever.
                if let Some(moved) = self.moved_away.get_mut(&acg) {
                    let before = moved.len();
                    for record in &records {
                        moved.remove(&record.file);
                    }
                    let changed = moved.len() != before;
                    if moved.is_empty() {
                        self.moved_away.remove(&acg);
                    }
                    if changed {
                        self.persist_tombstones();
                    }
                }
                let group = match self.group_mut(acg) {
                    Ok(group) => group,
                    Err(e) => return Response::Err(e),
                };
                let ops: Vec<propeller_index::IndexOp> =
                    records.into_iter().map(propeller_index::IndexOp::Upsert).collect();
                // One group-committed frame (and one fsync on a durable
                // node) covers the whole installed part.
                if let Err(e) = group.enqueue_batch(ops, Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                if group.is_durable() {
                    if let Err(e) = group.sync_wal() {
                        return Response::Err(e);
                    }
                }
                if let Err(e) = Self::commit_group(&commits, group, Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                // Migrated-in state is snapshot-covered right away
                // (best-effort): the moved half's durable home is now this
                // node.
                let _ = group.snapshot();
                self.graphs.entry(acg).or_default().apply_updates(edges);
                Response::Ok
            }
            Request::Tick { now } => {
                let commits = Arc::clone(&self.commits);
                let acgs: Vec<AcgId> = self.groups.keys().copied().collect();
                for acg in acgs {
                    let group = self.groups.get_mut(&acg).expect("key just listed");
                    if group.commit_due(now) {
                        if let Err(e) = Self::commit_group(&commits, group, now) {
                            return Response::Err(e);
                        }
                    }
                    // Background snapshotting rides the maintenance tick,
                    // so update-quiet groups still bound their logs.
                    self.maybe_snapshot(acg, now);
                }
                Response::Status { acgs: self.summaries(), load: self.sessions.len() as u64 }
            }
            Request::NodeStats => {
                self.drain_snapshot_completions();
                Response::NodeStatsReport {
                    node: self.id,
                    acgs: self.groups.len(),
                    open_sessions: self.sessions.len(),
                    searches_served: self.searches_served.get(),
                    ops_received: self.ops_received.get(),
                    commits_published: self.commits.get(),
                    snapshots_offloaded: self.snapshots_offloaded.get(),
                }
            }
            Request::DumpTrace { trace } => Response::TraceSpans(self.obs.spans.harvest(trace)),
            Request::Metrics => {
                self.drain_snapshot_completions();
                // Occupancy gauges are sampled at snapshot time — they are
                // instantaneous facts, not monotone counts.
                self.obs.metrics.gauge(names::OPEN_SESSIONS).set(self.sessions.len() as u64);
                self.obs.metrics.gauge(names::ACGS_HOSTED).set(self.groups.len() as u64);
                Response::Metrics(Box::new(self.obs.metrics.snapshot()))
            }
            Request::DumpSlowQueries => Response::SlowQueries(self.obs.slow.dump()),
            Request::Heartbeat { .. } => {
                // The runtime turns our summaries into the heartbeat; an
                // inbound Heartbeat is a protocol error.
                Response::Err(Error::Rpc("index node does not accept heartbeats".into()))
            }
            other => Response::Err(Error::Rpc(format!("index node cannot handle {other:?}"))),
        }
    }

    /// Produces this node's heartbeat payload.
    pub fn heartbeat(&self, now: Timestamp) -> Request {
        Request::Heartbeat {
            node: self.id,
            acgs: self.summaries(),
            load: self.sessions.len() as u64,
            now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_index::IndexOp;
    use propeller_query::Query;
    use propeller_types::InodeAttrs;

    fn node() -> IndexNode {
        IndexNode::new(NodeId::new(1), IndexNodeConfig::default())
    }

    fn rec(file: u64, size: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
    }

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn search(n: &mut IndexNode, acgs: Vec<AcgId>, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, t(0)).unwrap();
        let request = propeller_query::SearchRequest::new(q.predicate);
        match n.handle(Request::Search {
            acgs,
            request,
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, .. } => hits.into_iter().map(|h| h.file).collect(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_then_search_one_acg() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..50).map(|i| IndexOp::Upsert(rec(i, i << 20))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        let hits = search(&mut n, vec![acg], "size>16m");
        assert_eq!(hits.len(), 33, "sizes 17..49 MiB");
    }

    #[test]
    fn search_commits_pending_ops() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(1, 1 << 30))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        // No tick, no timeout elapsed — search must still see the file.
        let hits = search(&mut n, vec![acg], "size>512m");
        assert_eq!(hits, vec![FileId::new(1)]);
    }

    #[test]
    fn search_multiple_acgs_merges() {
        let mut n = node();
        for acg in 1..=3u64 {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: vec![IndexOp::Upsert(rec(acg * 10, 1 << 25))],
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
        let hits = search(&mut n, (1..=3).map(AcgId::new).collect(), "size>16m");
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn unknown_acg_in_search_is_skipped() {
        let mut n = node();
        assert!(search(&mut n, vec![AcgId::new(9)], "size>0").is_empty());
    }

    #[test]
    fn tick_commits_timed_out_caches() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(1, 100))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert_eq!(n.groups[&acg].pending_ops(), 1);
        n.handle(Request::Tick { now: t(1) }); // before timeout
        assert_eq!(n.groups[&acg].pending_ops(), 1);
        n.handle(Request::Tick { now: t(6) }); // past the 5s timeout
        assert_eq!(n.groups[&acg].pending_ops(), 0);
    }

    #[test]
    fn split_produces_balanced_halves() {
        let mut n = node();
        let acg = AcgId::new(1);
        // Two clear communities in the causality graph.
        let mut edges = Vec::new();
        for base in [0u64, 100] {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push(EdgeUpdate {
                        src: FileId::new(base + i),
                        dst: FileId::new(base + j),
                        weight: 5,
                    });
                }
            }
        }
        edges.push(EdgeUpdate { src: FileId::new(9), dst: FileId::new(100), weight: 1 });
        n.handle(Request::FlushAcgDelta { acg, edges });
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..10).chain(100..110).map(|i| IndexOp::Upsert(rec(i, i))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        match n.handle(Request::SplitAcg { acg }) {
            Response::SplitHalves { left, right } => {
                assert_eq!(left.len() + right.len(), 20);
                assert_eq!(left.len(), 10);
                // Communities must not be mixed.
                let c: std::collections::HashSet<u64> =
                    left.iter().map(|f| f.raw() / 100).collect();
                assert_eq!(c.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extract_install_migration_round_trip() {
        let mut src = node();
        let mut dst = IndexNode::new(NodeId::new(2), IndexNodeConfig::default());
        let acg = AcgId::new(1);
        let new_acg = AcgId::new(2);
        src.handle(Request::IndexBatch {
            acg,
            ops: (0..20).map(|i| IndexOp::Upsert(rec(i, i << 20))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        src.handle(Request::FlushAcgDelta {
            acg,
            edges: vec![EdgeUpdate { src: FileId::new(15), dst: FileId::new(16), weight: 3 }],
        });
        let moved: Vec<FileId> = (10..20).map(FileId::new).collect();
        let (records, edges) =
            match src.handle(Request::ExtractAcgPart { acg, files: moved.clone() }) {
                Response::AcgPart { records, edges } => (records, edges),
                other => panic!("{other:?}"),
            };
        assert_eq!(records.len(), 10);
        assert_eq!(edges.len(), 1, "the 15->16 edge moves with its files");
        dst.handle(Request::InstallAcg { acg: new_acg, records, edges });
        // The extract retained the part; the explicit post-install remove
        // completes the hand-off.
        assert!(matches!(
            src.handle(Request::RemoveAcgPart { acg, files: moved.clone() }),
            Response::Ok
        ));

        // Source no longer finds the moved files; target does.
        let src_hits = search(&mut src, vec![acg], "size>=10m");
        assert!(src_hits.is_empty(), "{src_hits:?}");
        let dst_hits = search(&mut dst, vec![new_acg], "size>=10m");
        assert_eq!(dst_hits.len(), 10);
    }

    #[test]
    fn create_index_applies_to_existing_and_future_groups() {
        let mut n = node();
        n.handle(Request::IndexBatch {
            acg: AcgId::new(1),
            ops: vec![IndexOp::Upsert(rec(1, 5))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        let spec = IndexSpec::btree("uid_idx", propeller_types::AttrName::Uid);
        assert!(matches!(n.handle(Request::CreateIndex { spec }), Response::Ok));
        assert!(n.groups[&AcgId::new(1)].index_specs().iter().any(|s| s.name == "uid_idx"));
        // A group created later also carries the index.
        n.handle(Request::IndexBatch {
            acg: AcgId::new(2),
            ops: vec![IndexOp::Upsert(rec(2, 5))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(n.groups[&AcgId::new(2)].index_specs().iter().any(|s| s.name == "uid_idx"));
    }

    #[test]
    fn heartbeat_reports_summaries() {
        let mut n = node();
        n.handle(Request::IndexBatch {
            acg: AcgId::new(3),
            ops: vec![IndexOp::Upsert(rec(1, 5)), IndexOp::Upsert(rec(2, 6))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        match n.heartbeat(t(1)) {
            Request::Heartbeat { node, acgs, .. } => {
                assert_eq!(node, NodeId::new(1));
                assert_eq!(acgs.len(), 1);
                // Ops are still pending (not committed): the heartbeat
                // exposes both the projected scale and the backlog.
                assert_eq!(acgs[0].files, 2, "two new files about to commit");
                assert_eq!(acgs[0].pending_ops, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heartbeat_scale_nets_out_reupserts_and_removes() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..20).map(|i| IndexOp::Upsert(rec(i, i))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        // Commit via a search so the 20 files are indexed.
        search(&mut n, vec![acg], "size>=0");
        // A re-upsert-heavy batch: 20 updates of indexed files, 3 removes,
        // 2 genuinely new files — all buffered, not committed.
        let mut ops: Vec<IndexOp> = (0..20).map(|i| IndexOp::Upsert(rec(i, i + 500))).collect();
        ops.push(IndexOp::Remove(FileId::new(0)));
        ops.push(IndexOp::Remove(FileId::new(1)));
        ops.push(IndexOp::Remove(FileId::new(2)));
        ops.push(IndexOp::Upsert(rec(100, 1)));
        ops.push(IndexOp::Upsert(rec(101, 1)));
        n.handle(Request::IndexBatch {
            acg,
            ops,
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        match n.heartbeat(t(2)) {
            Request::Heartbeat { acgs, .. } => {
                assert_eq!(acgs[0].pending_ops, 25, "the raw backlog is still visible");
                assert_eq!(
                    acgs[0].files, 19,
                    "scale is 20 - 3 removed + 2 new, not len + pending = 45"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_global_cutoff_bounds_scans_across_acgs() {
        use propeller_query::{SearchRequest, SortKey};
        const ACGS: u64 = 16;
        const PER_ACG: u64 = 500;
        const K: usize = 100;
        let seed_node = |parallelism: usize| {
            let mut n = IndexNode::new(
                NodeId::new(1),
                IndexNodeConfig { search_parallelism: parallelism, ..IndexNodeConfig::default() },
            );
            for acg in 1..=ACGS {
                n.handle(Request::IndexBatch {
                    acg: AcgId::new(acg),
                    ops: (0..PER_ACG)
                        .map(|i| {
                            let id = acg * 10_000 + i;
                            IndexOp::Upsert(rec(id, ((id * 7919) % 100_000) << 10))
                        })
                        .collect(),
                    now: t(0),
                    ctx: propeller_obs::TraceContext::NONE,
                });
            }
            n
        };
        let q = Query::parse("size>0", t(0)).unwrap();
        let request = SearchRequest::new(q.predicate)
            .with_limit(K)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let run = |n: &mut IndexNode| match n.handle(Request::Search {
            acgs: (1..=ACGS).map(AcgId::new).collect(),
            request: request.clone(),
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, stats } => (hits, stats),
            other => panic!("{other:?}"),
        };
        let (hits, stats) = run(&mut seed_node(8));
        assert_eq!(hits.len(), K);
        assert_eq!(stats.acgs_consulted, ACGS as usize);
        // The acceptance witness: one k-way merge across the 16 ordered
        // streams admits k hits total — nowhere near 16 * k per-ACG scans.
        assert!(
            stats.candidates_scanned < (ACGS as usize) * K / 4,
            "node-global cutoff must scan far less than 16k: scanned {}",
            stats.candidates_scanned
        );
        assert!(stats.merge_skipped > 0, "merge-level skips must be witnessed: {stats:?}");
        assert_eq!(
            stats.candidates_scanned + stats.candidates_skipped,
            (ACGS * PER_ACG) as usize,
            "scan/skip accounting covers the node"
        );
        // Pooled execution is byte-identical to strictly sequential.
        let (seq_hits, seq_stats) = run(&mut seed_node(1));
        assert_eq!(hits, seq_hits);
        assert_eq!(stats.candidates_scanned, seq_stats.candidates_scanned);
        assert_eq!(stats.merge_skipped, seq_stats.merge_skipped);
    }

    #[test]
    fn stale_batch_for_migrated_file_is_rejected() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..20).map(|i| IndexOp::Upsert(rec(i, i))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        let moved: Vec<FileId> = (10..20).map(FileId::new).collect();
        n.handle(Request::ExtractAcgPart { acg, files: moved });
        // A batch routed with the old (acg, node) pair must be rejected,
        // not silently resurrected in the source group.
        let resp = n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(15, 1 << 20))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(
            matches!(resp, Response::Err(Error::StaleRoute { file, .. }) if file == FileId::new(15)),
            "{resp:?}"
        );
        // Kept files still index fine.
        let resp = n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(5, 1 << 20))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(matches!(resp, Response::BatchLogged { .. }), "{resp:?}");
    }

    #[test]
    fn search_request_returns_per_node_topk_with_stats() {
        use propeller_query::{SearchRequest, SortKey};
        let mut n = node();
        for acg in 1..=3u64 {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: (0..50)
                    .map(|i| IndexOp::Upsert(rec(acg * 100 + i, (acg * 100 + i) << 20)))
                    .collect(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
        let q = Query::parse("size>0", t(0)).unwrap();
        let request = SearchRequest::new(q.predicate)
            .with_limit(5)
            .sorted_by(SortKey::Descending(propeller_types::AttrName::Size));
        let (hits, stats) = match n.handle(Request::Search {
            acgs: (1..=3).map(AcgId::new).collect(),
            request,
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, stats } => (hits, stats),
            other => panic!("{other:?}"),
        };
        let files: Vec<u64> = hits.iter().map(|h| h.file.raw()).collect();
        assert_eq!(files, vec![349, 348, 347, 346, 345], "largest sizes win");
        assert_eq!(stats.acgs_consulted, 3);
        assert!(stats.retained_peak <= 5, "per-ACG bound: {}", stats.retained_peak);
        assert_eq!(stats.access_paths.len(), 3);
        assert!(hits.iter().all(|h| h.acg == Some(AcgId::new(3))));
    }

    #[test]
    fn tombstones_are_bounded_by_fifo_eviction() {
        let mut n = IndexNode::new(
            NodeId::new(1),
            IndexNodeConfig { max_tombstones: 5, ..IndexNodeConfig::default() },
        );
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..10).map(|i| IndexOp::Upsert(rec(i, i))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        n.handle(Request::ExtractAcgPart { acg, files: (0..10).map(FileId::new).collect() });
        assert_eq!(n.tombstone_order.len(), 5, "cap enforced");
        // The oldest tombstones were evicted: a stale batch for file 0 is
        // accepted again (degrades to pre-tombstone behaviour)...
        let resp = n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(0, 1))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(matches!(resp, Response::BatchLogged { .. }), "{resp:?}");
        // ...while the newest are still rejected.
        let resp = n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(9, 1))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(matches!(resp, Response::Err(Error::StaleRoute { .. })), "{resp:?}");
    }

    #[test]
    fn rejected_index_spec_rolls_back_groups_that_accepted_it() {
        let mut n = node();
        for acg in 1..=3u64 {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: vec![IndexOp::Upsert(rec(acg, 5))],
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
        // Pre-seed one group with the name so the broadcast fails there.
        n.groups
            .get_mut(&AcgId::new(2))
            .unwrap()
            .create_index(IndexSpec::btree("clash", propeller_types::AttrName::Uid))
            .unwrap();
        let resp = n.handle(Request::CreateIndex {
            spec: IndexSpec::btree("clash", propeller_types::AttrName::Gid),
        });
        assert!(matches!(resp, Response::Err(Error::IndexExists(_))), "{resp:?}");
        // No group outside the pre-seeded one kept the spec.
        for acg in [1u64, 3] {
            assert!(
                !n.groups[&AcgId::new(acg)].index_specs().iter().any(|s| s.name == "clash"),
                "group {acg} kept a half-applied spec"
            );
        }
        assert!(n.extra_specs.is_empty());
    }

    #[test]
    fn drop_index_removes_from_existing_and_future_groups() {
        let mut n = node();
        n.handle(Request::IndexBatch {
            acg: AcgId::new(1),
            ops: vec![IndexOp::Upsert(rec(1, 5))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        let spec = IndexSpec::btree("uid_idx", propeller_types::AttrName::Uid);
        n.handle(Request::CreateIndex { spec });
        n.handle(Request::DropIndex { name: "uid_idx".into() });
        assert!(!n.groups[&AcgId::new(1)].index_specs().iter().any(|s| s.name == "uid_idx"));
        n.handle(Request::IndexBatch {
            acg: AcgId::new(2),
            ops: vec![IndexOp::Upsert(rec(2, 5))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(!n.groups[&AcgId::new(2)].index_specs().iter().any(|s| s.name == "uid_idx"));
    }

    #[test]
    fn parallel_multi_acg_search_matches_sequential_exactly() {
        use propeller_query::{SearchRequest, SortKey};
        let seed_node = |parallelism: usize| {
            let mut n = IndexNode::new(
                NodeId::new(1),
                IndexNodeConfig { search_parallelism: parallelism, ..IndexNodeConfig::default() },
            );
            for acg in 1..=16u64 {
                n.handle(Request::IndexBatch {
                    acg: AcgId::new(acg),
                    ops: (0..200)
                        .map(|i| IndexOp::Upsert(rec(acg * 1000 + i, ((acg * 7 + i) % 500) << 10)))
                        .collect(),
                    now: t(0),
                    ctx: propeller_obs::TraceContext::NONE,
                });
            }
            n
        };
        let mut sequential = seed_node(1);
        let mut parallel = seed_node(8);
        let q = Query::parse("size>100k", t(0)).unwrap();
        for (limit, sort) in [
            (Some(25), SortKey::Descending(propeller_types::AttrName::Size)),
            (Some(7), SortKey::Ascending(propeller_types::AttrName::Size)),
            (None, SortKey::FileId),
        ] {
            let mut request = SearchRequest::new(q.predicate.clone()).sorted_by(sort);
            if let Some(k) = limit {
                request = request.with_limit(k);
            }
            let run = |n: &mut IndexNode| match n.handle(Request::Search {
                acgs: (1..=16).map(AcgId::new).collect(),
                request: request.clone(),
                now: t(100),
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchHits { hits, stats } => (hits, stats),
                other => panic!("{other:?}"),
            };
            let (seq_hits, seq_stats) = run(&mut sequential);
            let (par_hits, par_stats) = run(&mut parallel);
            assert_eq!(par_hits, seq_hits, "limit {limit:?}");
            // Identical work, identical witnesses — only wall time differs.
            assert_eq!(par_stats.acgs_consulted, seq_stats.acgs_consulted);
            assert_eq!(par_stats.candidates_scanned, seq_stats.candidates_scanned);
            assert_eq!(par_stats.access_paths, seq_stats.access_paths);
            assert_eq!(par_stats.early_terminated, seq_stats.early_terminated);
            assert_eq!(par_stats.candidates_skipped, seq_stats.candidates_skipped);
        }
    }

    #[test]
    fn search_elapsed_is_measured_by_the_injected_clock() {
        /// Advances 1 ms on every `now()` — the search's start/stop reads
        /// land 1 ms apart deterministically.
        struct TickingClock(std::sync::atomic::AtomicU64);
        impl propeller_sim::Clock for TickingClock {
            fn now(&self) -> Timestamp {
                let t = self.0.fetch_add(1_000, std::sync::atomic::Ordering::SeqCst);
                Timestamp::from_micros(t)
            }
            fn charge(&self, _d: Duration) {}
        }
        let mut n = IndexNode::new(NodeId::new(1), IndexNodeConfig::default())
            .with_clock(Arc::new(TickingClock(std::sync::atomic::AtomicU64::new(0))));
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(1, 1 << 20))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        let q = Query::parse("size>0", t(0)).unwrap();
        let request = propeller_query::SearchRequest::new(q.predicate);
        match n.handle(Request::Search {
            acgs: vec![acg],
            request,
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { stats, .. } => {
                assert!(
                    stats.elapsed >= Duration::from_millis(1),
                    "elapsed {:?} not measured",
                    stats.elapsed
                );
            }
            other => panic!("{other:?}"),
        }
    }

    fn topk_request(k: usize) -> propeller_query::SearchRequest {
        let q = Query::parse("size>0", t(0)).unwrap();
        propeller_query::SearchRequest::new(q.predicate)
            .with_limit(k)
            .sorted_by(propeller_query::SortKey::Descending(propeller_types::AttrName::Size))
    }

    fn seed_acgs(n: &mut IndexNode, acgs: u64, per_acg: u64) {
        for acg in 1..=acgs {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: (0..per_acg)
                    .map(|i| {
                        let id = acg * 10_000 + i;
                        IndexOp::Upsert(rec(id, ((id * 7919) % 100_000) << 10))
                    })
                    .collect(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
    }

    fn open(
        n: &mut IndexNode,
        acgs: u64,
        request: &propeller_query::SearchRequest,
        client: u64,
        page: usize,
    ) -> (u64, Vec<Hit>, SearchStats, bool) {
        match n.handle(Request::OpenSearch {
            acgs: (1..=acgs).map(AcgId::new).collect(),
            request: request.clone(),
            client,
            page,
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchPage { session, hits, stats, exhausted } => {
                (session, hits, stats, exhausted)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn streamed_session_pages_concatenate_to_the_one_shot_search() {
        let mut n = node();
        seed_acgs(&mut n, 4, 200);
        let request = topk_request(50);
        let one_shot = match n.handle(Request::Search {
            acgs: (1..=4).map(AcgId::new).collect(),
            request: request.clone(),
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, stats } => {
                assert_eq!(stats.hits_shipped, hits.len(), "one-shot ships everything at once");
                assert_eq!(stats.pages_pulled, 1);
                hits
            }
            other => panic!("{other:?}"),
        };
        let (session, mut all, _, mut exhausted) = open(&mut n, 4, &request, 7, 8);
        assert!(!exhausted);
        let mut pulls = 0;
        while !exhausted {
            pulls += 1;
            match n.handle(Request::PullHits {
                session,
                page: 8,
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchPage { hits, exhausted: done, stats, .. } => {
                    assert!(stats.hits_shipped <= 8);
                    all.extend(hits);
                    exhausted = done;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(all, one_shot, "paged session == one-shot, byte for byte");
        assert!(pulls >= 5, "50 hits over 8-hit pages need several pulls, got {pulls}");
        assert_eq!(n.open_sessions(), 0, "exhausted sessions are dropped");
    }

    #[test]
    fn open_sessions_are_evicted_lru_past_the_table_cap() {
        let mut n = IndexNode::new(
            NodeId::new(1),
            IndexNodeConfig { max_search_sessions: 2, ..IndexNodeConfig::default() },
        );
        seed_acgs(&mut n, 2, 100);
        let request = topk_request(90);
        let (s1, ..) = open(&mut n, 2, &request, 1, 4);
        let (s2, ..) = open(&mut n, 2, &request, 2, 4);
        // Touch s1 so s2 becomes the LRU victim.
        assert!(matches!(
            n.handle(Request::PullHits {
                session: s1,
                page: 4,
                ctx: propeller_obs::TraceContext::NONE
            }),
            Response::SearchPage { .. }
        ));
        let (s3, ..) = open(&mut n, 2, &request, 3, 4);
        assert_eq!(n.open_sessions(), 2);
        assert!(matches!(
            n.handle(Request::PullHits { session: s2, page: 4 , ctx: propeller_obs::TraceContext::NONE }),
            Response::Err(Error::SearchSessionExpired { session }) if session == s2
        ));
        for live in [s1, s3] {
            assert!(matches!(
                n.handle(Request::PullHits {
                    session: live,
                    page: 4,
                    ctx: propeller_obs::TraceContext::NONE
                }),
                Response::SearchPage { .. }
            ));
        }
    }

    #[test]
    fn per_client_session_cap_evicts_that_clients_lru_session() {
        let mut n = IndexNode::new(
            NodeId::new(1),
            IndexNodeConfig { max_search_sessions_per_client: 1, ..IndexNodeConfig::default() },
        );
        seed_acgs(&mut n, 2, 100);
        let request = topk_request(90);
        let (s1, ..) = open(&mut n, 2, &request, 1, 4);
        let (s2, ..) = open(&mut n, 2, &request, 1, 4); // same client: evicts s1
        let (s3, ..) = open(&mut n, 2, &request, 2, 4); // other client: fine
        assert!(matches!(
            n.handle(Request::PullHits {
                session: s1,
                page: 4,
                ctx: propeller_obs::TraceContext::NONE
            }),
            Response::Err(Error::SearchSessionExpired { .. })
        ));
        for live in [s2, s3] {
            assert!(matches!(
                n.handle(Request::PullHits {
                    session: live,
                    page: 4,
                    ctx: propeller_obs::TraceContext::NONE
                }),
                Response::SearchPage { .. }
            ));
        }
    }

    #[test]
    fn evicted_session_resumes_exactly_via_reopen_with_cursor() {
        // The recovery protocol the client runs on SearchSessionExpired:
        // reopen with a cursor after the last hit received — the
        // concatenation must still equal the one-shot result.
        let mut n = IndexNode::new(
            NodeId::new(1),
            IndexNodeConfig { max_search_sessions: 1, ..IndexNodeConfig::default() },
        );
        seed_acgs(&mut n, 3, 150);
        let request = topk_request(40);
        let one_shot = match n.handle(Request::Search {
            acgs: (1..=3).map(AcgId::new).collect(),
            request: request.clone(),
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, .. } => hits,
            other => panic!("{other:?}"),
        };
        let (s1, first, _, exhausted) = open(&mut n, 3, &request, 1, 10);
        assert!(!exhausted);
        // A second client's open evicts s1 (cap 1).
        let (_s2, ..) = open(&mut n, 3, &request, 2, 10);
        assert!(matches!(
            n.handle(Request::PullHits {
                session: s1,
                page: 10,
                ctx: propeller_obs::TraceContext::NONE
            }),
            Response::Err(Error::SearchSessionExpired { .. })
        ));
        // Reopen resuming after the last received hit, asking only for
        // the remaining entitlement (k minus what already arrived) — the
        // same request the client's transparent reopen sends.
        let resume = request
            .clone()
            .with_limit(40 - first.len())
            .after(propeller_query::Cursor::after(first.last().expect("first page non-empty")));
        let mut all = first;
        let (s3, hits, _, mut exhausted) = open(&mut n, 3, &resume, 1, 10);
        all.extend(hits);
        while !exhausted {
            match n.handle(Request::PullHits {
                session: s3,
                page: 10,
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchPage { hits, exhausted: done, .. } => {
                    all.extend(hits);
                    exhausted = done;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(all, one_shot, "resume after eviction loses and duplicates nothing");
    }

    #[test]
    fn close_search_reports_unsent_entitlement_and_is_idempotent() {
        let mut n = node();
        seed_acgs(&mut n, 4, 200);
        let request = topk_request(100);
        let (session, hits, _, exhausted) = open(&mut n, 4, &request, 1, 10);
        assert_eq!(hits.len(), 10);
        assert!(!exhausted);
        match n.handle(Request::CloseSearch { session }) {
            Response::SearchClosed { stats } => {
                assert_eq!(stats.node_hits_unsent, 90, "k=100 minus the 10 shipped");
                assert!(stats.merge_skipped > 0, "unexamined ordered candidates witnessed");
            }
            other => panic!("{other:?}"),
        }
        // Closing again is a no-op.
        match n.handle(Request::CloseSearch { session }) {
            Response::SearchClosed { stats } => assert_eq!(stats, SearchStats::default()),
            other => panic!("{other:?}"),
        }
        assert_eq!(n.open_sessions(), 0);
    }

    #[test]
    fn split_mid_session_degrades_without_panic_or_duplicates() {
        let mut n = node();
        seed_acgs(&mut n, 2, 100);
        let request = topk_request(150);
        let (session, first, _, exhausted) = open(&mut n, 2, &request, 1, 20);
        assert!(!exhausted);
        // ACG 1 migrates away mid-session.
        let files: Vec<FileId> = (0..100).map(|i| FileId::new(10_000 + i)).collect();
        assert!(matches!(
            n.handle(Request::ExtractAcgPart { acg: AcgId::new(1), files }),
            Response::AcgPart { .. }
        ));
        let mut all = first;
        let mut exhausted = false;
        while !exhausted {
            match n.handle(Request::PullHits {
                session,
                page: 20,
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchPage { hits, exhausted: done, .. } => {
                    all.extend(hits);
                    exhausted = done;
                }
                other => panic!("{other:?}"),
            }
        }
        // Still strictly sorted with no duplicates; ACG 2's hits complete.
        assert!(all
            .windows(2)
            .all(|w| request.sort.cmp_hits(&w[0], &w[1]) == std::cmp::Ordering::Less));
        let from_acg2 = all.iter().filter(|h| h.acg == Some(AcgId::new(2))).count();
        assert!(from_acg2 > 0);
    }

    #[test]
    fn durable_node_snapshots_off_the_ops_threshold_and_reopens_from_disk() {
        let dir =
            std::env::temp_dir().join(format!("propeller-node-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || IndexNodeConfig {
            data_dir: Some(dir.clone()),
            snapshot_wal_ops: 50,
            ..IndexNodeConfig::default()
        };
        let acg = AcgId::new(1);
        let baseline = {
            let mut n = IndexNode::open(NodeId::new(1), config()).unwrap();
            // 80 ops > the 50-op threshold: the batch is fsynced and the
            // threshold commit+snapshot fires inside the handler.
            n.handle(Request::IndexBatch {
                acg,
                ops: (0..80).map(|i| IndexOp::Upsert(rec(i, (80 - i) << 10))).collect(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
            // The snapshot is written off-thread; the barrier makes its
            // durable effect observable before we assert on the dir.
            n.flush_snapshots();
            assert!(
                std::fs::read_dir(&dir)
                    .unwrap()
                    .flatten()
                    .any(|e| e.file_name().to_string_lossy().ends_with(".snap")),
                "ops threshold must have triggered a snapshot"
            );
            assert!(n.snapshots_offloaded() >= 1, "snapshot must have gone through the writer");
            // A post-snapshot tail rides the WAL only.
            n.handle(Request::IndexBatch {
                acg,
                ops: (100..110).map(|i| IndexOp::Upsert(rec(i, 5 << 10))).collect(),
                now: t(1),
                ctx: propeller_obs::TraceContext::NONE,
            });
            search(&mut n, vec![acg], "size>0")
            // Crash: the node is dropped without further ceremony.
        };
        assert_eq!(baseline.len(), 90);
        // A reopened node under the same data dir restores everything —
        // snapshot base plus WAL suffix.
        let mut revived = IndexNode::open(NodeId::new(1), config()).unwrap();
        assert_eq!(revived.acg_count(), 1);
        assert_eq!(search(&mut revived, vec![acg], "size>0"), baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_in_progress_blocks_zero_searches() {
        // The witness for the epoch split's headline claim: a snapshot
        // being written never stalls a search. The writer is paused at its
        // gate *holding an in-flight snapshot task*, and every search —
        // plus further ingest — completes while it sits there.
        let dir = temp_dir("snap-nonblocking");
        let config = IndexNodeConfig {
            data_dir: Some(dir.clone()),
            snapshot_wal_ops: 50,
            ..IndexNodeConfig::default()
        };
        let acg = AcgId::new(1);
        let mut n = IndexNode::open(NodeId::new(1), config).unwrap();
        n.pause_snapshot_writer();
        // 80 ops > the 50-op threshold: a snapshot job is enqueued to the
        // (stalled) writer inside this handler.
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..80).map(|i| IndexOp::Upsert(rec(i, (80 - i) << 10))).collect(),
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert_eq!(n.snapshots_offloaded(), 1, "the threshold snapshot must be in flight");
        let snap_on_disk = |dir: &PathBuf| {
            std::fs::read_dir(dir)
                .map(|rd| rd.flatten().any(|e| e.file_name().to_string_lossy().ends_with(".snap")))
                .unwrap_or(false)
        };
        assert!(!snap_on_disk(&dir), "paused writer must not have written yet");
        // Searches run to completion while the snapshot write is stalled.
        for _ in 0..5 {
            assert_eq!(search(&mut n, vec![acg], "size>0").len(), 80);
        }
        // So does further ingest: the build side never waits either.
        n.handle(Request::IndexBatch {
            acg,
            ops: (100..110).map(|i| IndexOp::Upsert(rec(i, 5 << 10))).collect(),
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert_eq!(search(&mut n, vec![acg], "size>0").len(), 90);
        assert!(!snap_on_disk(&dir), "still stalled: the searches above beat the snapshot");
        // Unblock the writer; the barrier makes the write observable.
        n.resume_snapshot_writer();
        n.flush_snapshots();
        assert!(snap_on_disk(&dir), "released writer lands the snapshot");
        drop(n);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_of_unknown_acg_fails() {
        let mut n = node();
        assert!(matches!(
            n.handle(Request::SplitAcg { acg: AcgId::new(42) }),
            Response::Err(Error::AcgNotFound(_))
        ));
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("propeller-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tombstones_survive_crash_and_revival() {
        let dir = temp_dir("tombstone-revive");
        let config =
            || IndexNodeConfig { data_dir: Some(dir.clone()), ..IndexNodeConfig::default() };
        let acg = AcgId::new(1);
        {
            let mut n = IndexNode::open(NodeId::new(1), config()).unwrap();
            n.handle(Request::IndexBatch {
                acg,
                ops: (0..20).map(|i| IndexOp::Upsert(rec(i, i))).collect(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
            let moved: Vec<FileId> = (10..20).map(FileId::new).collect();
            assert!(matches!(
                n.handle(Request::ExtractAcgPart { acg, files: moved }),
                Response::AcgPart { .. }
            ));
            // Crash: dropped without ceremony.
        }
        let mut revived = IndexNode::open(NodeId::new(1), config()).unwrap();
        // The revived node must keep rejecting the stale route...
        let resp = revived.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(15, 1 << 20))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(
            matches!(resp, Response::Err(Error::StaleRoute { file, .. }) if file == FileId::new(15)),
            "{resp:?}"
        );
        // ...while batches for files it kept still land.
        let resp = revived.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(5, 1 << 20))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(matches!(resp, Response::BatchLogged { .. }), "{resp:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_back_clears_the_durable_tombstone() {
        let dir = temp_dir("tombstone-install");
        let config =
            || IndexNodeConfig { data_dir: Some(dir.clone()), ..IndexNodeConfig::default() };
        let acg = AcgId::new(1);
        {
            let mut n = IndexNode::open(NodeId::new(1), config()).unwrap();
            n.handle(Request::IndexBatch {
                acg,
                ops: (0..10).map(|i| IndexOp::Upsert(rec(i, i))).collect(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
            let files: Vec<FileId> = (5..10).map(FileId::new).collect();
            let records = match n.handle(Request::ExtractAcgPart { acg, files }) {
                Response::AcgPart { records, .. } => records,
                other => panic!("{other:?}"),
            };
            // The part migrates back (e.g. a rolled-back split): the
            // tombstones must clear durably.
            assert!(matches!(
                n.handle(Request::InstallAcg { acg, records, edges: Vec::new() }),
                Response::Ok
            ));
        }
        let mut revived = IndexNode::open(NodeId::new(1), config()).unwrap();
        let resp = revived.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(7, 1))],
            now: t(1),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(
            matches!(resp, Response::BatchLogged { .. }),
            "re-installed file must index: {resp:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tombstone_image_degrades_to_pre_tombstone_behaviour() {
        let dir = temp_dir("tombstone-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(tombstone_file_name()), b"PTMBgarbage").unwrap();
        let config = IndexNodeConfig { data_dir: Some(dir.clone()), ..IndexNodeConfig::default() };
        let mut n = IndexNode::open(NodeId::new(1), config).unwrap();
        let resp = n.handle(Request::IndexBatch {
            acg: AcgId::new(1),
            ops: vec![IndexOp::Upsert(rec(1, 1))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        assert!(
            matches!(resp, Response::BatchLogged { .. }),
            "corrupt image must not poison the node: {resp:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Replays every batch a primary acknowledged onto a follower node via
    /// the replication protocol, asserting the LSNs align.
    fn replicate_batch(
        primary: &mut IndexNode,
        follower: &mut IndexNode,
        acg: AcgId,
        ops: Vec<IndexOp>,
        now: Timestamp,
    ) {
        let lsn = match primary.handle(Request::IndexBatch {
            acg,
            ops: ops.clone(),
            now,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::BatchLogged { lsn } => lsn,
            other => panic!("{other:?}"),
        };
        match follower.handle(Request::ReplicateBatch {
            acg,
            lsn,
            ops,
            now,
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::ReplicaApplied { lsn: applied } => assert_eq!(applied, lsn),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn replicated_batches_keep_follower_search_identical() {
        let mut primary = node();
        let mut follower = IndexNode::new(NodeId::new(2), IndexNodeConfig::default());
        let acg = AcgId::new(1);
        for round in 0..5u64 {
            let ops: Vec<IndexOp> = (0..10)
                .map(|i| IndexOp::Upsert(rec(round * 10 + i, (round * 10 + i) << 20)))
                .collect();
            replicate_batch(&mut primary, &mut follower, acg, ops, t(round));
        }
        let on_primary = search(&mut primary, vec![acg], "size>16m");
        let on_follower = search(&mut follower, vec![acg], "size>16m");
        assert_eq!(on_primary, on_follower, "replicas must answer bit-identically");
        assert!(!on_primary.is_empty());
    }

    #[test]
    fn duplicate_and_gapped_frames_are_handled() {
        let mut follower = IndexNode::new(NodeId::new(2), IndexNodeConfig::default());
        let acg = AcgId::new(1);
        let ops = vec![IndexOp::Upsert(rec(1, 1))];
        // First frame applies...
        assert!(matches!(
            follower.handle(Request::ReplicateBatch {
                acg,
                lsn: 1,
                ops: ops.clone(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE
            }),
            Response::ReplicaApplied { lsn: 1 }
        ));
        // ...a duplicate re-delivery acks without re-applying...
        assert!(matches!(
            follower.handle(Request::ReplicateBatch {
                acg,
                lsn: 1,
                ops: ops.clone(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE
            }),
            Response::ReplicaApplied { lsn: 1 }
        ));
        // ...and a gap is refused with the follower's actual position.
        assert!(matches!(
            follower.handle(Request::ReplicateBatch {
                acg,
                lsn: 5,
                ops,
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE
            }),
            Response::ReplicaLagging { lsn: 1 }
        ));
    }

    #[test]
    fn lagging_follower_catches_up_from_a_seed() {
        let mut primary = node();
        let mut follower = IndexNode::new(NodeId::new(2), IndexNodeConfig::default());
        let acg = AcgId::new(1);
        // The primary logs and commits three batches the follower missed
        // entirely (in-memory WALs truncate on commit, so frames are gone).
        for round in 0..3u64 {
            primary.handle(Request::IndexBatch {
                acg,
                ops: (0..5).map(|i| IndexOp::Upsert(rec(round * 5 + i, (i + 1) << 20))).collect(),
                now: t(round),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
        search(&mut primary, vec![acg], "size>0"); // force a commit
        let (lsn, records) =
            match primary.handle(Request::FetchAcgFrames { acg, after_lsn: 0, now: t(10) }) {
                Response::AcgSeed { lsn, records } => (lsn, records),
                other => panic!("expected seed from a truncated in-memory WAL: {other:?}"),
            };
        assert_eq!(lsn, 3, "three frames were logged");
        assert_eq!(records.len(), 15);
        assert!(matches!(
            follower.handle(Request::SeedAcg { acg, lsn, records, now: t(10) }),
            Response::ReplicaApplied { lsn: 3 }
        ));
        // The follower is aligned: the next frame chains directly.
        replicate_batch(
            &mut primary,
            &mut follower,
            acg,
            vec![IndexOp::Upsert(rec(99, 1 << 30))],
            t(11),
        );
        assert_eq!(
            search(&mut primary, vec![acg], "size>0"),
            search(&mut follower, vec![acg], "size>0")
        );
    }

    #[test]
    fn durable_primary_ships_frames_for_catch_up() {
        let dir = temp_dir("repl-frames");
        let config = IndexNodeConfig { data_dir: Some(dir.clone()), ..IndexNodeConfig::default() };
        let mut primary = IndexNode::open(NodeId::new(1), config).unwrap();
        let mut follower = IndexNode::new(NodeId::new(2), IndexNodeConfig::default());
        let acg = AcgId::new(1);
        for round in 0..3u64 {
            primary.handle(Request::IndexBatch {
                acg,
                ops: vec![IndexOp::Upsert(rec(round, (round + 1) << 20))],
                now: t(round),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
        let frames = match primary.handle(Request::FetchAcgFrames { acg, after_lsn: 0, now: t(5) })
        {
            Response::AcgFrames(frames) => frames,
            other => panic!("durable WAL must ship frames: {other:?}"),
        };
        assert_eq!(frames.len(), 3);
        for (lsn, payload) in frames {
            let ops = propeller_index::IndexOp::decode_frame(&payload).unwrap();
            assert!(matches!(
                follower.handle(Request::ReplicateBatch {
                    acg,
                    lsn,
                    ops,
                    now: t(5),
                    ctx: propeller_obs::TraceContext::NONE
                }),
                Response::ReplicaApplied { .. }
            ));
        }
        assert_eq!(
            search(&mut primary, vec![acg], "size>0"),
            search(&mut follower, vec![acg], "size>0")
        );
        let report = match follower.handle(Request::AcgLsns) {
            Response::AcgLsnReport(rows) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(report, vec![(acg, 3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstone_round_trip_encodes_gen_maps_and_order() {
        let mut moved: HashMap<AcgId, HashMap<FileId, u64>> = HashMap::new();
        moved.entry(AcgId::new(1)).or_default().insert(FileId::new(7), 3);
        moved.entry(AcgId::new(2)).or_default().insert(FileId::new(9), 5);
        let mut order = std::collections::VecDeque::new();
        order.push_back((AcgId::new(1), FileId::new(7), 3));
        order.push_back((AcgId::new(2), FileId::new(9), 5));
        // An InstallAcg-style divergence: file 8 is in the order (its
        // tombstone was superseded) but no longer in the live maps.
        order.push_back((AcgId::new(1), FileId::new(8), 4));
        let bytes = encode_tombstones(5, &moved, &order);
        let (gen, moved2, order2) = decode_tombstones(&bytes).expect("round trip");
        assert_eq!(gen, 5);
        assert_eq!(moved2, moved);
        assert_eq!(order2, order);
        // Truncation and bit flips are rejected, not mis-decoded.
        assert!(decode_tombstones(&bytes[..bytes.len() - 1]).is_none());
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0xff;
        assert!(decode_tombstones(&flipped).is_none());
    }

    fn crec(file: u64, text: &str) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::default()).with_content(text)
    }

    fn ranked_request(text: &str, k: usize) -> propeller_query::SearchRequest {
        let q = Query::parse(text, t(0)).unwrap();
        propeller_query::SearchRequest::new(q.predicate)
            .with_limit(k)
            .sorted_by(propeller_query::SortKey::Relevance)
    }

    fn seed_content(n: &mut IndexNode, acgs: u64, per_acg: u64) {
        for acg in 1..=acgs {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: (0..per_acg)
                    .map(|i| {
                        let id = acg * 10_000 + i;
                        let mut text = String::from("report");
                        if i % 3 == 0 {
                            text.push_str(" quarterly tax");
                        }
                        if i % 17 == 0 {
                            for _ in 0..3 {
                                text.push_str(" tax");
                            }
                        }
                        for _ in 0..(i % 6) {
                            text.push_str(" filler");
                        }
                        IndexOp::Upsert(crec(id, &text))
                    })
                    .collect(),
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
    }

    #[test]
    fn ranked_contains_search_flows_through_the_node() {
        let mut n = node();
        seed_content(&mut n, 3, 200);
        let request = ranked_request("contains:\"tax report\"", 15);
        let (hits, stats) = match n.handle(Request::Search {
            acgs: (1..=3).map(AcgId::new).collect(),
            request,
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, stats } => (hits, stats),
            other => panic!("{other:?}"),
        };
        assert_eq!(hits.len(), 15);
        // Scores descend across the node-wide merge.
        let scores: Vec<f64> =
            hits.iter().map(|h| h.sort_key.clone().unwrap().as_f64().unwrap()).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
        // Every group served the query off its inverted index.
        assert_eq!(stats.acgs_consulted, 3);
        assert!(stats
            .access_paths
            .iter()
            .all(|(_, k)| *k == propeller_query::AccessPathKind::Postings));
    }

    #[test]
    fn ranked_contains_session_pages_concatenate_to_the_one_shot() {
        let seeded = || {
            let mut n = node();
            seed_content(&mut n, 3, 200);
            n
        };
        let request = ranked_request("contains-any:\"tax quarterly\"", 40);
        let mut n = seeded();
        let one_shot = match n.handle(Request::Search {
            acgs: (1..=3).map(AcgId::new).collect(),
            request: request.clone(),
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, .. } => hits,
            other => panic!("{other:?}"),
        };
        assert_eq!(one_shot.len(), 40);
        let mut n = seeded();
        let (session, mut all, _, mut exhausted) = match n.handle(Request::OpenSearch {
            acgs: (1..=3).map(AcgId::new).collect(),
            request: request.clone(),
            client: 1,
            page: 7,
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchPage { session, hits, stats, exhausted } => {
                (session, hits, stats, exhausted)
            }
            other => panic!("{other:?}"),
        };
        while !exhausted {
            match n.handle(Request::PullHits {
                session,
                page: 7,
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchPage { hits, exhausted: done, .. } => {
                    all.extend(hits);
                    exhausted = done;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(all, one_shot, "paged ranked session == one-shot, byte for byte");
    }

    #[test]
    fn revived_node_serves_byte_identical_ranked_hits() {
        let dir = temp_dir("ranked-revive");
        let config =
            || IndexNodeConfig { data_dir: Some(dir.clone()), ..IndexNodeConfig::default() };
        let request = ranked_request("contains:\"tax report\"", 20);
        let run = |n: &mut IndexNode| match n.handle(Request::Search {
            acgs: (1..=2).map(AcgId::new).collect(),
            request: request.clone(),
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, .. } => hits,
            other => panic!("{other:?}"),
        };
        let baseline = {
            let mut n = IndexNode::open(NodeId::new(1), config()).unwrap();
            seed_content(&mut n, 2, 150);
            let hits = run(&mut n);
            assert_eq!(hits.len(), 20);
            hits
            // Crash.
        };
        let mut revived = IndexNode::open(NodeId::new(1), config()).unwrap();
        assert_eq!(revived.acg_count(), 2);
        let hits = run(&mut revived);
        assert_eq!(hits, baseline, "recovered postings must rank identically, byte for byte");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inverted_spec_rides_the_broadcast_and_rolls_back_symmetrically() {
        let mut n = node();
        for acg in 1..=3u64 {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: vec![IndexOp::Upsert(crec(acg, "alpha beta"))],
                now: t(0),
                ctx: propeller_obs::TraceContext::NONE,
            });
        }
        // A second inverted family broadcasts like any other index kind.
        let resp = n.handle(Request::CreateIndex { spec: IndexSpec::inverted("aux_inverted") });
        assert!(matches!(resp, Response::Ok), "{resp:?}");
        for acg in 1..=3u64 {
            assert!(n.groups[&AcgId::new(acg)]
                .index_specs()
                .iter()
                .any(|s| s.name == "aux_inverted"));
        }
        // Partial-broadcast rollback: pre-seed one group with a
        // *different* index under the clashing name (an identical spec
        // would be absorbed idempotently), then broadcast — no group may
        // keep the half-applied spec.
        n.groups
            .get_mut(&AcgId::new(2))
            .unwrap()
            .create_index(IndexSpec::btree("inv_clash", propeller_types::AttrName::Uid))
            .unwrap();
        let resp = n.handle(Request::CreateIndex { spec: IndexSpec::inverted("inv_clash") });
        assert!(matches!(resp, Response::Err(Error::IndexExists(_))), "{resp:?}");
        for acg in [1u64, 3] {
            assert!(
                !n.groups[&AcgId::new(acg)].index_specs().iter().any(|s| s.name == "inv_clash"),
                "group {acg} kept a half-applied inverted spec"
            );
        }
        // Symmetric drop: the broadcast family disappears everywhere,
        // including groups created later.
        assert!(matches!(
            n.handle(Request::DropIndex { name: "aux_inverted".into() }),
            Response::Ok
        ));
        n.handle(Request::IndexBatch {
            acg: AcgId::new(4),
            ops: vec![IndexOp::Upsert(crec(40, "alpha"))],
            now: t(0),
            ctx: propeller_obs::TraceContext::NONE,
        });
        for acg in 1..=4u64 {
            assert!(!n.groups[&AcgId::new(acg)]
                .index_specs()
                .iter()
                .any(|s| s.name == "aux_inverted"));
        }
    }

    #[test]
    fn dropping_the_default_inverted_degrades_contains_to_the_scored_scan() {
        let mut n = node();
        seed_content(&mut n, 1, 120);
        let request = ranked_request("contains:tax", 10);
        let run = |n: &mut IndexNode| match n.handle(Request::Search {
            acgs: vec![AcgId::new(1)],
            request: request.clone(),
            now: t(100),
            ctx: propeller_obs::TraceContext::NONE,
        }) {
            Response::SearchHits { hits, stats } => (hits, stats),
            other => panic!("{other:?}"),
        };
        let (indexed_hits, indexed_stats) = run(&mut n);
        assert_eq!(indexed_stats.access_paths[0].1, propeller_query::AccessPathKind::Postings);
        // Drop the default content index: contains queries must degrade to
        // a scored full scan with identical hits, not fail.
        assert!(matches!(
            n.handle(Request::DropIndex { name: "content_inverted".into() }),
            Response::Ok
        ));
        let (scan_hits, scan_stats) = run(&mut n);
        assert_eq!(scan_stats.access_paths[0].1, propeller_query::AccessPathKind::FullScan);
        assert_eq!(scan_hits, indexed_hits, "ranking is index-independent");
    }
}
