//! The Index Node (paper §IV).
//!
//! Hosts the partitioned file indices: one [`AcgIndexGroup`] plus one
//! [`AcgGraph`] per ACG assigned to it. Handles file-indexing batches
//! (WAL + lazy cache), search requests (commit-then-search), ACG delta
//! flushes from clients, split computation (balanced bisection of its own
//! ACG) and migration (extract/install of ACG parts).

use std::collections::HashMap;

use propeller_acg::{bisect, AcgGraph, PartitionConfig};
use propeller_index::{AcgIndexGroup, FileRecord, GroupConfig, IndexSpec};
use propeller_trace::EdgeUpdate;
use propeller_types::{AcgId, Duration, Error, FileId, NodeId, Timestamp};

use crate::messages::{AcgSummary, Request, Response};

/// Index Node configuration.
#[derive(Debug, Clone)]
pub struct IndexNodeConfig {
    /// Lazy-commit timeout for every hosted group (paper default 5 s).
    pub commit_timeout: Duration,
    /// Partitioner settings for splits.
    pub partition: PartitionConfig,
}

impl Default for IndexNodeConfig {
    fn default() -> Self {
        IndexNodeConfig {
            commit_timeout: Duration::from_secs(5),
            partition: PartitionConfig::default(),
        }
    }
}

/// One Index Node's state machine. Driven as an actor by the cluster
/// runtime; unit tests can drive [`IndexNode::handle`] directly.
#[derive(Debug)]
pub struct IndexNode {
    id: NodeId,
    config: IndexNodeConfig,
    groups: HashMap<AcgId, AcgIndexGroup>,
    graphs: HashMap<AcgId, AcgGraph>,
    /// Indices to create on every (current and future) group.
    extra_specs: Vec<IndexSpec>,
    searches_served: u64,
    ops_received: u64,
}

impl IndexNode {
    /// Creates an empty Index Node.
    pub fn new(id: NodeId, config: IndexNodeConfig) -> Self {
        IndexNode {
            id,
            config,
            groups: HashMap::new(),
            graphs: HashMap::new(),
            extra_specs: Vec::new(),
            searches_served: 0,
            ops_received: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of hosted ACGs.
    pub fn acg_count(&self) -> usize {
        self.groups.len()
    }

    /// `(searches served, ops received)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.searches_served, self.ops_received)
    }

    fn group_mut(&mut self, acg: AcgId) -> &mut AcgIndexGroup {
        let config = &self.config;
        let extra = &self.extra_specs;
        self.groups.entry(acg).or_insert_with(|| {
            let mut group = AcgIndexGroup::new(
                acg,
                GroupConfig {
                    commit_timeout: config.commit_timeout,
                    ..GroupConfig::default()
                },
            );
            for spec in extra {
                // Name collisions with defaults are rejected upstream.
                let _ = group.create_index(spec.clone());
            }
            group
        })
    }

    fn summaries(&self) -> Vec<AcgSummary> {
        let mut v: Vec<AcgSummary> = self
            .groups
            .iter()
            .map(|(&acg, g)| AcgSummary {
                // Scale includes buffered upserts: the Master must see an
                // ACG outgrowing its threshold even between commits.
                acg,
                files: g.len() + g.pending_ops(),
                pending_ops: g.pending_ops(),
            })
            .collect();
        v.sort_by_key(|s| s.acg);
        v
    }

    /// Handles one request (the actor body).
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::IndexBatch { acg, ops, now } => {
                self.ops_received += ops.len() as u64;
                let group = self.group_mut(acg);
                for op in ops {
                    if let Err(e) = group.enqueue(op, now) {
                        return Response::Err(e);
                    }
                }
                Response::Ok
            }
            Request::Search { acgs, predicate, now } => {
                self.searches_served += 1;
                let mut hits = Vec::new();
                for acg in acgs {
                    if let Some(group) = self.groups.get_mut(&acg) {
                        // The paper's consistency rule: commit before search.
                        match propeller_query::search(group, &predicate, now) {
                            Ok(mut h) => hits.append(&mut h),
                            Err(e) => return Response::Err(e),
                        }
                    }
                }
                hits.sort_unstable();
                hits.dedup();
                Response::SearchHits(hits)
            }
            Request::FlushAcgDelta { acg, edges } => {
                let graph = self.graphs.entry(acg).or_default();
                graph.apply_updates(edges);
                Response::Ok
            }
            Request::CreateIndex { spec } => {
                for group in self.groups.values_mut() {
                    if let Err(e) = group.create_index(spec.clone()) {
                        return Response::Err(e);
                    }
                }
                self.extra_specs.push(spec);
                Response::Ok
            }
            Request::SplitAcg { acg } => {
                let Some(group) = self.groups.get_mut(&acg) else {
                    return Response::Err(Error::AcgNotFound(acg));
                };
                // Commit so the split sees every acknowledged file.
                if let Err(e) = group.commit(Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                let files = group.files();
                // Bisect the causality subgraph over the group's files;
                // files without causality data become isolated vertices and
                // get balanced across halves by the partitioner.
                let mut graph = self
                    .graphs
                    .get(&acg)
                    .map(|g| g.subgraph(&files))
                    .unwrap_or_default();
                for &f in &files {
                    graph.add_vertex(f);
                }
                let bisection = bisect(&graph, &self.config.partition);
                Response::SplitHalves { left: bisection.left, right: bisection.right }
            }
            Request::ExtractAcgPart { acg, files } => {
                let Some(group) = self.groups.get_mut(&acg) else {
                    return Response::Err(Error::AcgNotFound(acg));
                };
                // Commit so extracted records reflect every acknowledged op.
                if let Err(e) = group.commit(Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                let wanted: std::collections::HashSet<FileId> = files.iter().copied().collect();
                let records: Vec<FileRecord> = group
                    .records()
                    .filter(|r| wanted.contains(&r.file))
                    .cloned()
                    .collect();
                // Remove the moved records from this group.
                for r in &records {
                    let _ = group.enqueue(
                        propeller_index::IndexOp::Remove(r.file),
                        Timestamp::EPOCH,
                    );
                }
                let _ = group.commit(Timestamp::EPOCH);
                // Carve the matching subgraph out of the ACG graph.
                let edges: Vec<EdgeUpdate> = match self.graphs.get_mut(&acg) {
                    Some(graph) => {
                        let sub = graph.subgraph(&files);
                        for &f in &files {
                            graph.remove_vertex(f);
                        }
                        sub.edges()
                            .map(|(src, dst, weight)| EdgeUpdate { src, dst, weight })
                            .collect()
                    }
                    None => Vec::new(),
                };
                Response::AcgPart { records, edges }
            }
            Request::InstallAcg { acg, records, edges } => {
                let group = self.group_mut(acg);
                for record in records {
                    if let Err(e) = group.enqueue(
                        propeller_index::IndexOp::Upsert(record),
                        Timestamp::EPOCH,
                    ) {
                        return Response::Err(e);
                    }
                }
                if let Err(e) = group.commit(Timestamp::EPOCH) {
                    return Response::Err(e);
                }
                self.graphs.entry(acg).or_default().apply_updates(edges);
                Response::Ok
            }
            Request::Tick { now } => {
                for group in self.groups.values_mut() {
                    if group.commit_due(now) {
                        if let Err(e) = group.commit(now) {
                            return Response::Err(e);
                        }
                    }
                }
                Response::Status(self.summaries())
            }
            Request::Heartbeat { .. } => {
                // The runtime turns our summaries into the heartbeat; an
                // inbound Heartbeat is a protocol error.
                Response::Err(Error::Rpc("index node does not accept heartbeats".into()))
            }
            other => Response::Err(Error::Rpc(format!("index node cannot handle {other:?}"))),
        }
    }

    /// Produces this node's heartbeat payload.
    pub fn heartbeat(&self, now: Timestamp) -> Request {
        Request::Heartbeat { node: self.id, acgs: self.summaries(), now }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_index::IndexOp;
    use propeller_query::Query;
    use propeller_types::InodeAttrs;

    fn node() -> IndexNode {
        IndexNode::new(NodeId::new(1), IndexNodeConfig::default())
    }

    fn rec(file: u64, size: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
    }

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn search(n: &mut IndexNode, acgs: Vec<AcgId>, text: &str) -> Vec<FileId> {
        let q = Query::parse(text, t(0)).unwrap();
        match n.handle(Request::Search { acgs, predicate: q.predicate, now: t(100) }) {
            Response::SearchHits(h) => h,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_then_search_one_acg() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..50).map(|i| IndexOp::Upsert(rec(i, i << 20))).collect(),
            now: t(0),
        });
        let hits = search(&mut n, vec![acg], "size>16m");
        assert_eq!(hits.len(), 33, "sizes 17..49 MiB");
    }

    #[test]
    fn search_commits_pending_ops() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(1, 1 << 30))],
            now: t(0),
        });
        // No tick, no timeout elapsed — search must still see the file.
        let hits = search(&mut n, vec![acg], "size>512m");
        assert_eq!(hits, vec![FileId::new(1)]);
    }

    #[test]
    fn search_multiple_acgs_merges() {
        let mut n = node();
        for acg in 1..=3u64 {
            n.handle(Request::IndexBatch {
                acg: AcgId::new(acg),
                ops: vec![IndexOp::Upsert(rec(acg * 10, 1 << 25))],
                now: t(0),
            });
        }
        let hits = search(&mut n, (1..=3).map(AcgId::new).collect(), "size>16m");
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn unknown_acg_in_search_is_skipped() {
        let mut n = node();
        assert!(search(&mut n, vec![AcgId::new(9)], "size>0").is_empty());
    }

    #[test]
    fn tick_commits_timed_out_caches() {
        let mut n = node();
        let acg = AcgId::new(1);
        n.handle(Request::IndexBatch {
            acg,
            ops: vec![IndexOp::Upsert(rec(1, 100))],
            now: t(0),
        });
        assert_eq!(n.groups[&acg].pending_ops(), 1);
        n.handle(Request::Tick { now: t(1) }); // before timeout
        assert_eq!(n.groups[&acg].pending_ops(), 1);
        n.handle(Request::Tick { now: t(6) }); // past the 5s timeout
        assert_eq!(n.groups[&acg].pending_ops(), 0);
    }

    #[test]
    fn split_produces_balanced_halves() {
        let mut n = node();
        let acg = AcgId::new(1);
        // Two clear communities in the causality graph.
        let mut edges = Vec::new();
        for base in [0u64, 100] {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push(EdgeUpdate {
                        src: FileId::new(base + i),
                        dst: FileId::new(base + j),
                        weight: 5,
                    });
                }
            }
        }
        edges.push(EdgeUpdate { src: FileId::new(9), dst: FileId::new(100), weight: 1 });
        n.handle(Request::FlushAcgDelta { acg, edges });
        n.handle(Request::IndexBatch {
            acg,
            ops: (0..10)
                .chain(100..110)
                .map(|i| IndexOp::Upsert(rec(i, i)))
                .collect(),
            now: t(0),
        });
        match n.handle(Request::SplitAcg { acg }) {
            Response::SplitHalves { left, right } => {
                assert_eq!(left.len() + right.len(), 20);
                assert_eq!(left.len(), 10);
                // Communities must not be mixed.
                let c: std::collections::HashSet<u64> =
                    left.iter().map(|f| f.raw() / 100).collect();
                assert_eq!(c.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extract_install_migration_round_trip() {
        let mut src = node();
        let mut dst = IndexNode::new(NodeId::new(2), IndexNodeConfig::default());
        let acg = AcgId::new(1);
        let new_acg = AcgId::new(2);
        src.handle(Request::IndexBatch {
            acg,
            ops: (0..20).map(|i| IndexOp::Upsert(rec(i, i << 20))).collect(),
            now: t(0),
        });
        src.handle(Request::FlushAcgDelta {
            acg,
            edges: vec![EdgeUpdate { src: FileId::new(15), dst: FileId::new(16), weight: 3 }],
        });
        let moved: Vec<FileId> = (10..20).map(FileId::new).collect();
        let (records, edges) =
            match src.handle(Request::ExtractAcgPart { acg, files: moved.clone() }) {
                Response::AcgPart { records, edges } => (records, edges),
                other => panic!("{other:?}"),
            };
        assert_eq!(records.len(), 10);
        assert_eq!(edges.len(), 1, "the 15->16 edge moves with its files");
        dst.handle(Request::InstallAcg { acg: new_acg, records, edges });

        // Source no longer finds the moved files; target does.
        let src_hits = search(&mut src, vec![acg], "size>=10m");
        assert!(src_hits.is_empty(), "{src_hits:?}");
        let dst_hits = search(&mut dst, vec![new_acg], "size>=10m");
        assert_eq!(dst_hits.len(), 10);
    }

    #[test]
    fn create_index_applies_to_existing_and_future_groups() {
        let mut n = node();
        n.handle(Request::IndexBatch {
            acg: AcgId::new(1),
            ops: vec![IndexOp::Upsert(rec(1, 5))],
            now: t(0),
        });
        let spec = IndexSpec::btree("uid_idx", propeller_types::AttrName::Uid);
        assert!(matches!(n.handle(Request::CreateIndex { spec }), Response::Ok));
        assert!(n.groups[&AcgId::new(1)]
            .index_specs()
            .iter()
            .any(|s| s.name == "uid_idx"));
        // A group created later also carries the index.
        n.handle(Request::IndexBatch {
            acg: AcgId::new(2),
            ops: vec![IndexOp::Upsert(rec(2, 5))],
            now: t(0),
        });
        assert!(n.groups[&AcgId::new(2)]
            .index_specs()
            .iter()
            .any(|s| s.name == "uid_idx"));
    }

    #[test]
    fn heartbeat_reports_summaries() {
        let mut n = node();
        n.handle(Request::IndexBatch {
            acg: AcgId::new(3),
            ops: vec![IndexOp::Upsert(rec(1, 5)), IndexOp::Upsert(rec(2, 6))],
            now: t(0),
        });
        match n.heartbeat(t(1)) {
            Request::Heartbeat { node, acgs, .. } => {
                assert_eq!(node, NodeId::new(1));
                assert_eq!(acgs.len(), 1);
                // Ops are still pending (not committed), so files=0 but
                // pending_ops=2 — the heartbeat exposes both.
                assert_eq!(acgs[0].pending_ops, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn split_of_unknown_acg_fails() {
        let mut n = node();
        assert!(matches!(
            n.handle(Request::SplitAcg { acg: AcgId::new(42) }),
            Response::Err(Error::AcgNotFound(_))
        ));
    }
}
