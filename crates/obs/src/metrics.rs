//! The metrics registry: counters, gauges and log-linear histograms whose
//! snapshots merge exactly across nodes (sum the bucket arrays), so a
//! cluster-wide p99 is computed from the merged distribution rather than
//! averaged per-node quantiles.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that is *set* (occupancy, sizes). Merging sums gauges,
/// so cluster reports show totals (e.g. open sessions across all nodes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// Log-linear layout: values below 16 map to exact unit buckets; each
// power-of-two range [2^m, 2^(m+1)) is split into 16 linear sub-buckets,
// so the relative quantization error is bounded by 1/16 everywhere.
const SUB_BUCKETS: u64 = 16;
/// Number of buckets in a histogram (and in every snapshot's array).
pub const HISTOGRAM_BUCKETS: usize = (SUB_BUCKETS + 60 * SUB_BUCKETS) as usize;

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let group = msb - 3;
    let sub = (v >> (msb - 4)) & (SUB_BUCKETS - 1);
    (group * SUB_BUCKETS + sub) as usize
}

/// The inclusive `[low, high]` value range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return (idx, idx);
    }
    let group = idx / SUB_BUCKETS;
    let sub = idx % SUB_BUCKETS;
    let msb = group + 3;
    let width = 1u64 << (msb - 4);
    let low = (1u64 << msb) + sub * width;
    (low, low + (width - 1))
}

/// A concurrent log-linear histogram. Recording is one atomic add into the
/// value's bucket; quantiles come from [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable, mergeable copy of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time histogram copy: what travels in `Response::Metrics` and
/// merges across nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Folds `other` into `self`: the result is the distribution of both
    /// nodes' recordings together, so quantiles of the merge are quantiles
    /// of the combined population — not an average of per-node quantiles.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (0.0 ..= 1.0): the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` value. Values below 16 are exact;
    /// larger ones overshoot by at most 1/16 of the value. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(idx).1;
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named bag of counters, gauges and histograms. Handles are `Arc`s, so
/// hot paths look a metric up once and record through the handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name.to_string()).or_default())
    }

    /// A mergeable snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The wire/merge form of a registry: what `Request::Metrics` returns and
/// what `Cluster::metrics_report` folds together.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` in: counters and gauges sum, histograms merge
    /// bucket-wise (cross-node quantiles stay exact to bucket resolution).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Human-readable exposition: counters, gauges, then histograms with
    /// count / mean / p50 / p95 / p99 / p999 / max (µs for `*_us` series).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "# counters");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "# gauges");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "{k} {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "# histograms");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{k} count={} mean={:.1} p50={} p95={} p99={} p999={} max={}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.max,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact oracle the log-linear quantile is checked against: sort
    /// the recorded values, take the rank-`ceil(q·count)` element.
    fn oracle(values: &mut [u64], q: f64) -> u64 {
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        values[rank - 1]
    }

    #[test]
    fn bucket_index_and_bounds_agree_everywhere() {
        for idx in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx, "low bound of bucket {idx}");
            assert_eq!(bucket_index(hi), idx, "high bound of bucket {idx}");
            if idx + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_bounds(idx + 1).0, hi.wrapping_add(1), "buckets contiguous");
            } else {
                assert_eq!(hi, u64::MAX, "last bucket reaches u64::MAX");
            }
        }
    }

    #[test]
    fn quantiles_are_exact_at_every_bucket_boundary() {
        // Record the upper bound of every bucket once; every quantile the
        // histogram reports must then equal the exact rank-based oracle,
        // at every probed q — boundary values suffer zero quantization.
        let h = Histogram::default();
        let mut values = Vec::new();
        for idx in 0..HISTOGRAM_BUCKETS {
            let (_, hi) = bucket_bounds(idx);
            h.record(hi);
            values.push(hi);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, HISTOGRAM_BUCKETS as u64);
        for q in [0.0, 0.001, 0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(snap.quantile(q), oracle(&mut values.clone(), q), "q={q}");
        }
        assert_eq!(snap.max, u64::MAX);
    }

    #[test]
    fn small_values_are_always_exact() {
        let h = Histogram::default();
        let mut values = Vec::new();
        for v in 0..16u64 {
            for _ in 0..=v {
                h.record(v);
                values.push(v);
            }
        }
        let snap = h.snapshot();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), oracle(&mut values.clone(), q), "q={q}");
        }
    }

    #[test]
    fn quantile_error_is_bounded_by_one_sixteenth() {
        let h = Histogram::default();
        let mut v = 1u64;
        let mut values = Vec::new();
        while v < u64::MAX / 3 {
            h.record(v);
            values.push(v);
            v = v.wrapping_mul(31).wrapping_add(17);
        }
        let snap = h.snapshot();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = oracle(&mut values.clone(), q);
            let got = snap.quantile(q);
            assert!(got >= exact, "quantile never undershoots: {got} < {exact}");
            assert!(got - exact <= exact / 16 + 1, "q={q}: {got} overshoots {exact} beyond 1/16");
        }
    }

    #[test]
    fn merged_snapshots_equal_the_combined_population() {
        // Two nodes record disjoint halves; the merged snapshot's
        // quantiles must equal the oracle over the union — the property
        // that makes cross-node p99s meaningful.
        let a = Histogram::default();
        let b = Histogram::default();
        let mut values = Vec::new();
        for idx in (0..HISTOGRAM_BUCKETS).step_by(3) {
            let (_, hi) = bucket_bounds(idx);
            if idx % 2 == 0 {
                a.record(hi);
            } else {
                b.record(hi);
            }
            values.push(hi);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, values.len() as u64);
        for q in [0.05, 0.5, 0.95, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), oracle(&mut values.clone(), q), "q={q}");
        }
    }

    #[test]
    fn registry_snapshot_roundtrip_and_merge() {
        let reg = MetricsRegistry::new();
        reg.counter("searches").add(5);
        reg.gauge("sessions").set(3);
        reg.histogram("lat_us").record(100);
        let mut snap = reg.snapshot();

        let other = MetricsRegistry::new();
        other.counter("searches").add(2);
        other.gauge("sessions").set(4);
        other.histogram("lat_us").record(200);
        snap.merge(&other.snapshot());

        assert_eq!(snap.counters["searches"], 7);
        assert_eq!(snap.gauges["sessions"], 7);
        assert_eq!(snap.histograms["lat_us"].count, 2);
        let text = snap.render();
        assert!(text.contains("searches 7"), "{text}");
        assert!(text.contains("lat_us count=2"), "{text}");
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
        let mut merged = HistogramSnapshot::default();
        merged.merge(&Histogram::default().snapshot());
        assert_eq!(merged.count, 0);
    }
}
