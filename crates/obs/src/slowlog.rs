//! The slow-query log: a bounded per-node ring of postmortem records for
//! requests that exceeded the configured service-time threshold.

use std::collections::VecDeque;

use parking_lot::Mutex;
use propeller_types::{Duration, Timestamp};

use crate::trace::{Lane, Span};

/// One captured slow query: enough to reconstruct *why* it was slow
/// without re-running it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Trace id if the request was sampled (0 otherwise).
    pub trace: u64,
    /// The lane that captured it.
    pub lane: Lane,
    /// When it finished (injected clock).
    pub at: Timestamp,
    /// Measured service time.
    pub elapsed: Duration,
    /// The request, rendered (`Debug` of the `SearchRequest`).
    pub query: String,
    /// The plan: the access path chosen per consulted ACG.
    pub plan: Vec<(u64, String)>,
    /// The full `SearchStats`, rendered.
    pub stats: String,
    /// The spans this lane recorded for the request (its share of the
    /// trace tree), if sampled.
    pub spans: Vec<Span>,
}

/// A bounded ring of [`SlowQuery`] records; the newest `capacity` are
/// retained, dumpable via `Request::DumpSlowQueries`.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    ring: Mutex<VecDeque<SlowQuery>>,
}

impl SlowQueryLog {
    /// A ring retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog { capacity: capacity.max(1), ring: Mutex::new(VecDeque::new()) }
    }

    /// Captures one slow query, evicting the oldest if full.
    pub fn note(&self, q: SlowQuery) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(q);
    }

    /// Every retained record, oldest first.
    pub fn dump(&self) -> Vec<SlowQuery> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u64) -> SlowQuery {
        SlowQuery {
            trace: i,
            lane: Lane::Node(1),
            at: Timestamp::from_micros(i),
            elapsed: Duration::from_millis(i),
            query: format!("q{i}"),
            plan: vec![(i, "OrderedScan".into())],
            stats: String::new(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let log = SlowQueryLog::new(3);
        for i in 0..7 {
            log.note(q(i));
        }
        let dump = log.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump.iter().map(|s| s.trace).collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(dump[0].plan[0].1, "OrderedScan");
    }
}
