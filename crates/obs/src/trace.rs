//! Propagated query traces: contexts, typed spans, the bounded per-lane
//! span buffer, and client-side tree assembly.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use propeller_types::{Duration, Timestamp};

/// The trace identity carried on wire messages. `trace == 0` means the
/// request is not sampled and every recording site is a no-op branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Trace id, unique per sampled request (0 = not sampled).
    pub trace: u64,
    /// The sender's span id — recorded spans on the receiving lane become
    /// its children (0 = the span being recorded is the root).
    pub span: u64,
}

impl TraceContext {
    /// The disabled context: nothing records.
    pub const NONE: TraceContext = TraceContext { trace: 0, span: 0 };

    /// A root context for a freshly sampled request.
    pub fn root(trace: u64) -> Self {
        TraceContext { trace, span: 0 }
    }

    /// Whether spans should be recorded under this context.
    pub fn enabled(&self) -> bool {
        self.trace != 0
    }
}

/// Which lane recorded a span. Lanes are the trace's unit of attribution:
/// the assembled tree names the node (or client) each span ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// A client engine, by client id.
    Client(u64),
    /// The Master.
    Master,
    /// An Index Node, by raw node id. Spans recorded from the node's
    /// worker-pool jobs carry the same lane — the pool is the node.
    Node(u64),
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lane::Client(c) => write!(f, "client#{c}"),
            Lane::Master => write!(f, "master"),
            Lane::Node(n) => write!(f, "node#{n}"),
        }
    }
}

/// The typed stages a traced request can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole client-side request (the tree root).
    Request,
    /// Master file→ACG resolution.
    Resolve,
    /// A stale-route drop + re-resolve + retry round.
    RouteRetry,
    /// A hedged open racing a straggling replica.
    Hedge,
    /// Opening a node search session (or a one-shot dispatch attempt).
    Open,
    /// Pulling one page from an open session.
    Pull,
    /// The client-side cluster-wide k-way merge.
    Merge,
    /// Node-side search service (actor receipt to reply).
    Search,
    /// One ACG's share of a node search, on a worker-pool lane.
    AcgExec,
    /// A worker-pool job (queue wait + execution).
    PoolJob,
    /// A WAL fsync.
    WalFsync,
    /// A snapshot write.
    Snapshot,
    /// Waiting for the commit-before-search epoch pin.
    EpochPin,
    /// An `IndexBatch` applied on the primary.
    Ingest,
    /// A `ReplicateBatch` applied on a follower.
    Replicate,
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpanKind::Request => "request",
            SpanKind::Resolve => "resolve",
            SpanKind::RouteRetry => "route-retry",
            SpanKind::Hedge => "hedge",
            SpanKind::Open => "open",
            SpanKind::Pull => "pull",
            SpanKind::Merge => "merge",
            SpanKind::Search => "search",
            SpanKind::AcgExec => "acg-exec",
            SpanKind::PoolJob => "pool-job",
            SpanKind::WalFsync => "wal-fsync",
            SpanKind::Snapshot => "snapshot",
            SpanKind::EpochPin => "epoch-pin",
            SpanKind::Ingest => "ingest",
            SpanKind::Replicate => "replicate",
        };
        f.write_str(s)
    }
}

/// One recorded span: a typed interval on one lane, linked to its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: u64,
    /// Unique span id (lane-tagged, never 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// What stage this span measures.
    pub kind: SpanKind,
    /// The lane that recorded it.
    pub lane: Lane,
    /// Start time (injected clock).
    pub start: Timestamp,
    /// End time (injected clock).
    pub end: Timestamp,
    /// Free-form annotation ("node 3", "winner node 2", …). Empty = none.
    pub detail: String,
}

impl Span {
    /// The span's wall time.
    pub fn wall(&self) -> Duration {
        self.end.since(self.start)
    }
}

/// A span opened but not yet finished. Carries the child context to
/// propagate downstream; inert (records nothing) when the parent context
/// was disabled.
#[derive(Debug)]
pub struct OpenSpan {
    ctx: TraceContext,
    parent: u64,
    kind: SpanKind,
    start: Timestamp,
}

impl OpenSpan {
    /// The context downstream work should carry so its spans become
    /// children of this one. [`TraceContext::NONE`] when inert.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Whether finishing this span will record anything.
    pub fn enabled(&self) -> bool {
        self.ctx.enabled()
    }
}

/// A bounded per-lane span buffer. Writers claim a slot with one atomic
/// `fetch_add` (lock-free claim; the buffer wraps, overwriting the oldest
/// spans) and publish through that slot's own tiny mutex — recorders on
/// different slots never contend.
#[derive(Debug)]
pub struct SpanBuffer {
    lane: Lane,
    seed: u64,
    seq: AtomicU64,
    cursor: AtomicUsize,
    slots: Vec<Mutex<Option<Span>>>,
}

impl SpanBuffer {
    /// A buffer holding at most `capacity` spans for `lane`.
    pub fn new(lane: Lane, capacity: usize) -> Self {
        let seed = match lane {
            Lane::Master => 1 << 56,
            Lane::Node(n) => (2 << 56) | ((n & 0xFFFF) << 40),
            Lane::Client(c) => (3 << 56) | ((c & 0xFFFF) << 40),
        };
        SpanBuffer {
            lane,
            seed,
            seq: AtomicU64::new(1),
            cursor: AtomicUsize::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The lane this buffer records for.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Opens a span under `parent` starting `now`. Inert if the parent
    /// context is disabled.
    pub fn begin(&self, parent: TraceContext, kind: SpanKind, now: Timestamp) -> OpenSpan {
        if !parent.enabled() {
            return OpenSpan { ctx: TraceContext::NONE, parent: 0, kind, start: now };
        }
        let id = self.seed | (self.seq.fetch_add(1, Ordering::Relaxed) & 0xFF_FFFF_FFFF);
        OpenSpan {
            ctx: TraceContext { trace: parent.trace, span: id },
            parent: parent.span,
            kind,
            start: now,
        }
    }

    /// Finishes `open` at `now` with no annotation.
    pub fn finish(&self, open: OpenSpan, now: Timestamp) {
        self.finish_with(open, now, String::new());
    }

    /// Finishes `open` at `now`, annotated with `detail`.
    pub fn finish_with(&self, open: OpenSpan, now: Timestamp, detail: String) {
        if !open.ctx.enabled() {
            return;
        }
        self.record(Span {
            trace: open.ctx.trace,
            id: open.ctx.span,
            parent: open.parent,
            kind: open.kind,
            lane: self.lane,
            start: open.start,
            end: now,
            detail,
        });
    }

    /// Pushes a fully-formed span (claim a slot, publish).
    pub fn record(&self, span: Span) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock() = Some(span);
    }

    /// Removes and returns every retained span of `trace`.
    pub fn harvest(&self, trace: u64) -> Vec<Span> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let mut guard = slot.lock();
            if guard.as_ref().is_some_and(|s| s.trace == trace) {
                out.extend(guard.take());
            }
        }
        out
    }

    /// Copies every retained span of `trace` **without** removing it —
    /// the slow-query log snapshots a request's spans while leaving them
    /// in place for a later `harvest` (trace assembly).
    pub fn collect(&self, trace: u64) -> Vec<Span> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let guard = slot.lock();
            if let Some(s) = guard.as_ref() {
                if s.trace == trace {
                    out.push(s.clone());
                }
            }
        }
        out
    }

    /// Number of spans currently retained (all traces).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.lock().is_some()).count()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One node of an assembled trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// The span at this node.
    pub span: Span,
    /// Child spans, ordered by start time.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Depth-first iteration over this subtree's spans.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Span>) {
        out.push(&self.span);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// A fully assembled trace: one root, every span parented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The root (the client-side request span).
    pub root: TraceNode,
}

impl TraceTree {
    /// Assembles harvested spans into one tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation: no spans, zero or
    /// multiple roots, or an orphaned parent reference (which can happen
    /// legitimately if a lane's bounded buffer wrapped past the parent —
    /// the caller decides whether that is fatal).
    pub fn assemble(mut spans: Vec<Span>) -> Result<TraceTree, String> {
        if spans.is_empty() {
            return Err("no spans harvested".into());
        }
        spans.sort_by_key(|s| (s.start, s.id));
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        if ids.len() != spans.len() {
            return Err("duplicate span ids".into());
        }
        let mut roots = Vec::new();
        let mut children: std::collections::HashMap<u64, Vec<Span>> =
            std::collections::HashMap::new();
        for span in spans {
            if span.parent == 0 {
                roots.push(span);
            } else if ids.contains(&span.parent) {
                children.entry(span.parent).or_default().push(span);
            } else {
                return Err(format!(
                    "orphaned span {} ({} on {}): parent {} not harvested",
                    span.id, span.kind, span.lane, span.parent
                ));
            }
        }
        let root = match (roots.pop(), roots.len()) {
            (Some(r), 0) => r,
            (None, _) => return Err("no root span".into()),
            (Some(_), n) => return Err(format!("{} roots", n + 1)),
        };
        fn build(
            span: Span,
            children: &mut std::collections::HashMap<u64, Vec<Span>>,
        ) -> TraceNode {
            let kids = children.remove(&span.id).unwrap_or_default();
            TraceNode { span, children: kids.into_iter().map(|c| build(c, children)).collect() }
        }
        Ok(TraceTree { root: build(root, &mut children) })
    }

    /// Every span, depth-first.
    pub fn spans(&self) -> Vec<&Span> {
        let mut out = Vec::new();
        self.root.walk(&mut out);
        out
    }

    /// Checks structural well-formedness beyond what assembly enforces:
    /// every span's interval is non-negative and no child *starts* before
    /// its parent did. A child may **end** after its parent closed —
    /// that's follows-from causality, and it really happens: a hedge
    /// loser's server-side span completes after the client's open span
    /// already declared the winner, and a detached session close outlives
    /// the pull that triggered it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated containment.
    pub fn check_well_formed(&self) -> Result<(), String> {
        fn check(node: &TraceNode) -> Result<(), String> {
            let s = &node.span;
            if s.end < s.start {
                return Err(format!("span {} ({}) ends before it starts", s.id, s.kind));
            }
            for c in &node.children {
                if c.span.start < s.start {
                    return Err(format!(
                        "child {} ({} on {}) [{}..{}] escapes parent {} ({}) [{}..{}]",
                        c.span.id,
                        c.span.kind,
                        c.span.lane,
                        c.span.start.as_micros(),
                        c.span.end.as_micros(),
                        s.id,
                        s.kind,
                        s.start.as_micros(),
                        s.end.as_micros(),
                    ));
                }
                check(c)?;
            }
            Ok(())
        }
        check(&self.root)
    }

    /// Renders the tree as indented text with per-span wall times.
    pub fn render(&self) -> String {
        fn fmt_node(node: &TraceNode, depth: usize, out: &mut String) {
            let s = &node.span;
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}{} [{}] {} µs{}{}\n",
                s.kind,
                s.lane,
                s.wall().as_micros(),
                if s.detail.is_empty() { "" } else { " — " },
                s.detail,
            ));
            for c in &node.children {
                fmt_node(c, depth + 1, out);
            }
        }
        let mut out = format!("trace {:#x}\n", self.root.span.trace);
        fmt_node(&self.root, 0, &mut out);
        out
    }

    /// Finds every span of `kind`, depth-first.
    pub fn find(&self, kind: SpanKind) -> Vec<&Span> {
        self.spans().into_iter().filter(|s| s.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn disabled_context_records_nothing() {
        let buf = SpanBuffer::new(Lane::Client(1), 8);
        let open = buf.begin(TraceContext::NONE, SpanKind::Request, ts(0));
        assert!(!open.enabled());
        assert_eq!(open.ctx(), TraceContext::NONE);
        buf.finish(open, ts(10));
        assert!(buf.is_empty());
    }

    #[test]
    fn spans_nest_and_assemble() {
        let client = SpanBuffer::new(Lane::Client(1), 8);
        let node = SpanBuffer::new(Lane::Node(3), 8);
        let root = client.begin(TraceContext::root(42), SpanKind::Request, ts(0));
        let open = client.begin(root.ctx(), SpanKind::Open, ts(1));
        let remote = node.begin(open.ctx(), SpanKind::Search, ts(2));
        node.finish_with(remote, ts(5), "acgs 4".into());
        client.finish(open, ts(6));
        client.finish(root, ts(10));

        let mut spans = client.harvest(42);
        spans.extend(node.harvest(42));
        let tree = TraceTree::assemble(spans).unwrap();
        tree.check_well_formed().unwrap();
        assert_eq!(tree.root.span.kind, SpanKind::Request);
        assert_eq!(tree.root.children.len(), 1);
        let open = &tree.root.children[0];
        assert_eq!(open.span.kind, SpanKind::Open);
        assert_eq!(open.children[0].span.lane, Lane::Node(3));
        assert_eq!(open.children[0].span.detail, "acgs 4");
        assert_eq!(open.children[0].span.wall(), Duration::from_micros(3));
        assert!(tree.render().contains("search [node#3] 3 µs — acgs 4"));
    }

    #[test]
    fn assembly_rejects_malformed_forests() {
        assert!(TraceTree::assemble(Vec::new()).is_err());
        let mk = |id: u64, parent: u64| Span {
            trace: 7,
            id,
            parent,
            kind: SpanKind::Open,
            lane: Lane::Master,
            start: ts(0),
            end: ts(1),
            detail: String::new(),
        };
        // Two roots.
        assert!(TraceTree::assemble(vec![mk(1, 0), mk(2, 0)]).is_err());
        // Orphaned parent.
        assert!(TraceTree::assemble(vec![mk(1, 0), mk(2, 99)]).is_err());
        // No root.
        assert!(TraceTree::assemble(vec![mk(2, 3), mk(3, 2)]).is_err());
    }

    #[test]
    fn containment_check_catches_escaping_children() {
        let mk = |id: u64, parent: u64, a: u64, b: u64| Span {
            trace: 7,
            id,
            parent,
            kind: SpanKind::Open,
            lane: Lane::Master,
            start: ts(a),
            end: ts(b),
            detail: String::new(),
        };
        let tree = TraceTree::assemble(vec![mk(1, 0, 2, 10), mk(2, 1, 1, 8)]).unwrap();
        assert!(tree.check_well_formed().is_err(), "child started before its parent");
        // Outlasting the parent is fine: hedge losers and detached
        // closes legitimately finish after the parent declared a winner.
        let ok = TraceTree::assemble(vec![mk(1, 0, 0, 10), mk(2, 1, 5, 12)]).unwrap();
        ok.check_well_formed().unwrap();
    }

    #[test]
    fn buffer_wraps_at_capacity() {
        let buf = SpanBuffer::new(Lane::Node(1), 4);
        for i in 0..10u64 {
            let open = buf.begin(TraceContext::root(9), SpanKind::Pull, ts(i));
            buf.finish(open, ts(i + 1));
        }
        let spans = buf.harvest(9);
        assert_eq!(spans.len(), 4, "bounded: only the newest capacity spans retained");
        assert!(spans.iter().all(|s| s.start >= ts(6)));
    }

    #[test]
    fn span_ids_are_lane_unique() {
        let a = SpanBuffer::new(Lane::Node(1), 8);
        let b = SpanBuffer::new(Lane::Node(2), 8);
        let c = SpanBuffer::new(Lane::Client(1), 8);
        let sa = a.begin(TraceContext::root(1), SpanKind::Open, ts(0));
        let sb = b.begin(TraceContext::root(1), SpanKind::Open, ts(0));
        let sc = c.begin(TraceContext::root(1), SpanKind::Open, ts(0));
        let ids = [sa.ctx().span, sb.ctx().span, sc.ctx().span];
        assert_eq!(ids.iter().collect::<std::collections::HashSet<_>>().len(), 3);
    }
}
