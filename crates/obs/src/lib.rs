//! Observability for the Propeller cluster: propagated query traces, a
//! per-node metrics registry, and a slow-query log.
//!
//! Three pieces, one bundle:
//!
//! * **Traces** ([`trace`]) — a [`TraceContext`] rides the wire messages of a
//!   sampled request; every lane it crosses (client, Master, Index Node
//!   actor, worker-pool job, per-ACG execution) records typed [`Span`]s into
//!   its bounded [`SpanBuffer`]. The client harvests the buffers after the
//!   fact (`Request::DumpTrace`) and assembles one [`TraceTree`] with
//!   per-span wall times. All timing goes through the injected `Clock`, so
//!   simulated tests get deterministic trees.
//! * **Metrics** ([`metrics`]) — named counters, gauges and log-linear
//!   [`Histogram`]s (p50/p95/p99/p999, mergeable across nodes by summing
//!   bucket arrays) in a [`MetricsRegistry`] per node, snapshotted over the
//!   wire (`Request::Metrics`) and merged cluster-wide.
//! * **Slow queries** ([`slowlog`]) — requests whose measured service time
//!   exceeds a configured threshold capture their plan, stats and spans into
//!   a bounded per-node ring ([`SlowQueryLog`]) for postmortems.
//!
//! The crate depends only on `propeller-types` (timestamps, ids) so every
//! layer of the system can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use trace::{Lane, OpenSpan, Span, SpanBuffer, SpanKind, TraceContext, TraceNode, TraceTree};

/// Well-known metric names, shared by recorders and reports so the merged
/// cluster view lines up by key. Latency histograms record **microseconds**.
pub mod names {
    /// Node-side search service time (one-shot and session opens), µs.
    pub const SEARCH_LATENCY: &str = "search_latency_us";
    /// Node-side `PullHits` page service time, µs.
    pub const PULL_LATENCY: &str = "pull_latency_us";
    /// Actor-side `IndexBatch` ingest latency (enqueue + fsync), µs.
    pub const INGEST_LATENCY: &str = "ingest_batch_us";
    /// WAL fsync duration, µs.
    pub const WAL_FSYNC: &str = "wal_fsync_us";
    /// Snapshot write duration (serialize + rename), µs.
    pub const SNAPSHOT_DURATION: &str = "snapshot_us";
    /// Epoch-pin wait: request receipt to pinned epochs, µs.
    pub const EPOCH_PIN_WAIT: &str = "epoch_pin_wait_us";
    /// Searches served (one-shot + session opens).
    pub const SEARCHES_SERVED: &str = "searches_served";
    /// Index operations received.
    pub const OPS_RECEIVED: &str = "ops_received";
    /// Commits published (epoch swaps).
    pub const COMMITS_PUBLISHED: &str = "commits_published";
    /// Snapshots offloaded to the background writer.
    pub const SNAPSHOTS_OFFLOADED: &str = "snapshots_offloaded";
    /// Current session-table occupancy.
    pub const OPEN_SESSIONS: &str = "open_sessions";
    /// ACG groups hosted.
    pub const ACGS_HOSTED: &str = "acgs_hosted";
    /// Route-cache lookups that hit.
    pub const ROUTE_CACHE_HITS: &str = "route_cache_hits";
    /// Route-cache lookups that missed.
    pub const ROUTE_CACHE_MISSES: &str = "route_cache_misses";
    /// Route-cache LRU evictions.
    pub const ROUTE_CACHE_EVICTIONS: &str = "route_cache_evictions";
    /// Routes dropped by Master invalidation hints (incl. full clears).
    pub const ROUTE_CACHE_INVALIDATIONS: &str = "route_cache_invalidations";
    /// Hedged opens fired.
    pub const HEDGES_FIRED: &str = "hedges_fired";
    /// Hedged opens won by the hedge replica.
    pub const HEDGES_WON: &str = "hedges_won";
    /// Mid-stream replica failovers.
    pub const REPLICA_FAILOVERS: &str = "replica_failovers";
    /// Slow queries captured in the ring.
    pub const SLOW_QUERIES: &str = "slow_queries";
    /// Master-side file-route resolves served.
    pub const RESOLVES_SERVED: &str = "resolves_served";
    /// Client-side end-to-end search latency (request to last hit), µs.
    pub const CLIENT_SEARCH_LATENCY: &str = "client_search_latency_us";
}

/// The per-lane observability bundle: one metrics registry, one span
/// buffer, one slow-query ring. Index Nodes, the Master and each client
/// engine own one; worker-pool jobs share the node's via `Arc`.
#[derive(Debug)]
pub struct NodeObs {
    /// Named counters / gauges / histograms for this lane.
    pub metrics: MetricsRegistry,
    /// Bounded span buffer traces are recorded into.
    pub spans: SpanBuffer,
    /// Bounded slow-query ring.
    pub slow: SlowQueryLog,
}

/// Default span-buffer capacity (spans retained per lane).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;
/// Default slow-query ring capacity.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

impl NodeObs {
    /// A bundle for `lane` with the default capacities.
    pub fn new(lane: Lane) -> Self {
        Self::with_capacities(lane, DEFAULT_SPAN_CAPACITY, DEFAULT_SLOW_CAPACITY)
    }

    /// A bundle with explicit span-buffer and slow-ring capacities.
    pub fn with_capacities(lane: Lane, span_capacity: usize, slow_capacity: usize) -> Self {
        NodeObs {
            metrics: MetricsRegistry::new(),
            spans: SpanBuffer::new(lane, span_capacity),
            slow: SlowQueryLog::new(slow_capacity),
        }
    }
}
