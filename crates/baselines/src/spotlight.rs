//! The Spotlight-like crawling desktop search engine.
//!
//! Spotlight's defining behaviours under the paper's measurements:
//!
//! 1. **Asynchronous crawling** — a file-system notification enqueues the
//!    file; a crawler with bounded throughput indexes it later, so results
//!    lag reality by the queue's drain time, and recall drops as background
//!    I/O intensity (files-per-second) rises (Fig. 1, Fig. 11a).
//! 2. **Type plugins** — only a subset of files belongs to supported types,
//!    capping recall below 100% regardless of timing (Fig. 1 caps at ~53%,
//!    Table V at 60.6% / 13.86% depending on the dataset mix).
//! 3. **Re-index windows** — when the backlog exceeds a threshold the
//!    engine rebuilds its store and queries return *nothing* until the
//!    rebuild completes (the recall-to-zero cliffs of Fig. 1).

use std::collections::{HashMap, VecDeque};

use propeller_index::FileRecord;
use propeller_query::{matches_record, Predicate};
use propeller_types::{Duration, FileId, Timestamp};

/// Tuning for [`SpotlightEngine`].
#[derive(Debug, Clone)]
pub struct SpotlightConfig {
    /// Files the crawler can index per second.
    pub crawl_rate: f64,
    /// Fraction of files whose type has an import plugin (recall ceiling).
    pub supported_fraction: f64,
    /// Backlog size that triggers a full re-index.
    pub reindex_backlog: usize,
    /// How long a full re-index takes (queries return nothing meanwhile).
    pub reindex_duration: Duration,
}

impl Default for SpotlightConfig {
    fn default() -> Self {
        SpotlightConfig {
            crawl_rate: 40.0,
            supported_fraction: 0.6, // Table V dataset 1: 60.6% recall cap
            reindex_backlog: 2_000,
            reindex_duration: Duration::from_secs(45),
        }
    }
}

/// The crawling engine.
///
/// Drive it with [`SpotlightEngine::notify`] (file created/changed) and
/// query with [`SpotlightEngine::query`]; time flows through the explicit
/// `now` arguments so both wall-clock and virtual-clock experiments work.
///
/// # Examples
///
/// ```
/// use propeller_baselines::{SpotlightConfig, SpotlightEngine};
/// use propeller_index::FileRecord;
/// use propeller_query::Query;
/// use propeller_types::{Duration, FileId, InodeAttrs, Timestamp};
///
/// let mut engine = SpotlightEngine::new(SpotlightConfig {
///     supported_fraction: 1.0,
///     ..Default::default()
/// });
/// let t0 = Timestamp::from_secs(0);
/// engine.notify(
///     FileRecord::new(FileId::new(1), InodeAttrs::builder().size(1 << 30).build()),
///     t0,
/// );
/// let q = Query::parse("size>1m", t0).unwrap();
/// // Immediately after the change the crawler has not caught up…
/// assert!(engine.query(&q.predicate, t0).is_empty());
/// // …but after the crawl delay the file appears.
/// let later = t0 + Duration::from_secs(10);
/// assert_eq!(engine.query(&q.predicate, later), vec![FileId::new(1)]);
/// ```
#[derive(Debug)]
pub struct SpotlightEngine {
    config: SpotlightConfig,
    /// Committed (crawled) index.
    store: HashMap<FileId, FileRecord>,
    /// Notification queue: files awaiting the crawler.
    queue: VecDeque<FileRecord>,
    /// Crawl-capacity accounting: when the crawler will be free.
    crawler_free_at: Timestamp,
    /// An in-progress full re-index, if any: (started, ends).
    reindexing_until: Option<Timestamp>,
    /// Total files crawled.
    crawled: u64,
}

impl SpotlightEngine {
    /// Creates an engine with the given behaviour knobs.
    pub fn new(config: SpotlightConfig) -> Self {
        SpotlightEngine {
            config,
            store: HashMap::new(),
            queue: VecDeque::new(),
            crawler_free_at: Timestamp::EPOCH,
            reindexing_until: None,
            crawled: 0,
        }
    }

    /// Whether this file's type has an import plugin (deterministic hash
    /// of the id against the supported fraction).
    fn supported(&self, file: FileId) -> bool {
        // SplitMix-style scramble for a uniform [0,1) per file.
        let mut z = file.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
        u < self.config.supported_fraction
    }

    /// A file-system notification: the file changed at `now`. Unsupported
    /// types are dropped (no plugin); supported ones join the crawl queue.
    pub fn notify(&mut self, record: FileRecord, now: Timestamp) {
        if !self.supported(record.file) {
            return;
        }
        self.queue.push_back(record);
        if self.queue.len() > self.config.reindex_backlog && self.reindexing_until.is_none() {
            // Backlog blew up: Spotlight rebuilds its store from scratch.
            self.store.clear();
            self.reindexing_until = Some(now + self.config.reindex_duration);
        }
    }

    /// Advances the crawler to `now`, draining whatever its rate allows.
    pub fn pump(&mut self, now: Timestamp) {
        if let Some(until) = self.reindexing_until {
            if now < until {
                return; // rebuild in progress: nothing gets indexed
            }
            self.reindexing_until = None;
            self.crawler_free_at = until;
        }
        let per_file = Duration::from_secs_f64(1.0 / self.config.crawl_rate.max(1e-9));
        while !self.queue.is_empty() {
            let finish = self.crawler_free_at.max(Timestamp::EPOCH) + per_file;
            if finish > now {
                break;
            }
            let record = self.queue.pop_front().expect("queue non-empty");
            self.crawler_free_at = finish;
            self.crawled += 1;
            self.store.insert(record.file, record);
        }
        if self.queue.is_empty() && self.crawler_free_at < now {
            self.crawler_free_at = now;
        }
    }

    /// Queries the crawled index at `now`. During a re-index window the
    /// result is empty (the Fig. 1 recall cliffs).
    pub fn query(&mut self, pred: &Predicate, now: Timestamp) -> Vec<FileId> {
        self.pump(now);
        if self.reindexing_until.is_some_and(|until| now < until) {
            return Vec::new();
        }
        let mut out: Vec<FileId> =
            self.store.values().filter(|r| matches_record(r, pred)).map(|r| r.file).collect();
        out.sort_unstable();
        out
    }

    /// Answers the same [`SearchRequest`] API as Propeller against the
    /// *crawled* view at `now`. The response claims `complete` even while
    /// the crawl queue is behind or a re-index is running — which is
    /// precisely the recall lie the paper measures this baseline on.
    pub fn search_with(
        &mut self,
        request: &propeller_query::SearchRequest,
        now: Timestamp,
    ) -> propeller_query::SearchResponse {
        self.pump(now);
        if self.reindexing_until.is_some_and(|until| now < until) {
            return propeller_query::SearchResponse::empty();
        }
        propeller_query::run_local_search(self.store.values().cloned(), request)
    }

    /// Files waiting in the crawl queue.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Files indexed so far.
    pub fn indexed(&self) -> usize {
        self.store.len()
    }

    /// Whether a re-index is in progress at `now`.
    pub fn is_reindexing(&self, now: Timestamp) -> bool {
        self.reindexing_until.is_some_and(|until| now < until)
    }
}

/// Recall: the fraction of `truth` present in `results` (paper §II).
/// Returns 1.0 when `truth` is empty.
///
/// # Examples
///
/// ```
/// use propeller_baselines::recall;
/// use propeller_types::FileId;
///
/// let truth: Vec<FileId> = (0..4).map(FileId::new).collect();
/// let results = vec![FileId::new(0), FileId::new(1)];
/// assert_eq!(recall(&results, &truth), 0.5);
/// ```
pub fn recall(results: &[FileId], truth: &[FileId]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<FileId> = results.iter().copied().collect();
    truth.iter().filter(|f| set.contains(f)).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_query::Query;
    use propeller_types::InodeAttrs;

    fn rec(file: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(1 << 30).build())
    }

    fn pred() -> Predicate {
        Query::parse("size>1m", Timestamp::EPOCH).unwrap().predicate
    }

    fn full_config() -> SpotlightConfig {
        SpotlightConfig { supported_fraction: 1.0, ..Default::default() }
    }

    #[test]
    fn crawl_delay_makes_results_stale() {
        let mut e = SpotlightEngine::new(SpotlightConfig {
            crawl_rate: 5.0, // 1 second drains only 5 of the 10 files
            ..full_config()
        });
        let t0 = Timestamp::from_secs(0);
        for i in 0..10 {
            e.notify(rec(i), t0);
        }
        assert!(e.query(&pred(), t0).is_empty(), "no time to crawl yet");
        let later = t0 + Duration::from_secs(1);
        let partial = e.query(&pred(), later).len();
        assert!(partial > 0 && partial < 10, "partial crawl: {partial}");
        let done = t0 + Duration::from_secs(10);
        assert_eq!(e.query(&pred(), done).len(), 10);
    }

    #[test]
    fn recall_ceiling_from_unsupported_types() {
        let mut e =
            SpotlightEngine::new(SpotlightConfig { supported_fraction: 0.6, ..Default::default() });
        let t0 = Timestamp::from_secs(0);
        let truth: Vec<FileId> = (0..1000).map(FileId::new).collect();
        for i in 0..1000 {
            e.notify(rec(i), t0);
        }
        let settle = t0 + Duration::from_secs(3600);
        let results = e.query(&pred(), settle);
        let r = recall(&results, &truth);
        assert!((0.5..0.7).contains(&r), "recall ceiling ≈ 0.6, got {r}");
    }

    #[test]
    fn backlog_triggers_reindex_and_zero_recall() {
        let mut e = SpotlightEngine::new(SpotlightConfig {
            supported_fraction: 1.0,
            reindex_backlog: 100,
            reindex_duration: Duration::from_secs(60),
            crawl_rate: 10.0,
        });
        let t0 = Timestamp::from_secs(0);
        // Index some files and let the crawler settle.
        for i in 0..50 {
            e.notify(rec(i), t0);
        }
        let settled = t0 + Duration::from_secs(30);
        assert_eq!(e.query(&pred(), settled).len(), 50);
        // Blast the queue past the re-index threshold.
        for i in 1000..1200 {
            e.notify(rec(i), settled);
        }
        assert!(e.is_reindexing(settled + Duration::from_secs(1)));
        assert!(
            e.query(&pred(), settled + Duration::from_secs(10)).is_empty(),
            "recall collapses to zero during the rebuild"
        );
        // After the rebuild the crawler catches back up eventually.
        let after = settled + Duration::from_secs(60 + 60);
        assert!(!e.query(&pred(), after).is_empty());
    }

    #[test]
    fn faster_background_io_lowers_observed_recall() {
        // The Fig. 1 experiment shape: higher FPS ⇒ lower steady recall.
        let run = |fps: u64| -> f64 {
            let mut e = SpotlightEngine::new(SpotlightConfig {
                supported_fraction: 1.0,
                crawl_rate: 5.0,
                reindex_backlog: usize::MAX,
                ..Default::default()
            });
            let mut truth = Vec::new();
            let horizon = 60;
            for sec in 0..horizon {
                let t = Timestamp::from_secs(sec);
                for k in 0..fps {
                    let id = sec * 1000 + k;
                    truth.push(FileId::new(id));
                    e.notify(rec(id), t);
                }
            }
            let t_end = Timestamp::from_secs(horizon);
            recall(&e.query(&pred(), t_end), &truth)
        };
        let slow = run(2);
        let fast = run(20);
        assert!(slow > fast, "2 FPS recall {slow} should beat 20 FPS recall {fast}");
    }

    #[test]
    fn recall_of_empty_truth_is_one() {
        assert_eq!(recall(&[], &[]), 1.0);
        assert_eq!(recall(&[FileId::new(1)], &[]), 1.0);
    }

    #[test]
    fn supported_is_deterministic() {
        let e = SpotlightEngine::new(SpotlightConfig::default());
        for i in 0..100 {
            assert_eq!(e.supported(FileId::new(i)), e.supported(FileId::new(i)));
        }
    }
}
