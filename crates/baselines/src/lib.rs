//! Evaluation baselines (paper §V).
//!
//! Propeller is evaluated against two real systems plus a brute-force
//! floor; each is rebuilt here with the structural properties the paper's
//! comparison rests on:
//!
//! * [`CentralDb`] — the MySQL stand-in: a *centralized* relational-style
//!   store with the paper's two-table schema (file attributes + keyword →
//!   file), global B+-tree indexes and a synchronous per-update commit
//!   path. No access locality, no lazy cache: every update pays the global
//!   index, which is exactly why it loses Figures 8/10 and Table III.
//! * [`SpotlightEngine`] — the crawling desktop-search stand-in: an
//!   asynchronous crawl queue (staleness grows with background I/O
//!   intensity), a limited file-type plugin set (hard recall ceiling) and
//!   full re-index windows during which queries return nothing — the three
//!   behaviours measured in Figures 1 and 11 and Table V.
//! * [`BruteForce`] — full-scan ground truth (always 100% recall, always
//!   slowest warm path).
//! * [`ShardedDb`] — the paper's future-work comparison class: a
//!   hash-sharded (key-partitioned, access-pattern-blind) store whose
//!   working sets scatter across all shards.
//!
//! Every baseline answers the same `SearchRequest` API as Propeller
//! (`search_with`: top-k, sort, projection, cursor pagination), so
//! comparative experiments exercise identical result-shaping semantics on
//! all systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod centraldb;
mod sharded;
mod spotlight;

pub use brute::BruteForce;
pub use centraldb::CentralDb;
pub use sharded::ShardedDb;
pub use spotlight::{recall, SpotlightConfig, SpotlightEngine};
