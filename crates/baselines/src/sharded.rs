//! A hash-sharded centralized store (the paper's future-work comparison).
//!
//! The paper notes (§V) that "current SQL (MySQL cluster), NoSQL (MongoDB)
//! and full text search (ElasticSearch) solutions can partition (shard)
//! datasets based on a chosen key, and thus they are not aware of
//! file-system access patterns", leaving the comparison to future work.
//! [`ShardedDb`] realises that class: N independent [`CentralDb`] shards
//! with files assigned by id hash. Shard-local indices are small (good),
//! but because placement ignores access causality, an application's
//! working set spreads across *all* shards — every process execution
//! touches ~N shards where Propeller touches 1.

use propeller_index::FileRecord;
use propeller_query::Predicate;
use propeller_types::FileId;

use crate::centraldb::CentralDb;

/// A hash-sharded store: key-partitioned, access-pattern-blind.
///
/// # Examples
///
/// ```
/// use propeller_baselines::ShardedDb;
/// use propeller_index::FileRecord;
/// use propeller_query::Query;
/// use propeller_types::{FileId, InodeAttrs, Timestamp};
///
/// let mut db = ShardedDb::new(4);
/// for i in 0..100u64 {
///     db.upsert(FileRecord::new(
///         FileId::new(i),
///         InodeAttrs::builder().size(i << 20).build(),
///     ));
/// }
/// let q = Query::parse("size>16m", Timestamp::from_secs(0)).unwrap();
/// assert_eq!(db.query(&q.predicate).len(), 83);
/// assert_eq!(db.shards(), 4);
/// ```
#[derive(Debug)]
pub struct ShardedDb {
    shards: Vec<CentralDb>,
}

impl ShardedDb {
    /// Creates a store with `shards` hash partitions.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardedDb { shards: (0..shards).map(|_| CentralDb::new()).collect() }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a file hashes to (stable SplitMix64 of the id).
    pub fn shard_of(&self, file: FileId) -> usize {
        let mut z = file.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z % self.shards.len() as u64) as usize
    }

    /// Inserts or replaces a row on its hash shard.
    pub fn upsert(&mut self, record: FileRecord) {
        let s = self.shard_of(record.file);
        self.shards[s].upsert(record);
    }

    /// Deletes a row.
    pub fn remove(&mut self, file: FileId) -> bool {
        let s = self.shard_of(file);
        self.shards[s].remove(file)
    }

    /// Answers the same [`SearchRequest`] API as Propeller: scatter–gather
    /// over every shard, merged into one shaped result set.
    pub fn search_with(
        &self,
        request: &propeller_query::SearchRequest,
    ) -> propeller_query::SearchResponse {
        propeller_query::run_local_search(
            self.shards.iter().flat_map(|s| s.records().cloned()),
            request,
        )
    }

    /// Queries every shard and merges (scatter–gather: a search always
    /// costs all N shards, because the key tells us nothing about which
    /// shards hold matching files).
    pub fn query(&self, pred: &Predicate) -> Vec<FileId> {
        let mut out: Vec<FileId> = self.shards.iter().flat_map(|s| s.query(pred)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total rows across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(CentralDb::len).sum()
    }

    /// Returns `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many distinct shards a set of files (one process execution's
    /// working set) touches — the access-concentration metric that
    /// Propeller's ACG placement minimises and hash placement destroys.
    pub fn shards_touched(&self, files: &[FileId]) -> usize {
        let set: std::collections::HashSet<usize> =
            files.iter().map(|&f| self.shard_of(f)).collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_query::Query;
    use propeller_types::{InodeAttrs, Timestamp};

    fn rec(file: u64, size: u64) -> FileRecord {
        FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
    }

    fn q(text: &str) -> Predicate {
        Query::parse(text, Timestamp::EPOCH).unwrap().predicate
    }

    #[test]
    fn sharded_results_match_unsharded() {
        let mut sharded = ShardedDb::new(8);
        let mut single = CentralDb::new();
        for i in 0..500u64 {
            sharded.upsert(rec(i, i << 16));
            single.upsert(rec(i, i << 16));
        }
        for text in ["size>1m", "size>1m & size<16m", "size<=0"] {
            assert_eq!(sharded.query(&q(text)), single.query(&q(text)), "{text}");
        }
    }

    #[test]
    fn placement_is_stable_and_spread() {
        let db = ShardedDb::new(4);
        for i in 0..100 {
            assert_eq!(db.shard_of(FileId::new(i)), db.shard_of(FileId::new(i)));
        }
        let counts: Vec<usize> = (0..4)
            .map(|s| (0..1000).filter(|&i| db.shard_of(FileId::new(i)) == s).count())
            .collect();
        assert!(counts.iter().all(|&c| c > 150), "roughly uniform: {counts:?}");
    }

    #[test]
    fn working_sets_scatter_across_shards() {
        // A 40-file working set on 8 shards touches ~all of them — the
        // structural cost of access-blind placement.
        let db = ShardedDb::new(8);
        let files: Vec<FileId> = (0..40).map(FileId::new).collect();
        assert!(db.shards_touched(&files) >= 7);
    }

    #[test]
    fn remove_routes_to_owning_shard() {
        let mut db = ShardedDb::new(3);
        db.upsert(rec(9, 100));
        assert!(db.remove(FileId::new(9)));
        assert!(!db.remove(FileId::new(9)));
        assert!(db.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedDb::new(0);
    }
}
