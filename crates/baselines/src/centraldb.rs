//! The MySQL-like centralized store.

use std::collections::HashMap;
use std::ops::Bound;

use propeller_index::{BPlusTree, FileRecord};
use propeller_query::{matches_record, Predicate};
use propeller_types::{AttrName, FileId, Value};

/// A centralized relational-style file-metadata store, mirroring the
/// paper's MySQL setup: "one \[table\] for storing the full file path and
/// inode attributes and the other for storing the mapping from keyword to
/// file path" (§V-B), both backed by global B+-tree indexes.
///
/// The defining structural property is **centralization**: one global
/// index per attribute, a synchronous commit per update, no partitioning
/// and no awareness of access locality. Its per-update cost therefore
/// scales with the whole dataset, not with the working set.
///
/// # Examples
///
/// ```
/// use propeller_baselines::CentralDb;
/// use propeller_index::FileRecord;
/// use propeller_query::Query;
/// use propeller_types::{FileId, InodeAttrs, Timestamp};
///
/// let mut db = CentralDb::new();
/// db.upsert(FileRecord::new(
///     FileId::new(1),
///     InodeAttrs::builder().size(2 << 30).build(),
/// ));
/// let q = Query::parse("size>1g", Timestamp::from_secs(0)).unwrap();
/// assert_eq!(db.query(&q.predicate), vec![FileId::new(1)]);
/// ```
#[derive(Debug, Default)]
pub struct CentralDb {
    /// Table 1: file id → full record (path attrs + keywords + custom).
    files: HashMap<FileId, FileRecord>,
    /// Global secondary index over size.
    size_idx: BPlusTree<Value, Vec<FileId>>,
    /// Global secondary index over mtime.
    mtime_idx: BPlusTree<Value, Vec<FileId>>,
    /// Table 2: keyword → files (global B+-tree, as MySQL would index it).
    keyword_idx: BPlusTree<Value, Vec<FileId>>,
    /// Updates applied (each one a synchronous global-index commit).
    commits: u64,
}

fn posting_insert(list: &mut Vec<FileId>, file: FileId) {
    if let Err(pos) = list.binary_search(&file) {
        list.insert(pos, file);
    }
}

fn posting_remove(list: &mut Vec<FileId>, file: FileId) {
    if let Ok(pos) = list.binary_search(&file) {
        list.remove(pos);
    }
}

impl CentralDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        CentralDb::default()
    }

    /// Number of rows in the files table.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Number of synchronous commits performed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Depth of the global size index (the `O(log N)` the paper charges).
    pub fn global_index_depth(&self) -> usize {
        self.size_idx.depth()
    }

    fn index(&mut self, record: &FileRecord) {
        let size = Value::U64(record.attrs.size);
        match self.size_idx.get_mut(&size) {
            Some(list) => posting_insert(list, record.file),
            None => {
                self.size_idx.insert(size, vec![record.file]);
            }
        }
        let mtime = Value::U64(record.attrs.mtime.as_micros());
        match self.mtime_idx.get_mut(&mtime) {
            Some(list) => posting_insert(list, record.file),
            None => {
                self.mtime_idx.insert(mtime, vec![record.file]);
            }
        }
        for kw in &record.keywords {
            let key = Value::from(kw.as_str());
            match self.keyword_idx.get_mut(&key) {
                Some(list) => posting_insert(list, record.file),
                None => {
                    self.keyword_idx.insert(key, vec![record.file]);
                }
            }
        }
    }

    fn unindex(&mut self, record: &FileRecord) {
        if let Some(list) = self.size_idx.get_mut(&Value::U64(record.attrs.size)) {
            posting_remove(list, record.file);
        }
        if let Some(list) = self.mtime_idx.get_mut(&Value::U64(record.attrs.mtime.as_micros())) {
            posting_remove(list, record.file);
        }
        for kw in &record.keywords {
            if let Some(list) = self.keyword_idx.get_mut(&Value::from(kw.as_str())) {
                posting_remove(list, record.file);
            }
        }
    }

    /// Inserts or replaces a row — one synchronous global commit.
    pub fn upsert(&mut self, record: FileRecord) {
        self.commits += 1;
        if let Some(old) = self.files.remove(&record.file) {
            self.unindex(&old);
        }
        self.index(&record);
        self.files.insert(record.file, record);
    }

    /// Deletes a row.
    pub fn remove(&mut self, file: FileId) -> bool {
        self.commits += 1;
        match self.files.remove(&file) {
            Some(old) => {
                self.unindex(&old);
                true
            }
            None => false,
        }
    }

    /// Iterates every stored record.
    pub fn records(&self) -> impl Iterator<Item = &FileRecord> {
        self.files.values()
    }

    /// Answers the same [`SearchRequest`] API as Propeller (top-k, sort,
    /// projection, cursor), so system comparisons stay apples-to-apples.
    /// Centralized stores always answer completely or not at all, so the
    /// response is always `complete`.
    pub fn search_with(
        &self,
        request: &propeller_query::SearchRequest,
    ) -> propeller_query::SearchResponse {
        propeller_query::run_local_search(self.files.values().cloned(), request)
    }

    /// Runs a predicate query. Uses the global indexes for size/mtime
    /// ranges and keyword equality, then post-filters with the exact
    /// predicate (same executor contract as Propeller's).
    pub fn query(&self, pred: &Predicate) -> Vec<FileId> {
        let candidates = self.candidates(pred);
        let mut out: Vec<FileId> = match candidates {
            Some(c) => c
                .into_iter()
                .filter(|f| self.files.get(f).is_some_and(|r| matches_record(r, pred)))
                .collect(),
            None => {
                self.files.values().filter(|r| matches_record(r, pred)).map(|r| r.file).collect()
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Picks an index-backed candidate superset, mirroring a SQL planner:
    /// keyword equality first, then a size/mtime range.
    fn candidates(&self, pred: &Predicate) -> Option<Vec<FileId>> {
        for conjunct in pred.conjuncts() {
            if let Predicate::Keyword(w) = conjunct {
                return Some(
                    self.keyword_idx.get(&Value::from(w.as_str())).cloned().unwrap_or_default(),
                );
            }
        }
        for conjunct in pred.conjuncts() {
            if let Predicate::Compare { attr, op, value } = conjunct {
                let idx = match attr {
                    AttrName::Size => &self.size_idx,
                    AttrName::Mtime => &self.mtime_idx,
                    _ => continue,
                };
                use propeller_query::CompareOp::*;
                let (lo, hi) = match op {
                    Eq => (Bound::Included(value.clone()), Bound::Included(value.clone())),
                    Gt => (Bound::Excluded(value.clone()), Bound::Unbounded),
                    Ge => (Bound::Included(value.clone()), Bound::Unbounded),
                    Lt => (Bound::Unbounded, Bound::Excluded(value.clone())),
                    Le => (Bound::Unbounded, Bound::Included(value.clone())),
                    Ne => continue,
                };
                let mut files: Vec<FileId> =
                    idx.range((lo, hi)).flat_map(|(_, list)| list.iter().copied()).collect();
                files.sort_unstable();
                files.dedup();
                return Some(files);
            }
        }
        None
    }

    /// Direct row access.
    pub fn record(&self, file: FileId) -> Option<&FileRecord> {
        self.files.get(&file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_query::Query;
    use propeller_types::{InodeAttrs, Timestamp};

    fn now() -> Timestamp {
        Timestamp::from_secs(100 * 86_400)
    }

    fn rec(file: u64, size: u64, age_hours: u64) -> FileRecord {
        FileRecord::new(
            FileId::new(file),
            InodeAttrs::builder()
                .size(size)
                .mtime(now() - propeller_types::Duration::from_secs(age_hours * 3600))
                .build(),
        )
    }

    fn q(text: &str) -> Predicate {
        Query::parse(text, now()).unwrap().predicate
    }

    #[test]
    fn size_range_query() {
        let mut db = CentralDb::new();
        for i in 0..100 {
            db.upsert(rec(i, i << 20, 0));
        }
        assert_eq!(db.query(&q("size>16m")).len(), 83);
        assert_eq!(db.commits(), 100);
    }

    #[test]
    fn keyword_query_uses_table_two() {
        let mut db = CentralDb::new();
        for i in 0..50 {
            let r = rec(i, 1, 0).with_keyword(if i % 5 == 0 { "firefox" } else { "misc" });
            db.upsert(r);
        }
        assert_eq!(db.query(&q("keyword:firefox")).len(), 10);
    }

    #[test]
    fn paper_queries_combined() {
        let mut db = CentralDb::new();
        for i in 0..200u64 {
            let r = rec(i, (i % 50) << 26, i % 72).with_keyword("firefox");
            db.upsert(r);
        }
        // size > 1g & mtime < 1day.
        let hits = db.query(&q("size>1g & mtime<1day"));
        let brute: Vec<FileId> = (0..200u64)
            .filter(|i| ((i % 50) << 26) > (1 << 30) && (i % 72) < 24)
            .map(FileId::new)
            .collect();
        assert_eq!(hits, brute);
        // keyword & mtime < 1week.
        let hits2 = db.query(&q("keyword:firefox & mtime<1week"));
        assert_eq!(hits2.len(), 200); // all are < 72h old and all carry the kw
    }

    #[test]
    fn upsert_replaces_row() {
        let mut db = CentralDb::new();
        db.upsert(rec(1, 100, 0));
        db.upsert(rec(1, 999, 0));
        assert_eq!(db.len(), 1);
        assert!(db.query(&q("size=100")).is_empty());
        assert_eq!(db.query(&q("size=999")), vec![FileId::new(1)]);
    }

    #[test]
    fn remove_row() {
        let mut db = CentralDb::new();
        db.upsert(rec(1, 100, 0));
        assert!(db.remove(FileId::new(1)));
        assert!(!db.remove(FileId::new(1)));
        assert!(db.query(&q("size>=0")).is_empty());
    }

    #[test]
    fn global_depth_grows_with_rows() {
        let mut db = CentralDb::new();
        for i in 0..10_000 {
            db.upsert(rec(i, i, 0));
        }
        assert!(db.global_index_depth() >= 3);
    }

    #[test]
    fn unindexed_attr_falls_back_to_scan() {
        let mut db = CentralDb::new();
        db.upsert(rec(1, 5, 0));
        assert_eq!(db.query(&q("uid=0")), vec![FileId::new(1)]);
        assert!(db.query(&q("uid=99")).is_empty());
    }
}
