//! Brute-force full scan (Table V's baseline row).

use std::sync::Arc;

use propeller_index::FileRecord;
use propeller_query::{matches_record, Predicate};
use propeller_storage::SharedStorage;
use propeller_types::FileId;

/// Ground-truth search: scan every file in shared storage and evaluate the
/// predicate directly. Always 100% recall; cost scales linearly with the
/// namespace (the paper's Table V "Brute-Force" rows take 51.9 s / 110.4 s
/// cold where Propeller takes ~3 s).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use propeller_baselines::BruteForce;
/// use propeller_query::Query;
/// use propeller_storage::SharedStorage;
/// use propeller_types::{InodeAttrs, Timestamp};
///
/// let storage = Arc::new(SharedStorage::new());
/// storage.create("/big", InodeAttrs::builder().size(1 << 30).build()).unwrap();
/// storage.create("/small", InodeAttrs::builder().size(1).build()).unwrap();
///
/// let brute = BruteForce::new(storage.clone());
/// let q = Query::parse("size>16m", Timestamp::from_secs(0)).unwrap();
/// assert_eq!(brute.query(&q.predicate).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BruteForce {
    storage: Arc<SharedStorage>,
}

impl BruteForce {
    /// A scanner over the given namespace.
    pub fn new(storage: Arc<SharedStorage>) -> Self {
        BruteForce { storage }
    }

    /// Answers the same [`SearchRequest`] API as Propeller with a full
    /// scan — the ground-truth implementation of the request semantics.
    pub fn search_with(
        &self,
        request: &propeller_query::SearchRequest,
    ) -> propeller_query::SearchResponse {
        propeller_query::run_local_search(
            self.storage
                .snapshot()
                .into_iter()
                .map(|(id, _path, attrs)| FileRecord::new(id, attrs)),
            request,
        )
    }

    /// Scans everything, evaluating `pred` per file.
    pub fn query(&self, pred: &Predicate) -> Vec<FileId> {
        self.storage
            .snapshot()
            .into_iter()
            .filter_map(|(id, _path, attrs)| {
                let record = FileRecord::new(id, attrs);
                matches_record(&record, pred).then_some(id)
            })
            .collect()
    }

    /// Number of files the scan would visit.
    pub fn scan_size(&self) -> usize {
        self.storage.file_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_query::Query;
    use propeller_types::{InodeAttrs, Timestamp};

    #[test]
    fn scan_finds_exactly_the_matches() {
        let storage = Arc::new(SharedStorage::new());
        for i in 0..100u64 {
            storage.create(&format!("/f{i}"), InodeAttrs::builder().size(i << 20).build()).unwrap();
        }
        let brute = BruteForce::new(storage);
        let q = Query::parse("size>16m", Timestamp::EPOCH).unwrap();
        assert_eq!(brute.query(&q.predicate).len(), 83);
        assert_eq!(brute.scan_size(), 100);
    }

    #[test]
    fn scan_sees_updates_immediately() {
        let storage = Arc::new(SharedStorage::new());
        let id = storage.create("/x", InodeAttrs::default()).unwrap();
        let brute = BruteForce::new(storage.clone());
        let q = Query::parse("size>1m", Timestamp::EPOCH).unwrap();
        assert!(brute.query(&q.predicate).is_empty());
        storage.update(id, |a| a.size = 10 << 20).unwrap();
        assert_eq!(brute.query(&q.predicate), vec![id]);
    }
}
