//! Connected components via union–find.

use propeller_types::FileId;

use crate::AcgGraph;

/// The weakly-connected components of an [`AcgGraph`].
///
/// Propeller partitions file indices by component (paper §III property 3:
/// even a single application's ACG has several disconnected components).
///
/// # Examples
///
/// ```
/// use propeller_acg::AcgGraph;
/// use propeller_types::FileId;
///
/// let mut g = AcgGraph::new();
/// g.add_edge(FileId::new(1), FileId::new(2), 1);
/// g.add_edge(FileId::new(2), FileId::new(3), 1);
/// g.add_vertex(FileId::new(9)); // isolated
///
/// let comps = g.components();
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps.largest().unwrap().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ComponentSet {
    components: Vec<Vec<FileId>>,
}

impl ComponentSet {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` when the graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates over components (largest first).
    pub fn iter(&self) -> impl Iterator<Item = &[FileId]> {
        self.components.iter().map(Vec::as_slice)
    }

    /// The largest component, if any.
    pub fn largest(&self) -> Option<&[FileId]> {
        self.components.first().map(Vec::as_slice)
    }

    /// Consumes the set, yielding the component file lists (largest first).
    pub fn into_vec(self) -> Vec<Vec<FileId>> {
        self.components
    }
}

/// A classic union–find (disjoint-set) structure over dense indices.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    pub(crate) fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
        true
    }
}

impl AcgGraph {
    /// Computes the weakly-connected components, largest first.
    pub fn components(&self) -> ComponentSet {
        let n = self.vertex_count();
        let mut uf = UnionFind::new(n);
        for (s, d, _) in self.edges() {
            let si = self.local_index(s).expect("edge endpoint must be a vertex");
            let di = self.local_index(d).expect("edge endpoint must be a vertex");
            uf.union(si, di);
        }
        let mut groups: std::collections::HashMap<u32, Vec<FileId>> =
            std::collections::HashMap::new();
        for ix in 0..n as u32 {
            let root = uf.find(ix);
            groups.entry(root).or_default().push(self.file_at(ix));
        }
        let mut components: Vec<Vec<FileId>> = groups.into_values().collect();
        for c in &mut components {
            c.sort_unstable();
        }
        // Largest first; tie-break on first file id for determinism.
        components.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        ComponentSet { components }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = AcgGraph::new();
        assert!(g.components().is_empty());
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let mut g = AcgGraph::new();
        g.add_vertex(f(1));
        g.add_vertex(f(2));
        let c = g.components();
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|comp| comp.len() == 1));
    }

    #[test]
    fn chain_is_one_component() {
        let mut g = AcgGraph::new();
        for i in 0..10 {
            g.add_edge(f(i), f(i + 1), 1);
        }
        let c = g.components();
        assert_eq!(c.len(), 1);
        assert_eq!(c.largest().unwrap().len(), 11);
    }

    #[test]
    fn direction_does_not_split_components() {
        // a -> b and c -> b: weakly connected even though not strongly.
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 1);
        g.add_edge(f(3), f(2), 1);
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn components_sorted_largest_first() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 1);
        for i in 10..15 {
            g.add_edge(f(i), f(i + 1), 1);
        }
        let c = g.components();
        assert_eq!(c.len(), 2);
        assert_eq!(c.largest().unwrap().len(), 6);
        let sizes: Vec<usize> = c.iter().map(|x| x.len()).collect();
        assert_eq!(sizes, vec![6, 2]);
    }

    #[test]
    fn components_partition_the_vertex_set() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 1);
        g.add_edge(f(4), f(5), 1);
        g.add_vertex(f(9));
        let c = g.components();
        let total: usize = c.iter().map(|x| x.len()).sum();
        assert_eq!(total, g.vertex_count());
        let mut all: Vec<FileId> = c.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), g.vertex_count());
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_ne!(uf.find(0), uf.find(2));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }
}
