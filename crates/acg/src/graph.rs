//! The weighted directed access-causality graph.

use std::collections::HashMap;

use propeller_trace::EdgeUpdate;
use propeller_types::FileId;
use serde::{Deserialize, Serialize};

/// A weighted directed graph of access causalities.
///
/// Vertices are [`FileId`]s; the weight of edge `a → b` counts how many
/// times a process accessed `a` before writing `b`. The graph supports the
/// incremental updates flushed by clients ([`AcgGraph::apply_update`]),
/// undirected views for partitioning, component extraction and subgraph
/// slicing for ACG splits and migrations.
///
/// # Examples
///
/// ```
/// use propeller_acg::AcgGraph;
/// use propeller_types::FileId;
///
/// let mut g = AcgGraph::new();
/// g.add_edge(FileId::new(1), FileId::new(2), 3);
/// g.add_edge(FileId::new(1), FileId::new(2), 2);
/// assert_eq!(g.edge_weight(FileId::new(1), FileId::new(2)), Some(5));
/// assert_eq!(g.total_weight(), 5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AcgGraph {
    /// FileId -> dense local index.
    ids: HashMap<FileId, u32>,
    /// Dense local index -> FileId.
    files: Vec<FileId>,
    /// Out-adjacency: local -> (local -> weight).
    out: Vec<HashMap<u32, u64>>,
    /// In-adjacency (weights mirrored) so undirected traversal is O(degree).
    inc: Vec<HashMap<u32, u64>>,
    /// Number of distinct directed edges.
    edge_count: usize,
    /// Sum of all directed edge weights.
    total_weight: u64,
}

impl AcgGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AcgGraph::default()
    }

    /// Ensures `file` is a vertex and returns its dense local index.
    pub fn add_vertex(&mut self, file: FileId) -> u32 {
        if let Some(&ix) = self.ids.get(&file) {
            return ix;
        }
        let ix = self.files.len() as u32;
        self.ids.insert(file, ix);
        self.files.push(file);
        self.out.push(HashMap::new());
        self.inc.push(HashMap::new());
        ix
    }

    /// Adds `weight` to the directed edge `src → dst`, creating vertices and
    /// the edge as needed. Self-loops are ignored (the causality rule never
    /// produces them, and they carry no partitioning signal).
    pub fn add_edge(&mut self, src: FileId, dst: FileId, weight: u64) {
        if src == dst || weight == 0 {
            return;
        }
        let s = self.add_vertex(src);
        let d = self.add_vertex(dst);
        let entry = self.out[s as usize].entry(d).or_insert(0);
        if *entry == 0 {
            self.edge_count += 1;
        }
        *entry += weight;
        *self.inc[d as usize].entry(s).or_insert(0) += weight;
        self.total_weight += weight;
    }

    /// Applies one client-flushed edge update.
    pub fn apply_update(&mut self, update: EdgeUpdate) {
        self.add_edge(update.src, update.dst, update.weight);
    }

    /// Applies a batch of client-flushed edge updates.
    pub fn apply_updates<I: IntoIterator<Item = EdgeUpdate>>(&mut self, updates: I) {
        for u in updates {
            self.apply_update(u);
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.files.len()
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of all directed edge weights.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Whether `file` is a vertex of this graph.
    pub fn contains(&self, file: FileId) -> bool {
        self.ids.contains_key(&file)
    }

    /// The weight of directed edge `src → dst`, if present.
    pub fn edge_weight(&self, src: FileId, dst: FileId) -> Option<u64> {
        let s = *self.ids.get(&src)?;
        let d = *self.ids.get(&dst)?;
        self.out[s as usize].get(&d).copied()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files.iter().copied()
    }

    /// Iterates over the out-edges of `file` as `(dst, weight)`.
    pub fn out_edges(&self, file: FileId) -> impl Iterator<Item = (FileId, u64)> + '_ {
        let ix = self.ids.get(&file).copied();
        ix.into_iter().flat_map(move |ix| {
            self.out[ix as usize].iter().map(move |(&d, &w)| (self.files[d as usize], w))
        })
    }

    /// Iterates over all directed edges as `(src, dst, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (FileId, FileId, u64)> + '_ {
        self.out.iter().enumerate().flat_map(move |(s, adj)| {
            adj.iter().map(move |(&d, &w)| (self.files[s], self.files[d as usize], w))
        })
    }

    /// The undirected weight between `a` and `b`: `w(a→b) + w(b→a)`.
    pub fn undirected_weight(&self, a: FileId, b: FileId) -> u64 {
        self.edge_weight(a, b).unwrap_or(0) + self.edge_weight(b, a).unwrap_or(0)
    }

    /// Builds the undirected adjacency view used by the partitioner:
    /// `adj[i]` lists `(neighbor, combined weight)` with local indices.
    pub(crate) fn undirected_adjacency(&self) -> Vec<Vec<(u32, u64)>> {
        let n = self.files.len();
        let mut adj: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for (s, out) in self.out.iter().enumerate() {
            for (&d, &w) in out {
                *adj[s].entry(d).or_insert(0) += w;
                *adj[d as usize].entry(s as u32).or_insert(0) += w;
            }
        }
        adj.into_iter()
            .map(|m| {
                let mut v: Vec<(u32, u64)> = m.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    /// The dense local index of `file`, if it is a vertex.
    pub(crate) fn local_index(&self, file: FileId) -> Option<u32> {
        self.ids.get(&file).copied()
    }

    /// The file at dense local index `ix`.
    pub(crate) fn file_at(&self, ix: u32) -> FileId {
        self.files[ix as usize]
    }

    /// Extracts the induced subgraph on `files` (vertices absent from this
    /// graph are added as isolated vertices of the subgraph).
    ///
    /// Used when an ACG split migrates one half to a different Index Node.
    pub fn subgraph<'a, I: IntoIterator<Item = &'a FileId>>(&self, files: I) -> AcgGraph {
        let mut sub = AcgGraph::new();
        let wanted: Vec<FileId> = files.into_iter().copied().collect();
        let member: std::collections::HashSet<FileId> = wanted.iter().copied().collect();
        for &f in &wanted {
            sub.add_vertex(f);
        }
        for &f in &wanted {
            if let Some(ix) = self.ids.get(&f) {
                for (&d, &w) in &self.out[*ix as usize] {
                    let dst = self.files[d as usize];
                    if member.contains(&dst) {
                        sub.add_edge(f, dst, w);
                    }
                }
            }
        }
        sub
    }

    /// Merges another graph into this one (used when two ACGs are merged
    /// back onto one Index Node).
    pub fn merge(&mut self, other: &AcgGraph) {
        for f in other.vertices() {
            self.add_vertex(f);
        }
        for (s, d, w) in other.edges() {
            self.add_edge(s, d, w);
        }
    }

    /// Removes a vertex and all its incident edges (file deletion).
    ///
    /// Returns `true` if the vertex existed. This is O(degree) plus one
    /// swap-remove relabel.
    pub fn remove_vertex(&mut self, file: FileId) -> bool {
        let Some(ix) = self.ids.remove(&file) else {
            return false;
        };
        let ix = ix as usize;
        // Detach incident edges.
        let out = std::mem::take(&mut self.out[ix]);
        for (d, w) in out {
            self.inc[d as usize].remove(&(ix as u32));
            self.edge_count -= 1;
            self.total_weight -= w;
        }
        let inc = std::mem::take(&mut self.inc[ix]);
        for (s, w) in inc {
            self.out[s as usize].remove(&(ix as u32));
            self.edge_count -= 1;
            self.total_weight -= w;
        }
        // Swap-remove the vertex, relabelling the moved last vertex.
        let last = self.files.len() - 1;
        self.files.swap_remove(ix);
        self.out.swap_remove(ix);
        self.inc.swap_remove(ix);
        if ix != last {
            let moved = self.files[ix];
            self.ids.insert(moved, ix as u32);
            // Rewrite references to `last` as `ix`.
            let out_keys: Vec<u32> = self.out[ix].keys().copied().collect();
            for d in out_keys {
                let w = self.out[ix][&d];
                let peer = &mut self.inc[d as usize];
                peer.remove(&(last as u32));
                peer.insert(ix as u32, w);
            }
            let inc_keys: Vec<u32> = self.inc[ix].keys().copied().collect();
            for s in inc_keys {
                let w = self.inc[ix][&s];
                let peer = &mut self.out[s as usize];
                peer.remove(&(last as u32));
                peer.insert(ix as u32, w);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    #[test]
    fn add_edge_accumulates_weight() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 2);
        g.add_edge(f(1), f(2), 3);
        assert_eq!(g.edge_weight(f(1), f(2)), Some(5));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_weight(), 5);
    }

    #[test]
    fn self_loops_and_zero_weights_ignored() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(1), 9);
        g.add_edge(f(1), f(2), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0);
    }

    #[test]
    fn directed_edges_are_directed() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 4);
        assert_eq!(g.edge_weight(f(2), f(1)), None);
        assert_eq!(g.undirected_weight(f(1), f(2)), 4);
        g.add_edge(f(2), f(1), 6);
        assert_eq!(g.undirected_weight(f(1), f(2)), 10);
    }

    #[test]
    fn vertices_without_edges() {
        let mut g = AcgGraph::new();
        g.add_vertex(f(7));
        assert_eq!(g.vertex_count(), 1);
        assert!(g.contains(f(7)));
        assert_eq!(g.out_edges(f(7)).count(), 0);
    }

    #[test]
    fn apply_updates_batch() {
        let mut g = AcgGraph::new();
        g.apply_updates(vec![
            EdgeUpdate { src: f(1), dst: f(2), weight: 1 },
            EdgeUpdate { src: f(2), dst: f(3), weight: 2 },
        ]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.total_weight(), 3);
    }

    #[test]
    fn subgraph_keeps_internal_edges_only() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 1);
        g.add_edge(f(2), f(3), 1);
        g.add_edge(f(3), f(4), 1);
        let sub = g.subgraph(&[f(1), f(2), f(3)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.edge_weight(f(1), f(2)), Some(1));
        assert_eq!(sub.edge_weight(f(3), f(4)), None);
    }

    #[test]
    fn merge_unions_graphs() {
        let mut a = AcgGraph::new();
        a.add_edge(f(1), f(2), 1);
        let mut b = AcgGraph::new();
        b.add_edge(f(1), f(2), 2);
        b.add_edge(f(3), f(4), 1);
        a.merge(&b);
        assert_eq!(a.edge_weight(f(1), f(2)), Some(3));
        assert_eq!(a.vertex_count(), 4);
    }

    #[test]
    fn remove_vertex_detaches_edges() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 1);
        g.add_edge(f(2), f(3), 2);
        g.add_edge(f(3), f(1), 3);
        assert!(g.remove_vertex(f(2)));
        assert!(!g.contains(f(2)));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_weight(), 3);
        assert_eq!(g.edge_weight(f(3), f(1)), Some(3));
        assert!(!g.remove_vertex(f(2)));
    }

    #[test]
    fn remove_vertex_relabels_swapped_vertex() {
        let mut g = AcgGraph::new();
        // Create several vertices so swap_remove actually relabels.
        for i in 1..=5 {
            g.add_vertex(f(i));
        }
        g.add_edge(f(4), f(5), 7);
        g.add_edge(f(5), f(3), 2);
        assert!(g.remove_vertex(f(1)));
        // Edges among surviving vertices must be intact.
        assert_eq!(g.edge_weight(f(4), f(5)), Some(7));
        assert_eq!(g.edge_weight(f(5), f(3)), Some(2));
        assert_eq!(g.undirected_weight(f(4), f(5)), 7);
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 4);
        g.add_edge(f(2), f(1), 1);
        g.add_edge(f(2), f(3), 2);
        let adj = g.undirected_adjacency();
        let ix1 = g.local_index(f(1)).unwrap() as usize;
        let ix2 = g.local_index(f(2)).unwrap() as usize;
        let w12 = adj[ix1].iter().find(|(d, _)| *d == ix2 as u32).unwrap().1;
        let w21 = adj[ix2].iter().find(|(d, _)| *d == ix1 as u32).unwrap().1;
        assert_eq!(w12, 5);
        assert_eq!(w21, 5);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 1);
        g.add_edge(f(2), f(3), 2);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(f(1), f(2), 1), (f(2), f(3), 2)]);
    }
}
