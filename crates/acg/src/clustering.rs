//! Component clustering: from ACG components to index partitions.
//!
//! Propeller "clusters small connected components of the ACG from the same
//! application into a single partition to prevent the fragmentation of
//! indices", and splits any component that exceeds the partition threshold
//! (paper §III). [`cluster_components`] implements both halves:
//!
//! * components are packed into partitions with first-fit-decreasing bin
//!   packing, never exceeding `max_files` per partition;
//! * oversized components are recursively bisected with [`crate::bisect`]
//!   until every piece fits.

use propeller_types::FileId;

use crate::{bisect, AcgGraph, PartitionConfig};

/// Configuration for [`cluster_components`].
///
/// # Examples
///
/// ```
/// use propeller_acg::ClusteringConfig;
///
/// let cfg = ClusteringConfig::with_max_files(1000);
/// assert_eq!(cfg.max_files, 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ClusteringConfig {
    /// Maximum number of files per partition (paper default: 50 000).
    pub max_files: usize,
    /// Partitioner settings used when a component must be split.
    pub partition: PartitionConfig,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig { max_files: 50_000, partition: PartitionConfig::default() }
    }
}

impl ClusteringConfig {
    /// A config with the given partition size cap and default partitioner
    /// settings.
    pub fn with_max_files(max_files: usize) -> Self {
        ClusteringConfig { max_files, ..ClusteringConfig::default() }
    }
}

/// Partitions the files of `graph` into groups of at most
/// `config.max_files`, preserving access locality:
///
/// * every connected component that fits lands in exactly one group,
/// * oversized components are bisected (recursively) with minimal cut,
/// * small components are packed together (first-fit decreasing) to avoid
///   fragmentation.
///
/// Every vertex of the graph appears in exactly one returned group.
///
/// # Panics
///
/// Panics if `config.max_files` is zero.
///
/// # Examples
///
/// ```
/// use propeller_acg::{cluster_components, AcgGraph, ClusteringConfig};
/// use propeller_types::FileId;
///
/// let mut g = AcgGraph::new();
/// for i in 0..4 {
///     g.add_edge(FileId::new(i * 10), FileId::new(i * 10 + 1), 1);
/// }
/// // Four 2-file components packed into partitions of at most 4 files.
/// let groups = cluster_components(&g, &ClusteringConfig::with_max_files(4));
/// assert_eq!(groups.len(), 2);
/// assert!(groups.iter().all(|p| p.len() == 4));
/// ```
pub fn cluster_components(graph: &AcgGraph, config: &ClusteringConfig) -> Vec<Vec<FileId>> {
    assert!(config.max_files > 0, "max_files must be positive");

    // 1. Split oversized components until every piece fits.
    let mut pieces: Vec<Vec<FileId>> = Vec::new();
    let mut work: Vec<Vec<FileId>> = graph.components().into_vec();
    let mut split_round = 0u64;
    while let Some(comp) = work.pop() {
        if comp.len() <= config.max_files {
            pieces.push(comp);
            continue;
        }
        split_round += 1;
        let sub = graph.subgraph(&comp);
        let mut cfg = config.partition.clone();
        // Vary the seed per split so repeated recursion does not reuse one
        // unlucky matching order.
        cfg.seed = cfg.seed.wrapping_add(split_round);
        let bisection = bisect(&sub, &cfg);
        if bisection.left.is_empty() || bisection.right.is_empty() {
            // Degenerate split (should not happen for len >= 2); fall back
            // to an arbitrary halving to guarantee termination.
            let mut comp = comp;
            let half = comp.len() / 2;
            let rest = comp.split_off(half);
            work.push(comp);
            work.push(rest);
        } else {
            work.push(bisection.left);
            work.push(bisection.right);
        }
    }

    // 2. First-fit-decreasing packing of the pieces.
    pieces.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.first().cmp(&b.first())));
    let mut bins: Vec<Vec<FileId>> = Vec::new();
    for piece in pieces {
        match bins.iter_mut().find(|bin| bin.len() + piece.len() <= config.max_files) {
            Some(bin) => bin.extend(piece),
            None => bins.push(piece),
        }
    }
    for bin in &mut bins {
        bin.sort_unstable();
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    /// A chain component with ids `[base, base + len)`.
    fn chain(g: &mut AcgGraph, base: u64, len: u64) {
        for i in 0..len.saturating_sub(1) {
            g.add_edge(f(base + i), f(base + i + 1), 1);
        }
        if len == 1 {
            g.add_vertex(f(base));
        }
    }

    #[test]
    fn small_components_are_packed_together() {
        let mut g = AcgGraph::new();
        for k in 0..10 {
            chain(&mut g, k * 100, 3); // ten 3-file components
        }
        let groups = cluster_components(&g, &ClusteringConfig::with_max_files(9));
        // 30 files into bins of <= 9 in multiples of 3: expect ceil(30/9)=4 bins.
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|p| p.len() <= 9));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn every_file_appears_exactly_once() {
        let mut g = AcgGraph::new();
        chain(&mut g, 0, 12);
        chain(&mut g, 100, 5);
        chain(&mut g, 200, 1);
        let groups = cluster_components(&g, &ClusteringConfig::with_max_files(6));
        let mut all: Vec<FileId> = groups.iter().flatten().copied().collect();
        all.sort();
        let mut expected: Vec<FileId> = g.vertices().collect();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn oversized_component_is_split() {
        let mut g = AcgGraph::new();
        chain(&mut g, 0, 100);
        let groups = cluster_components(&g, &ClusteringConfig::with_max_files(30));
        assert!(groups.len() >= 4, "100-file chain into <=30-file groups");
        assert!(groups.iter().all(|p| p.len() <= 30));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn fitting_component_stays_whole() {
        let mut g = AcgGraph::new();
        chain(&mut g, 0, 10);
        chain(&mut g, 100, 10);
        let groups = cluster_components(&g, &ClusteringConfig::with_max_files(10));
        assert_eq!(groups.len(), 2);
        // Each component intact in its own partition.
        for group in &groups {
            let bases: std::collections::HashSet<u64> =
                group.iter().map(|x| x.raw() / 100).collect();
            assert_eq!(bases.len(), 1, "components were mixed: {group:?}");
        }
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = AcgGraph::new();
        assert!(cluster_components(&g, &ClusteringConfig::with_max_files(10)).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_files must be positive")]
    fn zero_max_files_rejected() {
        let g = AcgGraph::new();
        let _ = cluster_components(&g, &ClusteringConfig::with_max_files(0));
    }

    #[test]
    fn split_preserves_locality_for_two_communities() {
        // One component = two dense communities bridged by a light edge;
        // splitting at max_files=10 should cut the bridge.
        let mut g = AcgGraph::new();
        for base in [0u64, 500] {
            for a in 0..10 {
                for b in (a + 1)..10 {
                    g.add_edge(f(base + a), f(base + b), 10);
                }
            }
        }
        g.add_edge(f(9), f(500), 1);
        let groups = cluster_components(&g, &ClusteringConfig::with_max_files(10));
        assert_eq!(groups.len(), 2);
        for group in &groups {
            let communities: std::collections::HashSet<u64> =
                group.iter().map(|x| x.raw() / 500).collect();
            assert_eq!(communities.len(), 1, "communities were mixed");
        }
    }
}
