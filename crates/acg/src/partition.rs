//! Balanced 2-way min-cut graph partitioning.
//!
//! The paper splits oversized ACG components with METIS (§III). This module
//! is a from-scratch partitioner in the same algorithm family:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched vertex
//!    pairs, preserving cut structure while shrinking the graph
//!    geometrically.
//! 2. **Initial partition** — greedy graph growing on the coarsest graph
//!    (several randomized restarts, best cut kept).
//! 3. **Uncoarsening + refinement** — the partition is projected back level
//!    by level and improved with Fiduccia–Mattheyses passes (gain-directed
//!    boundary moves with hill-climbing and rollback to the best prefix),
//!    under a vertex-balance constraint.
//!
//! The balance constraint matches the paper's requirement that splits be
//! "approximately equal-sized": each side must weigh at most
//! `(1 + epsilon) / 2` of the total vertex weight.

use std::collections::BinaryHeap;

use propeller_types::FileId;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::AcgGraph;

/// Tuning knobs for [`bisect`].
///
/// # Examples
///
/// ```
/// use propeller_acg::PartitionConfig;
///
/// let cfg = PartitionConfig { seed: 7, ..PartitionConfig::default() };
/// assert!(cfg.epsilon > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Allowed imbalance: each side may weigh up to `(1 + epsilon) * W / 2`.
    pub epsilon: f64,
    /// Seed for matching order and initial-partition restarts.
    pub seed: u64,
    /// Stop coarsening once the graph is at most this many vertices.
    pub coarsen_target: usize,
    /// Number of greedy-growing restarts for the initial partition.
    pub init_tries: usize,
    /// Maximum Fiduccia–Mattheyses passes per level.
    pub max_fm_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            epsilon: 0.1,
            seed: 0x9e3779b9,
            coarsen_target: 64,
            init_tries: 8,
            max_fm_passes: 4,
        }
    }
}

/// The result of a 2-way partition.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// Files assigned to the first half.
    pub left: Vec<FileId>,
    /// Files assigned to the second half.
    pub right: Vec<FileId>,
    /// Total undirected weight of edges crossing the cut.
    pub cut_weight: u64,
    /// Total undirected edge weight of the graph (for cut percentage).
    pub total_weight: u64,
}

impl Bisection {
    /// Cut weight as a fraction of total edge weight (Table II's
    /// "percentage of cut"). Zero for edgeless graphs.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            self.cut_weight as f64 / self.total_weight as f64
        }
    }

    /// Size of the larger side divided by the ideal half, e.g. `1.08` means
    /// the larger side is 8% over a perfect split.
    pub fn imbalance(&self) -> f64 {
        let (l, r) = (self.left.len(), self.right.len());
        let total = l + r;
        if total == 0 {
            return 1.0;
        }
        l.max(r) as f64 / (total as f64 / 2.0)
    }
}

/// A graph level in the multilevel hierarchy: undirected, with weighted
/// vertices (number of underlying files) and weighted edges.
struct Level {
    vwgt: Vec<u64>,
    adj: Vec<Vec<(u32, u64)>>,
    total_vwgt: u64,
}

impl Level {
    fn n(&self) -> usize {
        self.vwgt.len()
    }
}

/// Bisects `graph` into two balanced halves with small cut weight.
///
/// Works on the *undirected* view of the ACG (causality direction does not
/// matter for co-location; only co-access weight does). Handles empty,
/// singleton and disconnected graphs.
///
/// # Examples
///
/// ```
/// use propeller_acg::{bisect, AcgGraph, PartitionConfig};
/// use propeller_types::FileId;
///
/// // Two 3-cliques joined by one light edge: the light edge is the cut.
/// let mut g = AcgGraph::new();
/// let f = FileId::new;
/// for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
///     g.add_edge(f(a), f(b), 10);
///     g.add_edge(f(a + 10), f(b + 10), 10);
/// }
/// g.add_edge(f(2), f(10), 1);
///
/// let bisection = bisect(&g, &PartitionConfig::default());
/// assert_eq!(bisection.cut_weight, 1);
/// assert_eq!(bisection.left.len(), 3);
/// assert_eq!(bisection.right.len(), 3);
/// ```
pub fn bisect(graph: &AcgGraph, cfg: &PartitionConfig) -> Bisection {
    let n = graph.vertex_count();
    if n == 0 {
        return Bisection { left: vec![], right: vec![], cut_weight: 0, total_weight: 0 };
    }
    if n == 1 {
        return Bisection {
            left: vec![graph.vertices().next().expect("one vertex")],
            right: vec![],
            cut_weight: 0,
            total_weight: 0,
        };
    }

    let adj = graph.undirected_adjacency();
    let total_weight: u64 = adj
        .iter()
        .enumerate()
        .map(|(i, nbrs)| {
            nbrs.iter().filter(|&&(d, _)| (d as usize) > i).map(|&(_, w)| w).sum::<u64>()
        })
        .sum();
    let finest = Level { vwgt: vec![1; n], adj, total_vwgt: n as u64 };

    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- Coarsening phase ---------------------------------------------
    let mut levels: Vec<Level> = vec![finest];
    let mut maps: Vec<Vec<u32>> = Vec::new(); // maps[i]: level i vertex -> level i+1 vertex
    while levels.last().expect("non-empty").n() > cfg.coarsen_target {
        let cur = levels.last().expect("non-empty");
        let (coarse, map) = coarsen_once(cur, &mut rng);
        // Stop when matching no longer shrinks the graph meaningfully.
        if coarse.n() as f64 > cur.n() as f64 * 0.95 {
            break;
        }
        levels.push(coarse);
        maps.push(map);
    }

    // --- Initial partition on the coarsest level -----------------------
    let coarsest = levels.last().expect("non-empty");
    let mut side = initial_partition(coarsest, cfg, &mut rng);
    fm_refine(coarsest, &mut side, cfg);

    // --- Uncoarsening + refinement -------------------------------------
    for li in (0..maps.len()).rev() {
        let fine = &levels[li];
        let map = &maps[li];
        let mut fine_side = vec![false; fine.n()];
        for v in 0..fine.n() {
            fine_side[v] = side[map[v] as usize];
        }
        side = fine_side;
        fm_refine(fine, &mut side, cfg);
    }

    // --- Project back to file ids ---------------------------------------
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (ix, &s) in side.iter().enumerate() {
        let file = graph.file_at(ix as u32);
        if s {
            right.push(file);
        } else {
            left.push(file);
        }
    }
    left.sort_unstable();
    right.sort_unstable();
    let cut_weight = cut_of(&levels[0], &side);
    Bisection { left, right, cut_weight, total_weight }
}

/// One round of heavy-edge matching. Returns the coarse graph and the
/// fine→coarse vertex map.
fn coarsen_once(level: &Level, rng: &mut StdRng) -> (Level, Vec<u32>) {
    let n = level.n();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(u32, u64)> = None;
        for &(u, w) in &level.adj[v as usize] {
            if mate[u as usize] == UNMATCHED && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }

    // Assign coarse indices (pair gets one index; singletons keep one).
    let mut map = vec![UNMATCHED; n];
    let mut next: u32 = 0;
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }

    // Build the coarse level.
    let cn = next as usize;
    let mut vwgt = vec![0u64; cn];
    for v in 0..n {
        vwgt[map[v] as usize] += level.vwgt[v];
    }
    let mut adj_maps: Vec<std::collections::HashMap<u32, u64>> =
        vec![std::collections::HashMap::new(); cn];
    for v in 0..n {
        let cv = map[v];
        for &(u, w) in &level.adj[v] {
            let cu = map[u as usize];
            if cu != cv {
                *adj_maps[cv as usize].entry(cu).or_insert(0) += w;
            }
        }
    }
    let adj: Vec<Vec<(u32, u64)>> = adj_maps
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, u64)> = m.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect();
    (Level { vwgt, adj, total_vwgt: level.total_vwgt }, map)
}

/// Greedy graph growing with restarts: grow a region from a random seed,
/// always absorbing the frontier vertex with the strongest connection to
/// the region, until the region holds half the vertex weight.
fn initial_partition(level: &Level, cfg: &PartitionConfig, rng: &mut StdRng) -> Vec<bool> {
    let n = level.n();
    let half = level.total_vwgt / 2;
    let mut best: Option<(u64, Vec<bool>)> = None;

    for _ in 0..cfg.init_tries.max(1) {
        let mut side = vec![true; n]; // true = right; we grow the left region
        let mut region_weight = 0u64;
        let mut conn: Vec<u64> = vec![0; n]; // connectivity to region
        let mut in_frontier = vec![false; n];
        let mut frontier: BinaryHeap<(u64, u32)> = BinaryHeap::new();

        let start = rng.gen_range(0..n) as u32;
        frontier.push((0, start));
        in_frontier[start as usize] = true;

        while region_weight < half {
            let v = match frontier.pop() {
                Some((c, v)) => {
                    if c != conn[v as usize] || !side[v as usize] {
                        continue; // stale heap entry
                    }
                    v
                }
                None => {
                    // Disconnected: jump to any vertex still on the right.
                    match (0..n as u32).find(|&v| side[v as usize] && !in_frontier[v as usize]) {
                        Some(v) => v,
                        None => break,
                    }
                }
            };
            side[v as usize] = false;
            region_weight += level.vwgt[v as usize];
            for &(u, w) in &level.adj[v as usize] {
                if side[u as usize] {
                    conn[u as usize] += w;
                    in_frontier[u as usize] = true;
                    frontier.push((conn[u as usize], u));
                }
            }
        }

        let cut = cut_of(level, &side);
        if best.as_ref().map(|(bc, _)| cut < *bc).unwrap_or(true) {
            best = Some((cut, side));
        }
    }
    best.expect("at least one try").1
}

/// Total weight of edges crossing the cut.
fn cut_of(level: &Level, side: &[bool]) -> u64 {
    let mut cut = 0u64;
    for v in 0..level.n() {
        for &(u, w) in &level.adj[v] {
            if (u as usize) > v && side[v] != side[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Moves vertices off an over-ceiling side (best cut-gain first) until both
/// sides respect the balance ceiling. Runs unconditionally — the greedy
/// initial partition can overshoot when coarse vertices are heavy, and
/// plain FM would refuse the restoring moves as "worsening".
fn balance_repair(level: &Level, side: &mut [bool], ceiling: u64) {
    let n = level.n();
    let mut weight = [0u64; 2];
    for v in 0..n {
        weight[side[v] as usize] += level.vwgt[v];
    }
    let mut moved = vec![false; n];
    while weight[0].max(weight[1]) > ceiling {
        let heavy = weight[1] > weight[0];
        // Best cut-gain among movable heavy-side vertices; ties prefer the
        // lighter vertex so the repair does not overshoot the other way.
        let mut best: Option<(i64, std::cmp::Reverse<u64>, usize)> = None;
        for v in 0..n {
            if moved[v] || side[v] != heavy {
                continue;
            }
            let mut g = 0i64;
            for &(u, w) in &level.adj[v] {
                if side[v] != side[u as usize] {
                    g += w as i64;
                } else {
                    g -= w as i64;
                }
            }
            let key = (g, std::cmp::Reverse(level.vwgt[v]), v);
            if best.map(|b| key > b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let Some((_, _, v)) = best else { break };
        let w = level.vwgt[v];
        moved[v] = true;
        side[v] = !side[v];
        weight[heavy as usize] -= w;
        weight[!heavy as usize] += w;
    }
}

/// Fiduccia–Mattheyses refinement: gain-directed single-vertex moves with
/// hill-climbing and rollback to the best prefix, respecting the balance
/// ceiling `(1 + epsilon) * W / 2` per side.
fn fm_refine(level: &Level, side: &mut [bool], cfg: &PartitionConfig) {
    let n = level.n();
    if n < 2 {
        return;
    }
    let ceiling = ((1.0 + cfg.epsilon) * level.total_vwgt as f64 / 2.0).ceil() as u64;
    balance_repair(level, side, ceiling);

    for _pass in 0..cfg.max_fm_passes {
        let mut weight = [0u64; 2];
        for v in 0..n {
            weight[side[v] as usize] += level.vwgt[v];
        }

        // gain[v] = (external weight) - (internal weight)
        let mut gain: Vec<i64> = vec![0; n];
        for v in 0..n {
            let mut g = 0i64;
            for &(u, w) in &level.adj[v] {
                if side[v] != side[u as usize] {
                    g += w as i64;
                } else {
                    g -= w as i64;
                }
            }
            gain[v] = g;
        }

        let mut heap: BinaryHeap<(i64, u32)> =
            (0..n as u32).map(|v| (gain[v as usize], v)).collect();
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut cum: i64 = 0;
        let mut best_cum: i64 = 0;
        let mut best_len: usize = 0;

        while let Some((g, v)) = heap.pop() {
            let v = v as usize;
            if locked[v] || g != gain[v] {
                continue; // stale entry
            }
            let from = side[v] as usize;
            let to = 1 - from;
            // Balance: the destination side must stay under the ceiling and
            // the source side must not be emptied.
            if weight[to] + level.vwgt[v] > ceiling || weight[from] == level.vwgt[v] {
                locked[v] = true;
                continue;
            }
            // Move v.
            locked[v] = true;
            side[v] = !side[v];
            weight[from] -= level.vwgt[v];
            weight[to] += level.vwgt[v];
            cum += g;
            moves.push(v as u32);
            if cum > best_cum {
                best_cum = cum;
                best_len = moves.len();
            }
            // Update neighbor gains.
            for &(u, w) in &level.adj[v] {
                let u = u as usize;
                if locked[u] {
                    continue;
                }
                // v switched sides: if u is now on v's side, the edge became
                // internal (gain decreases by 2w); otherwise external
                // (gain increases by 2w).
                if side[u] == side[v] {
                    gain[u] -= 2 * w as i64;
                } else {
                    gain[u] += 2 * w as i64;
                }
                heap.push((gain[u], u as u32));
            }
        }

        // Roll back moves beyond the best prefix.
        for &v in moves.iter().skip(best_len).rev() {
            side[v as usize] = !side[v as usize];
        }
        if best_cum <= 0 {
            break; // no improvement this pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u64) -> FileId {
        FileId::new(i)
    }

    fn cfg(seed: u64) -> PartitionConfig {
        PartitionConfig { seed, ..PartitionConfig::default() }
    }

    /// Two cliques of size `k` with internal weight `heavy`, joined by a
    /// single `light` bridge.
    fn two_cliques(k: u64, heavy: u64, light: u64) -> AcgGraph {
        let mut g = AcgGraph::new();
        for base in [0, 100] {
            for a in 0..k {
                for b in (a + 1)..k {
                    g.add_edge(f(base + a), f(base + b), heavy);
                }
            }
        }
        g.add_edge(f(k - 1), f(100), light);
        g
    }

    #[test]
    fn empty_graph() {
        let b = bisect(&AcgGraph::new(), &cfg(1));
        assert!(b.left.is_empty() && b.right.is_empty());
        assert_eq!(b.cut_weight, 0);
    }

    #[test]
    fn singleton_graph() {
        let mut g = AcgGraph::new();
        g.add_vertex(f(1));
        let b = bisect(&g, &cfg(1));
        assert_eq!(b.left, vec![f(1)]);
        assert!(b.right.is_empty());
    }

    #[test]
    fn two_vertices_split_evenly() {
        let mut g = AcgGraph::new();
        g.add_edge(f(1), f(2), 5);
        let b = bisect(&g, &cfg(1));
        assert_eq!(b.left.len(), 1);
        assert_eq!(b.right.len(), 1);
        assert_eq!(b.cut_weight, 5);
    }

    #[test]
    fn finds_the_obvious_min_cut() {
        let g = two_cliques(5, 10, 1);
        let b = bisect(&g, &cfg(42));
        assert_eq!(b.cut_weight, 1, "should cut only the bridge");
        assert_eq!(b.left.len(), 5);
        assert_eq!(b.right.len(), 5);
        // The cliques must not be mixed.
        let left_set: std::collections::HashSet<u64> = b.left.iter().map(|x| x.raw()).collect();
        assert!(
            left_set.iter().all(|&x| x < 100) || left_set.iter().all(|&x| x >= 100),
            "clique split across sides: {left_set:?}"
        );
    }

    #[test]
    fn respects_balance_on_a_path() {
        // A path graph: best balanced cut is one edge in the middle.
        let mut g = AcgGraph::new();
        for i in 0..20 {
            g.add_edge(f(i), f(i + 1), 1);
        }
        let b = bisect(&g, &cfg(3));
        assert_eq!(b.cut_weight, 1);
        assert!(b.imbalance() <= 1.15, "imbalance {}", b.imbalance());
    }

    #[test]
    fn disconnected_graph_splits_by_component() {
        let mut g = AcgGraph::new();
        for i in 0..10 {
            g.add_edge(f(i), f((i + 1) % 10), 5); // ring A
            g.add_edge(f(100 + i), f(100 + (i + 1) % 10), 5); // ring B
        }
        let b = bisect(&g, &cfg(7));
        assert_eq!(b.cut_weight, 0, "disconnected halves need no cut");
        assert_eq!(b.left.len(), 10);
        assert_eq!(b.right.len(), 10);
    }

    #[test]
    fn partition_covers_all_vertices_exactly_once() {
        let g = two_cliques(8, 3, 2);
        let b = bisect(&g, &cfg(9));
        let mut all: Vec<FileId> = b.left.iter().chain(&b.right).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), g.vertex_count());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_cliques(6, 4, 1);
        let b1 = bisect(&g, &cfg(5));
        let b2 = bisect(&g, &cfg(5));
        assert_eq!(b1.left, b2.left);
        assert_eq!(b1.cut_weight, b2.cut_weight);
    }

    #[test]
    fn larger_random_graph_is_balanced_with_modest_cut() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = AcgGraph::new();
        // Two noisy communities of 200 vertices each.
        for c in 0..2u64 {
            let base = c * 1000;
            for _ in 0..2000 {
                let a = rng.gen_range(0..200);
                let b = rng.gen_range(0..200);
                if a != b {
                    g.add_edge(f(base + a), f(base + b), rng.gen_range(1..5));
                }
            }
        }
        // Sparse cross-community noise.
        for _ in 0..40 {
            let a = rng.gen_range(0..200);
            let b = rng.gen_range(0..200);
            g.add_edge(f(a), f(1000 + b), 1);
        }
        let b = bisect(&g, &cfg(13));
        assert!(b.imbalance() <= 1.11, "imbalance {}", b.imbalance());
        assert!(b.cut_fraction() < 0.1, "cut fraction too high: {}", b.cut_fraction());
    }

    #[test]
    fn cut_weight_matches_manual_recount() {
        let g = two_cliques(4, 2, 3);
        let b = bisect(&g, &cfg(17));
        let left: std::collections::HashSet<FileId> = b.left.iter().copied().collect();
        let mut manual = 0u64;
        for (s, d, w) in g.edges() {
            if left.contains(&s) != left.contains(&d) {
                manual += w;
            }
        }
        assert_eq!(b.cut_weight, manual);
    }

    #[test]
    fn star_graph_does_not_empty_a_side() {
        let mut g = AcgGraph::new();
        for i in 1..=12 {
            g.add_edge(f(0), f(i), 100);
        }
        let b = bisect(&g, &cfg(23));
        assert!(!b.left.is_empty() && !b.right.is_empty());
        // 13 vertices: the balance ceiling is ceil(1.1 * 13 / 2) = 8 per side.
        assert!(b.left.len().max(b.right.len()) <= 8, "{b:?}");
    }
}
