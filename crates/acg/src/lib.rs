//! Access-Causality Graph (ACG) substrate.
//!
//! The ACG is the paper's central data structure (§III): a weighted directed
//! graph whose vertices are files and whose edge `fA → fB` carries the
//! number of times a process accessed `fA` before writing `fB`. Propeller
//! partitions its file index along this graph:
//!
//! 1. **Connected components** of the ACG are natural partitions — the paper
//!    observes that different applications (and even sub-projects of one
//!    application) produce disconnected components, so grouping by component
//!    eliminates inter-partition index traffic ([`AcgGraph::components`]).
//! 2. Small components are **clustered** into one partition to avoid index
//!    fragmentation ([`cluster_components`]).
//! 3. A component that outgrows the partition threshold (paper: 50 000
//!    files) is **bisected** into two balanced halves with minimal cut
//!    weight by a from-scratch multilevel partitioner in the METIS family
//!    ([`bisect`]): heavy-edge-matching coarsening, greedy-growing initial
//!    partition, Fiduccia–Mattheyses boundary refinement during
//!    uncoarsening.
//!
//! # Examples
//!
//! ```
//! use propeller_acg::AcgGraph;
//! use propeller_types::FileId;
//!
//! let mut g = AcgGraph::new();
//! g.add_edge(FileId::new(1), FileId::new(2), 5); // f1 -> f2, weight 5
//! g.add_edge(FileId::new(3), FileId::new(4), 1); // separate component
//!
//! assert_eq!(g.vertex_count(), 4);
//! assert_eq!(g.components().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustering;
mod components;
mod graph;
mod partition;

pub use clustering::{cluster_components, ClusteringConfig};
pub use components::ComponentSet;
pub use graph::AcgGraph;
pub use partition::{bisect, Bisection, PartitionConfig};
