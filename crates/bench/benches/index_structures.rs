//! Criterion micro-benchmarks for the index substrate: B+-tree, hash
//! index and K-D tree inserts and queries at several scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use propeller_index::{BPlusTree, HashIndex, KdTree};
use propeller_types::FileId;

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    for &n in &[1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BPlusTree::new();
                for i in 0..n {
                    t.insert(i.wrapping_mul(0x9E37_79B9) % n, i);
                }
                t
            })
        });
        let tree: BPlusTree<u64, u64> = (0..n).map(|i| (i, i)).collect();
        group.bench_with_input(BenchmarkId::new("point_get", n), &n, |b, &n| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 7919) % n;
                tree.get(&k)
            })
        });
        group.bench_with_input(BenchmarkId::new("range_100", n), &n, |b, &n| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 7919) % n;
                tree.range(k..k + 100).count()
            })
        });
    }
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for &n in &[1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut h = HashIndex::new();
                for i in 0..n {
                    h.insert(i, i);
                }
                h
            })
        });
        let table: HashIndex<u64, u64> = (0..n).map(|i| (i, i)).collect();
        group.bench_with_input(BenchmarkId::new("probe", n), &n, |b, &n| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 7919) % n;
                table.get(&k)
            })
        });
    }
    group.finish();
}

fn bench_kdtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree");
    for &n in &[1_000u64, 50_000] {
        let points: Vec<(Vec<f64>, FileId)> =
            (0..n).map(|i| (vec![(i % 1024) as f64, (i / 1024) as f64], FileId::new(i))).collect();
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, _| {
            b.iter(|| KdTree::bulk_load(2, points.clone()))
        });
        let tree = KdTree::bulk_load(2, points.clone());
        group.bench_with_input(BenchmarkId::new("box_query", n), &n, |b, _| {
            b.iter(|| tree.range(&[100.0, 0.0], &[200.0, 10.0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_btree, bench_hash, bench_kdtree);
criterion_main!(benches);
