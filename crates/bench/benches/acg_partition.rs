//! Criterion benchmarks for the ACG substrate: edge ingestion, connected
//! components and the multilevel bisector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use propeller_acg::{bisect, AcgGraph, PartitionConfig};
use propeller_types::FileId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Two noisy communities, `n` vertices each, sparse cross edges.
fn community_graph(n: u64, seed: u64) -> AcgGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = AcgGraph::new();
    for c in 0..2u64 {
        let base = c * 10 * n;
        for _ in 0..n * 8 {
            let a = base + rng.gen_range(0..n);
            let b = base + rng.gen_range(0..n);
            if a != b {
                g.add_edge(FileId::new(a), FileId::new(b), rng.gen_range(1..4));
            }
        }
    }
    for _ in 0..n / 20 {
        let a = rng.gen_range(0..n);
        let b = 10 * n + rng.gen_range(0..n);
        g.add_edge(FileId::new(a), FileId::new(b), 1);
    }
    g
}

fn bench_ingest(c: &mut Criterion) {
    c.bench_function("acg/ingest_10k_edges", |b| {
        b.iter(|| {
            let mut g = AcgGraph::new();
            for i in 0..10_000u64 {
                g.add_edge(FileId::new(i % 997), FileId::new((i * 7) % 997), 1);
            }
            g
        })
    });
}

fn bench_components(c: &mut Criterion) {
    let g = community_graph(2_000, 5);
    c.bench_function("acg/components_4k_vertices", |b| b.iter(|| g.components()));
}

fn bench_bisect(c: &mut Criterion) {
    let mut group = c.benchmark_group("acg/bisect");
    group.sample_size(10);
    for &n in &[500u64, 2_000, 8_000] {
        let g = community_graph(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n * 2), &n, |b, _| {
            b.iter(|| bisect(&g, &PartitionConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_components, bench_bisect);
criterion_main!(benches);
