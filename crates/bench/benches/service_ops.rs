//! Criterion benchmarks for end-to-end service operations: inline index
//! updates, commit-then-search, and the centralized baseline's same ops.

use criterion::{criterion_group, criterion_main, Criterion};
use propeller_baselines::CentralDb;
use propeller_core::{FileRecord, Propeller, PropellerConfig};
use propeller_query::Query;
use propeller_types::{FileId, InodeAttrs, Timestamp};

fn record(file: u64, size: u64) -> FileRecord {
    FileRecord::new(FileId::new(file), InodeAttrs::builder().size(size).build())
}

fn seeded_service(files: u64) -> Propeller {
    let mut p = Propeller::new(PropellerConfig::default());
    p.index_batch((0..files).map(|i| record(i, i)).collect()).unwrap();
    p
}

fn bench_propeller(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/propeller");
    group.bench_function("index_file", |b| {
        let mut p = seeded_service(10_000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.index_file(record(i % 10_000, i)).unwrap();
        })
    });
    group.bench_function("search_size_range", |b| {
        let mut p = seeded_service(10_000);
        let q = Query::parse("size>5000", Timestamp::EPOCH).unwrap();
        b.iter(|| p.search(&q.predicate).unwrap())
    });
    group.bench_function("update_then_search", |b| {
        let mut p = seeded_service(10_000);
        let q = Query::parse("size>5000", Timestamp::EPOCH).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.index_file(record(i % 10_000, i)).unwrap();
            p.search(&q.predicate).unwrap()
        })
    });
    group.finish();
}

fn bench_centraldb(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/centraldb");
    group.bench_function("upsert", |b| {
        let mut db = CentralDb::new();
        for i in 0..10_000u64 {
            db.upsert(record(i, i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.upsert(record(i % 10_000, i));
        })
    });
    group.bench_function("query_size_range", |b| {
        let mut db = CentralDb::new();
        for i in 0..10_000u64 {
            db.upsert(record(i, i));
        }
        let q = Query::parse("size>5000", Timestamp::EPOCH).unwrap();
        b.iter(|| db.query(&q.predicate))
    });
    group.finish();
}

criterion_group!(benches, bench_propeller, bench_centraldb);
criterion_main!(benches);
