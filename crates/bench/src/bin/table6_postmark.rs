//! Table VI: PostMark (50 000 files, 200 subdirectories) across the six
//! file-system cost profiles: Ext4, Btrfs, PTFS, NTFS-3g, ZFS-fuse and
//! Propeller's FUSE client with inline indexing.

use propeller_bench::table;
use propeller_storage::{FsCostProfile, FsModel};
use propeller_workloads::{PostMark, PostMarkConfig};

fn main() {
    table::banner("Table VI: PostMark results");
    let runner = PostMark::new(PostMarkConfig::default());
    table::header(&["file system", "creates/s", "read MB/s", "write MB/s", "elapsed (s)"]);
    let mut ptfs_elapsed = 0.0;
    let mut propeller_elapsed = 0.0;
    for profile in FsCostProfile::table_six() {
        let report = runner.run(FsModel::new(profile));
        if report.fs == "PTFS" {
            ptfs_elapsed = report.elapsed.as_secs_f64();
        }
        if report.fs == "Propeller" {
            propeller_elapsed = report.elapsed.as_secs_f64();
        }
        table::row(&[
            report.fs.to_string(),
            format!("{:.0}", report.creates_per_sec),
            format!("{:.2}", report.read_bytes_per_sec / 1e6),
            format!("{:.2}", report.write_bytes_per_sec / 1e6),
            format!("{:.2}", report.elapsed.as_secs_f64()),
        ]);
    }
    println!(
        "\npropeller / PTFS slowdown: {:.2}x (paper: 2.37x — the price of inline indexing)",
        propeller_elapsed / ptfs_elapsed
    );
    println!(
        "paper reference creates/s: Ext4 16747, Btrfs 5582, PTFS 6289, NTFS-3g 2392, \
         ZFS-fuse 2093, Propeller 2644"
    );
}
