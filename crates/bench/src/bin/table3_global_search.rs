//! Table III: global file-search latency on synthetically scaled
//! namespaces (10–50 M files), Propeller vs the centralized baseline.
//! Query #1: `size > 1g & mtime < 1day`; query #2: `keyword:firefox &
//! mtime < 1week`.

use propeller_bench::{table, ClusterSearchModel};
use propeller_storage::{Disk, DiskProfile, PageIoModel};
use propeller_types::Duration;

/// Propeller global search: one in-RAM probe per group plus minor faults
/// once the index working set exceeds RAM (single node).
fn propeller_query(total_files: u64, probe: Duration) -> Duration {
    let model = ClusterSearchModel { warm_probe_per_group: probe, ..ClusterSearchModel::default() };
    model.warm(total_files, 1)
}

/// Centralized baseline: secondary-index descent + scan, then one
/// clustered-row fetch per matched row (the classic secondary-index
/// penalty). Matched rows scale with the dataset.
fn centraldb_query(total_files: u64, selectivity: f64, per_row: Duration) -> Duration {
    let model = PageIoModel::default();
    let mut disk = Disk::new(DiskProfile::hdd_7200());
    let matched = (total_files as f64 * selectivity) as u64;
    let scan = model.scan_cost(total_files, matched, &mut disk);
    scan + per_row * matched
}

fn main() {
    table::banner("Table III: global file search (seconds)");
    table::header(&["files (M)", "PP #1", "PP #2", "DB #1", "DB #2", "speedup #1", "speedup #2"]);
    for millions in [10u64, 20, 30, 40, 50] {
        let n = millions * 1_000_000;
        let pp1 = propeller_query(n, Duration::from_micros(10)).as_secs_f64();
        let pp2 = propeller_query(n, Duration::from_micros(40)).as_secs_f64();
        let db1 = centraldb_query(n, 2e-4, Duration::from_micros(2_500)).as_secs_f64();
        let db2 = centraldb_query(n, 2.1e-4, Duration::from_micros(2_500)).as_secs_f64();
        table::row(&[
            format!("{millions}"),
            table::secs(pp1),
            table::secs(pp2),
            table::secs(db1),
            table::secs(db2),
            table::ratio(db1 / pp1),
            table::ratio(db2 / pp2),
        ]);
    }
    println!(
        "\npaper reference at 50M: PP 1.64 s / 4.00 s vs MySQL 32.5 s / 34.2 s \
         (9.0x and 26.3x average speedups); both grow with dataset size, \
         Propeller much more slowly"
    );
}
