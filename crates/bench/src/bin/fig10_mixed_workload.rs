//! Figure 10: mixed workload on a 50M-file dataset — 10 000 updates to one
//! 1000-file group with a search every 1 024 updates and a background
//! commit every 500. Propeller's per-request latency is *measured* on the
//! real single-node service; the centralized baseline's is modeled against
//! the global 50M-entry index (building 50M real rows is not feasible, and
//! the paper's point is structural).

use std::time::Instant;

use propeller_bench::{scales, table};
use propeller_core::{FileRecord, Propeller, PropellerConfig};
use propeller_query::Query;
use propeller_storage::{Disk, DiskProfile, PageIoModel};
use propeller_types::{FileId, InodeAttrs, Timestamp};
use propeller_workloads::{MixedOp, MixedWorkload};

fn main() {
    table::banner("Figure 10: mixed workload (50M files), per-request latency");

    // --- Propeller: real execution over one 1000-file group -------------
    let mut service = Propeller::new(PropellerConfig::default());
    let group: Vec<FileId> = (0..scales::GROUP_FILES).map(FileId::new).collect();
    service.bind_group(&group).unwrap();
    service
        .index_batch(
            group
                .iter()
                .map(|f| FileRecord::new(*f, InodeAttrs::builder().size(f.raw()).build()))
                .collect(),
        )
        .unwrap();
    let query = Query::parse("size>100", Timestamp::EPOCH).unwrap();

    let mut pp_update_lat = Vec::new();
    let mut pp_search_lat = Vec::new();
    let mut version = 0u64;
    for op in MixedWorkload::paper_default(scales::GROUP_FILES) {
        match op {
            MixedOp::Update(file) => {
                version += 1;
                let rec =
                    FileRecord::new(file, InodeAttrs::builder().size(file.raw() + version).build());
                let start = Instant::now();
                service.index_file(rec).unwrap();
                pp_update_lat.push(start.elapsed().as_secs_f64() * 1e6);
            }
            MixedOp::Search => {
                let start = Instant::now();
                let _ = service.search(&query.predicate).unwrap();
                pp_search_lat.push(start.elapsed().as_secs_f64() * 1e6);
            }
            MixedOp::BackgroundCommit => {
                let _ = service.maintenance();
            }
        }
    }

    // --- Centralized baseline: modeled per-update latency ----------------
    let model = PageIoModel::default();
    let mut disk = Disk::new(DiskProfile::hdd_7200());
    let mut db_update_lat = Vec::new();
    for _ in 0..10_000u64 {
        let t = model.update_run_cost(scales::M50, 1, &mut disk);
        db_update_lat.push(t.as_secs_f64() * 1e6);
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let pp_avg = avg(&pp_update_lat);
    let db_avg = avg(&db_update_lat);

    table::header(&["series", "requests", "avg latency (us)", "p99 (us)"]);
    let p99 = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(f64::total_cmp);
        s[(s.len() as f64 * 0.99) as usize]
    };
    table::row(&[
        "propeller updates".into(),
        format!("{}", pp_update_lat.len()),
        format!("{pp_avg:.1}"),
        format!("{:.1}", p99(&pp_update_lat)),
    ]);
    table::row(&[
        "propeller searches".into(),
        format!("{}", pp_search_lat.len()),
        format!("{:.1}", avg(&pp_search_lat)),
        format!("{:.1}", p99(&pp_search_lat)),
    ]);
    table::row(&[
        "centralized updates".into(),
        format!("{}", db_update_lat.len()),
        format!("{db_avg:.1}"),
        format!("{:.1}", p99(&db_update_lat)),
    ]);
    println!("\nre-indexing latency ratio (centralized / propeller): {:.0}x", db_avg / pp_avg);
    println!(
        "paper reference: Propeller 15.6 us vs MySQL 3980.9 us average \
         re-indexing latency (250x); Propeller's commit-before-search penalty \
         stays small because the index scale is the group, not the dataset"
    );
}
