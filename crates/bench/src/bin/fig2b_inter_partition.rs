//! Figure 2(b): impact of inter-partition accesses. 50 000 updates striped
//! across 1–32 partitions of a fixed group size (1k–8k files each).

use propeller_bench::table;
use propeller_storage::{Disk, DiskProfile, GroupIndexModel};

fn main() {
    table::banner("Figure 2(b): updated-partition count vs execution time (log scale)");
    let updates = 50_000u64;
    let group_sizes = [1_000u64, 2_000, 4_000, 8_000];
    let partition_counts = [1usize, 2, 4, 8, 16, 32];
    let model = GroupIndexModel::default();

    let cols: Vec<String> = std::iter::once("# partitions".to_string())
        .chain(group_sizes.iter().map(|s| format!("{}k files (s)", s / 1000)))
        .collect();
    table::header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    for &parts in &partition_counts {
        let mut cells = vec![format!("{parts}")];
        for &size in &group_sizes {
            let mut disk = Disk::new(DiskProfile::hdd_7200());
            let t = model.striped_update_run(parts, size, updates, &mut disk, 7 ^ size);
            cells.push(table::secs(t.as_secs_f64()));
        }
        table::row(&cells);
    }
    println!(
        "\npaper shape: accesses confined to few partitions stay cheap; spreading \
         the same 50k updates over many partitions costs orders of magnitude more \
         (Fig. 2b spans 10^1..10^5 s on its log axis)"
    );
}
