//! Table IV / Figure 9: cluster file-search latency ("files larger than
//! 16 MB") on 50M- and 100M-file datasets as the cluster scales from 1 to
//! 8 Index Nodes, cold (first query) and warm (average of 10 repeats).

use propeller_bench::{scales, table, ClusterSearchModel};

fn main() {
    table::banner("Table IV / Figure 9: cluster search latency (seconds)");
    let model = ClusterSearchModel::default();
    table::header(&["index nodes", "100M cold", "50M cold", "100M warm", "50M warm"]);
    for nodes in [1u64, 2, 3, 4, 5, 6, 7, 8] {
        table::row(&[
            format!("{nodes}"),
            table::secs(model.cold(scales::M100, nodes).as_secs_f64()),
            table::secs(model.cold(scales::M50, nodes).as_secs_f64()),
            format!("{:.4}", model.warm(scales::M100, nodes).as_secs_f64()),
            format!("{:.4}", model.warm(scales::M50, nodes).as_secs_f64()),
        ]);
    }
    println!(
        "\npaper reference (Table IV): 100M cold 1497->175 s, 50M cold 698->55.8 s, \
         100M warm 1.61->0.030 s, 50M warm 0.180->0.016 s from 1 to 8 nodes; \
         warm speedups are super-linear while per-node index shares exceed RAM"
    );
}
