//! Top-k search: the perf wins of the streaming execution pipeline.
//!
//! Three experiments over a 200k-file namespace:
//!
//! 1. **Service-level top-k pushdown** — unlimited vs `limit k` searches
//!    through the full service (the PR 1 result, now riding the streaming
//!    pipeline and node-level parallelism).
//! 2. **Streaming vs materializing** — one ACG group, sorted top-k:
//!    the streaming executor (ordered B+-tree scan, zero-allocation
//!    predicate, early termination) against the materializing reference
//!    path (full candidate superset + bounded heap). The acceptance bar
//!    is ≥2x at `limit <= 100`.
//! 3. **Sequential vs parallel multi-ACG node** — one Index Node hosting
//!    64 ACGs serving the same search with a worker pool of 1 vs N.
//!
//! Writes the measured numbers to `BENCH_topk.json` (the checked-in perf
//! trajectory snapshot).
//!
//! Run with: `cargo run --release -p propeller-bench --bin topk_search`

use std::fmt::Write as _;
use std::time::Instant;

use propeller_bench::table;
use propeller_cluster::{IndexNode, IndexNodeConfig, Request, Response};
use propeller_core::{FileRecord, Propeller, PropellerConfig, SearchRequest, SortKey};
use propeller_index::{AcgIndexGroup, GroupConfig, IndexOp};
use propeller_query::{execute_request, execute_request_reference};
use propeller_types::{AcgId, AttrName, FileId, InodeAttrs, NodeId, Timestamp};

const FILES: u64 = 200_000;
const MATCHING: &str = "size>1m"; // matches ~98% of the namespace
const NODE_ACGS: u64 = 64;

fn timed<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    // One warm-up, then the average of 5 runs.
    let _ = f();
    let start = Instant::now();
    let mut out = None;
    for _ in 0..5 {
        out = Some(f());
    }
    (out.expect("ran"), start.elapsed().as_secs_f64() / 5.0 * 1e3)
}

fn main() {
    let mut json = String::from("{\n");

    service_level_pushdown(&mut json);
    streaming_vs_materializing(&mut json);
    sequential_vs_parallel_node(&mut json);

    let _ = writeln!(json, "  \"files\": {FILES}\n}}");
    std::fs::write("BENCH_topk.json", &json).expect("write BENCH_topk.json");
    println!("\nsnapshot written to BENCH_topk.json");
}

/// Experiment 1: the whole service, unlimited vs top-k.
fn service_level_pushdown(json: &mut String) {
    table::banner("Top-k pushdown: bounded-heap search vs full materialization (service)");
    let mut service = Propeller::new(PropellerConfig {
        group_capacity: 2_000, // 100 ACGs
        ..PropellerConfig::default()
    });
    service
        .index_batch((0..FILES).map(|i| FileRecord::new(FileId::new(i), attrs(i))).collect())
        .unwrap();

    let full_req = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let (full, full_ms) = timed(|| service.search_with(&full_req).unwrap());
    table::header(&["variant", "hits", "retained peak", "skipped", "avg ms"]);
    table::row(&[
        "unlimited".into(),
        format!("{}", full.hits.len()),
        format!("{}", full.stats.retained_peak),
        format!("{}", full.stats.candidates_skipped),
        format!("{full_ms:.2}"),
    ]);
    let _ = writeln!(json, "  \"service_unlimited_ms\": {full_ms:.3},");

    for k in [10usize, 100, 1_000] {
        let req = full_req.clone().with_limit(k);
        let (resp, ms) = timed(|| service.search_with(&req).unwrap());
        // The acceptance bound: no ACG retains more than O(k) hits past
        // the candidate filter.
        assert!(
            resp.stats.retained_peak <= k,
            "retained_peak {} exceeds k {k}",
            resp.stats.retained_peak
        );
        assert_eq!(resp.file_ids(), &full.file_ids()[..k.min(full.hits.len())]);
        table::row(&[
            format!("top-{k}"),
            format!("{}", resp.hits.len()),
            format!("{}", resp.stats.retained_peak),
            format!("{}", resp.stats.candidates_skipped),
            format!("{ms:.2}"),
        ]);
        let _ = writeln!(json, "  \"service_top{k}_ms\": {ms:.3},");
    }
    println!(
        "\nunlimited retains every matching hit at once; top-k retains at most k per ACG\n\
         and (sorted by an indexed attribute) stops each ACG scan after k admitted hits"
    );
}

/// Experiment 2: one ACG, streaming pipeline vs the materializing
/// reference path.
fn streaming_vs_materializing(json: &mut String) {
    table::banner("Streaming (ordered scan, early termination) vs materializing (one ACG)");
    let mut group = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
    for i in 0..FILES {
        group
            .enqueue(IndexOp::Upsert(FileRecord::new(FileId::new(i), attrs(i))), Timestamp::EPOCH)
            .unwrap();
    }
    group.commit(Timestamp::EPOCH).unwrap();

    table::header(&["limit", "materializing", "streaming", "speedup", "scanned", "skipped"]);
    for k in [10usize, 100, 1_000] {
        let req = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
            .unwrap()
            .with_limit(k)
            .sorted_by(SortKey::Descending(AttrName::Size));
        let ((ref_hits, _), ref_ms) = timed(|| execute_request_reference(&group, &req));
        let ((hits, stats), ms) = timed(|| execute_request(&group, &req));
        assert_eq!(hits, ref_hits, "streaming must match the reference exactly");
        assert_eq!(stats.early_terminated, 1, "sorted top-k must terminate early");
        let speedup = ref_ms / ms;
        table::row(&[
            format!("{k}"),
            format!("{ref_ms:.2} ms"),
            format!("{ms:.3} ms"),
            table::ratio(speedup),
            format!("{}", stats.candidates_scanned),
            format!("{}", stats.candidates_skipped),
        ]);
        let _ = writeln!(json, "  \"one_acg_top{k}_materializing_ms\": {ref_ms:.3},");
        let _ = writeln!(json, "  \"one_acg_top{k}_streaming_ms\": {ms:.3},");
        let _ = writeln!(json, "  \"one_acg_top{k}_speedup\": {speedup:.2},");
        if k <= 100 {
            assert!(
                speedup >= 2.0,
                "acceptance: streaming sorted top-{k} must be >=2x over materializing, \
                 got {speedup:.2}x"
            );
        }
    }
    println!(
        "\nthe materializing path walks every matching candidate through the heap;\n\
         the ordered scan admits k hits off the B+-tree and stops"
    );
}

/// Experiment 3: one Index Node, 64 ACGs, sweeping the worker-pool width.
/// On a multi-core host the per-search latency scales near-linearly up to
/// the core count; results are asserted identical to sequential execution
/// at every width. `cores` in the snapshot records what the host offered.
fn sequential_vs_parallel_node(json: &mut String) {
    table::banner("Intra-node parallel ACG fan-out: worker-pool width sweep (64 ACGs)");
    let cores = IndexNodeConfig::default().search_parallelism;
    println!("host parallelism: {cores}");
    let build = |parallelism: usize| {
        let mut node = IndexNode::new(
            NodeId::new(1),
            IndexNodeConfig { search_parallelism: parallelism, ..IndexNodeConfig::default() },
        );
        let per_acg = FILES / NODE_ACGS;
        for acg in 0..NODE_ACGS {
            node.handle(Request::IndexBatch {
                acg: AcgId::new(acg + 1),
                ops: (0..per_acg)
                    .map(|i| {
                        let id = acg * per_acg + i;
                        IndexOp::Upsert(FileRecord::new(FileId::new(id), attrs(id)))
                    })
                    .collect(),
                now: Timestamp::EPOCH,
            });
        }
        node
    };
    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH).unwrap().with_limit(100);
    let run = |node: &mut IndexNode| match node.handle(Request::Search {
        acgs: (1..=NODE_ACGS).map(AcgId::new).collect(),
        request: request.clone(),
        now: Timestamp::EPOCH,
    }) {
        Response::SearchHits { hits, stats } => (hits, stats),
        other => panic!("{other:?}"),
    };
    table::header(&["pool", "avg ms", "speedup"]);
    let mut baseline_ms = 0.0;
    let mut baseline_hits = Vec::new();
    for pool in [1usize, 2, 4, 8] {
        let mut node = build(pool);
        let ((hits, _), ms) = timed(|| run(&mut node));
        if pool == 1 {
            baseline_ms = ms;
            baseline_hits = hits;
        } else {
            assert_eq!(hits, baseline_hits, "pool {pool} must be result-identical");
        }
        table::row(&[format!("{pool}"), format!("{ms:.2}"), table::ratio(baseline_ms / ms)]);
        let _ = writeln!(json, "  \"node_64acg_pool{pool}_ms\": {ms:.3},");
    }
    let _ = writeln!(json, "  \"node_64acg_host_cores\": {cores},");
}

/// Deterministic attribute synthesis for the benchmark namespace.
fn attrs(i: u64) -> InodeAttrs {
    InodeAttrs::builder()
        .size((i % 4096) << 20)
        .mtime(Timestamp::from_secs(i % 100_000))
        .uid((i % 16) as u32)
        .build()
}
