//! Top-k search: the perf win of pushing `limit` into plan execution.
//!
//! An unlimited search materializes every matching hit per ACG before the
//! client sees anything; a `SearchRequest { limit: k }` keeps a bounded
//! heap per ACG (O(k) retained, witnessed by `SearchStats::retained_peak`)
//! and ships only per-node top-k lists through the fan-out merge.
//!
//! Run with: `cargo run --release -p propeller-bench --bin topk_search`

use std::time::Instant;

use propeller_bench::table;
use propeller_core::{FileRecord, Propeller, PropellerConfig, SearchRequest, SortKey};
use propeller_types::{AttrName, FileId, InodeAttrs, Timestamp};

const FILES: u64 = 200_000;
const MATCHING: &str = "size>1m"; // matches ~98% of the namespace

fn timed<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    // One warm-up, then the average of 5 runs.
    let _ = f();
    let start = Instant::now();
    let mut out = None;
    for _ in 0..5 {
        out = Some(f());
    }
    (out.expect("ran"), start.elapsed().as_secs_f64() / 5.0 * 1e3)
}

fn main() {
    table::banner("Top-k pushdown: bounded-heap search vs full materialization");
    let mut service = Propeller::new(PropellerConfig {
        group_capacity: 2_000, // 100 ACGs
        ..PropellerConfig::default()
    });
    service
        .index_batch((0..FILES).map(|i| FileRecord::new(FileId::new(i), attrs(i))).collect())
        .unwrap();

    let full_req = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let (full, full_ms) = timed(|| service.search_with(&full_req).unwrap());
    table::header(&["variant", "hits", "retained peak", "avg ms"]);
    table::row(&[
        "unlimited".into(),
        format!("{}", full.hits.len()),
        format!("{}", full.stats.retained_peak),
        format!("{full_ms:.2}"),
    ]);

    for k in [10usize, 100, 1_000] {
        let req = full_req.clone().with_limit(k);
        let (resp, ms) = timed(|| service.search_with(&req).unwrap());
        // The acceptance bound: no ACG retains more than O(k) hits past
        // the candidate filter.
        assert!(
            resp.stats.retained_peak <= k,
            "retained_peak {} exceeds k {k}",
            resp.stats.retained_peak
        );
        assert_eq!(resp.file_ids(), &full.file_ids()[..k.min(full.hits.len())]);
        table::row(&[
            format!("top-{k}"),
            format!("{}", resp.hits.len()),
            format!("{}", resp.stats.retained_peak),
            format!("{ms:.2}"),
        ]);
    }
    println!(
        "\nunlimited retains every matching hit at once; top-k retains at most k \
         per ACG regardless of how many files match"
    );
}

/// Deterministic attribute synthesis for the benchmark namespace.
fn attrs(i: u64) -> propeller_types::InodeAttrs {
    InodeAttrs::builder()
        .size((i % 4096) << 20)
        .mtime(Timestamp::from_secs(i % 100_000))
        .uid((i % 16) as u32)
        .build()
}
