//! Top-k search: the perf wins of the streaming execution pipeline.
//!
//! Eleven experiments over a 200k-file namespace:
//!
//! 1. **Service-level top-k pushdown** — unlimited vs `limit k` searches
//!    through the full service (the PR 1 result, now riding the streaming
//!    pipeline and node-level parallelism).
//! 2. **Streaming vs materializing** — one ACG group, sorted top-k:
//!    the streaming executor (ordered B+-tree scan, zero-allocation
//!    predicate, early termination) against the materializing reference
//!    path (full candidate superset + bounded heap). The acceptance bar
//!    is ≥2x at `limit <= 100`.
//! 3. **Sequential vs parallel multi-ACG node** — one Index Node hosting
//!    64 ACGs serving the same search through its persistent worker pool
//!    at widths 1 vs N.
//! 4. **Node-global k cutoff** — one Index Node, 16 and 64 ACGs, sorted
//!    top-100: one k-way merge across the per-ACG ordered streams (stop
//!    at k total admitted hits) against the per-ACG cutoff (k hits per
//!    ACG, merge afterwards). The witness is `candidates_scanned` far
//!    below `acgs × k`, with `merge_skipped` counting what the merge
//!    never pulled.
//! 5. **Cross-node streaming cutoff** — a full cluster with the hot range
//!    concentrated on one node, sorted top-100: the streamed session
//!    protocol (client merge pulls per-node pages, cold nodes stop at ~one
//!    page) against the one-shot k-hits-per-node exchange, sweeping node
//!    count × page size. The witness is `hits_shipped` scaling sub-linearly
//!    with node count (one-shot ships exactly `k × nodes`), with
//!    `node_hits_unsent` counting what the cold nodes never computed.
//! 6. **Crash recovery** — an update-heavy 200k-op WAL history over one
//!    ACG: cold recovery by full-WAL replay (every op re-decoded and
//!    re-applied) against snapshot-anchored recovery (newest checkpoint
//!    restored, only the WAL suffix past its LSN replayed). The acceptance
//!    bar is snapshot + suffix strictly beating the full replay.
//! 7. **Ranked content top-k** — a Zipf-skewed keyword corpus on one ACG,
//!    BM25-ranked `contains` / `contains-any` searches: the inverted-index
//!    postings merge with WAND max-score pruning against the brute-force
//!    scoring scan. The acceptance bar is ≥10x at `limit <= 100` with
//!    `wand_blocks_skipped` / `wand_docs_pruned` witnessing the pruning,
//!    and hits bit-identical to the oracle.
//! 8. **Replicated tail latency** — a straggler Index Node vs R=1, R=2
//!    unhedged, and R=2 with hedged opens: the hedge caps the p99 near
//!    the latency budget.
//! 9. **Ingest interference** — sorted top-k latency on one Index Node,
//!    idle vs under max-rate `IndexBatch` commits: searches execute on
//!    the worker pool against pinned epochs while the actor keeps
//!    committing, so the saturated p99 must stay within 2x the idle p99,
//!    with `epoch_pins` / `commits_during_search` / the off-thread
//!    snapshot counter witnessing the mechanism.
//! 10. **Master recovery** — checkpoint + WAL-suffix replay of the
//!     Master's metadata state machine, restart-to-first-search, across
//!     placement-map sizes.
//! 11. **Observability overhead** — the same one-shot search with node
//!     metrics off, metrics on, and metrics on + 1% trace sampling. The
//!     acceptance bar: sampled-tracing p50 within 3% of the disabled
//!     baseline in the full run (10% in CI smoke, where the gate runs on
//!     every push) — the registry and span plumbing must be effectively
//!     free on the hot path.
//!
//! Writes the measured numbers to `BENCH_topk.json` (the checked-in perf
//! trajectory snapshot).
//!
//! Run with: `cargo run --release -p propeller-bench --bin topk_search`.
//! Pass `--smoke` for the CI smoke mode: a small namespace, correctness
//! assertions kept, perf assertions and the snapshot write skipped — it
//! exists so the merge/pool paths cannot rot uncompiled or unexercised.

use std::fmt::Write as _;
use std::time::Instant;

use propeller_bench::table;
use propeller_cluster::{Cluster, ClusterConfig, IndexNode, IndexNodeConfig, Request, Response};
use propeller_core::{FileRecord, Propeller, PropellerConfig, SearchRequest, SortKey};
use propeller_index::{AcgIndexGroup, GroupConfig, IndexOp, Wal};
use propeller_query::{execute_request, execute_request_reference, merge_sorted_hits};
use propeller_types::{AcgId, AttrName, FileId, InodeAttrs, NodeId, Timestamp};
use propeller_workloads::ZipfTerms;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MATCHING: &str = "size>1m"; // matches ~98% of the namespace
const NODE_ACGS: u64 = 64;

/// Benchmark scale: full (snapshot) or smoke (CI).
struct Cfg {
    files: u64,
    smoke: bool,
}

fn timed<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    // One warm-up, then the average of 5 runs.
    let _ = f();
    let start = Instant::now();
    let mut out = None;
    for _ in 0..5 {
        out = Some(f());
    }
    (out.expect("ran"), start.elapsed().as_secs_f64() / 5.0 * 1e3)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = Cfg { files: if smoke { 8_000 } else { 200_000 }, smoke };
    let mut json = String::from("{\n");

    let tail_only = std::env::args().any(|a| a == "--tail-only");
    if !tail_only {
        service_level_pushdown(&mut json, &cfg);
        streaming_vs_materializing(&mut json, &cfg);
        sequential_vs_parallel_node(&mut json, &cfg);
        node_global_cutoff(&mut json, &cfg);
        cross_node_streaming(&mut json, &cfg);
        recovery_replay(&mut json, &cfg);
        ranked_content_search(&mut json, &cfg);
        ingest_interference(&mut json, &cfg);
        master_recovery(&mut json, &cfg);
    }
    replicated_tail_latency(&mut json, &cfg);
    if tail_only {
        return;
    }
    observability_overhead(&mut json, &cfg);

    let _ = writeln!(json, "  \"files\": {}\n}}", cfg.files);
    if cfg.smoke {
        println!("\nsmoke mode: snapshot not written");
    } else {
        std::fs::write("BENCH_topk.json", &json).expect("write BENCH_topk.json");
        println!("\nsnapshot written to BENCH_topk.json");
    }
}

/// Experiment 1: the whole service, unlimited vs top-k.
fn service_level_pushdown(json: &mut String, cfg: &Cfg) {
    table::banner("Top-k pushdown: bounded-heap search vs full materialization (service)");
    let mut service = Propeller::new(PropellerConfig {
        group_capacity: (cfg.files / 100).max(100) as usize, // ~100 ACGs
        ..PropellerConfig::default()
    });
    service
        .index_batch((0..cfg.files).map(|i| FileRecord::new(FileId::new(i), attrs(i))).collect())
        .unwrap();

    let full_req = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .sorted_by(SortKey::Descending(AttrName::Size));
    let (full, full_ms) = timed(|| service.search_with(&full_req).unwrap());
    table::header(&["variant", "hits", "retained peak", "skipped", "avg ms"]);
    table::row(&[
        "unlimited".into(),
        format!("{}", full.hits.len()),
        format!("{}", full.stats.retained_peak),
        format!("{}", full.stats.candidates_skipped),
        format!("{full_ms:.2}"),
    ]);
    let _ = writeln!(json, "  \"service_unlimited_ms\": {full_ms:.3},");

    for k in [10usize, 100, 1_000] {
        let req = full_req.clone().with_limit(k);
        let (resp, ms) = timed(|| service.search_with(&req).unwrap());
        // The acceptance bound: no ACG retains more than O(k) hits past
        // the candidate filter.
        assert!(
            resp.stats.retained_peak <= k,
            "retained_peak {} exceeds k {k}",
            resp.stats.retained_peak
        );
        assert_eq!(resp.file_ids(), &full.file_ids()[..k.min(full.hits.len())]);
        table::row(&[
            format!("top-{k}"),
            format!("{}", resp.hits.len()),
            format!("{}", resp.stats.retained_peak),
            format!("{}", resp.stats.candidates_skipped),
            format!("{ms:.2}"),
        ]);
        let _ = writeln!(json, "  \"service_top{k}_ms\": {ms:.3},");
    }
    println!(
        "\nunlimited retains every matching hit at once; top-k retains at most k per node\n\
         and (sorted by an indexed attribute) stops after k admitted hits node-wide"
    );
}

/// Experiment 2: one ACG, streaming pipeline vs the materializing
/// reference path.
fn streaming_vs_materializing(json: &mut String, cfg: &Cfg) {
    table::banner("Streaming (ordered scan, early termination) vs materializing (one ACG)");
    let mut group = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
    for i in 0..cfg.files {
        group
            .enqueue(IndexOp::Upsert(FileRecord::new(FileId::new(i), attrs(i))), Timestamp::EPOCH)
            .unwrap();
    }
    group.commit(Timestamp::EPOCH).unwrap();

    table::header(&["limit", "materializing", "streaming", "speedup", "scanned", "skipped"]);
    for k in [10usize, 100, 1_000] {
        let req = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
            .unwrap()
            .with_limit(k)
            .sorted_by(SortKey::Descending(AttrName::Size));
        let ((ref_hits, _), ref_ms) = timed(|| execute_request_reference(&group, &req));
        let ((hits, stats), ms) = timed(|| execute_request(&group, &req));
        assert_eq!(hits, ref_hits, "streaming must match the reference exactly");
        assert_eq!(stats.early_terminated, 1, "sorted top-k must terminate early");
        let speedup = ref_ms / ms;
        table::row(&[
            format!("{k}"),
            format!("{ref_ms:.2} ms"),
            format!("{ms:.3} ms"),
            table::ratio(speedup),
            format!("{}", stats.candidates_scanned),
            format!("{}", stats.candidates_skipped),
        ]);
        let _ = writeln!(json, "  \"one_acg_top{k}_materializing_ms\": {ref_ms:.3},");
        let _ = writeln!(json, "  \"one_acg_top{k}_streaming_ms\": {ms:.3},");
        let _ = writeln!(json, "  \"one_acg_top{k}_speedup\": {speedup:.2},");
        if k <= 100 && !cfg.smoke {
            assert!(
                speedup >= 2.0,
                "acceptance: streaming sorted top-{k} must be >=2x over materializing, \
                 got {speedup:.2}x"
            );
        }
    }
    println!(
        "\nthe materializing path walks every matching candidate through the heap;\n\
         the ordered scan admits k hits off the B+-tree and stops"
    );
}

/// Experiment 3: one Index Node, 64 ACGs, sweeping the persistent
/// worker-pool width. On a multi-core host the per-search latency scales
/// near-linearly up to the core count; results are asserted identical to
/// sequential execution at every width. `cores` in the snapshot records
/// what the host offered.
fn sequential_vs_parallel_node(json: &mut String, cfg: &Cfg) {
    table::banner("Intra-node parallel ACG fan-out: persistent-pool width sweep (64 ACGs)");
    let cores = IndexNodeConfig::default().search_parallelism;
    println!("host parallelism: {cores}");
    // An unsorted predicate-only request keeps every ACG on the classic
    // (pool-executed) path, so this sweep measures the pool itself.
    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH).unwrap().with_limit(100);
    let run = |node: &mut IndexNode| match node.handle(Request::Search {
        acgs: (1..=NODE_ACGS).map(AcgId::new).collect(),
        request: request.clone(),
        now: Timestamp::EPOCH,
        ctx: propeller_obs::TraceContext::NONE,
    }) {
        Response::SearchHits { hits, stats } => (hits, stats),
        other => panic!("{other:?}"),
    };
    table::header(&["pool", "avg ms", "speedup"]);
    let mut baseline_ms = 0.0;
    let mut baseline_hits = Vec::new();
    for pool in [1usize, 2, 4, 8] {
        let mut node = build_node(cfg.files, NODE_ACGS, pool);
        let ((hits, _), ms) = timed(|| run(&mut node));
        if pool == 1 {
            baseline_ms = ms;
            baseline_hits = hits;
        } else {
            assert_eq!(hits, baseline_hits, "pool {pool} must be result-identical");
        }
        table::row(&[format!("{pool}"), format!("{ms:.2}"), table::ratio(baseline_ms / ms)]);
        let _ = writeln!(json, "  \"node_64acg_pool{pool}_ms\": {ms:.3},");
    }
    let _ = writeln!(json, "  \"node_64acg_host_cores\": {cores},");
}

/// Experiment 4: the node-global k cutoff. One Index Node serving a
/// sorted top-100 over 16 / 64 ACGs: per-ACG cutoff (k admitted hits
/// *per group*, merged afterwards — the pre-PR-3 execution) vs the
/// node-global merge (k admitted hits *total*, pulled lazily off the
/// per-ACG ordered streams).
fn node_global_cutoff(json: &mut String, cfg: &Cfg) {
    table::banner("Node-global top-k cutoff: one k-way merge across ACG ordered streams");
    const K: usize = 100;
    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .with_limit(K)
        .sorted_by(SortKey::Descending(AttrName::Size));
    table::header(&[
        "acgs",
        "per-ACG cutoff",
        "global cutoff",
        "speedup",
        "scanned per-ACG",
        "scanned global",
        "merge skipped",
    ]);
    for acgs in [16u64, 64] {
        // Standalone groups for the per-ACG reference (identical data).
        let per_acg = cfg.files / acgs;
        let groups: Vec<AcgIndexGroup> = (0..acgs)
            .map(|acg| {
                let mut g = AcgIndexGroup::new(AcgId::new(acg + 1), GroupConfig::default());
                for i in 0..per_acg {
                    let id = acg * per_acg + i;
                    g.enqueue(
                        IndexOp::Upsert(FileRecord::new(FileId::new(id), attrs(id))),
                        Timestamp::EPOCH,
                    )
                    .unwrap();
                }
                g.commit(Timestamp::EPOCH).unwrap();
                g
            })
            .collect();
        let ((ref_hits, ref_scanned), ref_ms) = timed(|| {
            let mut lists = Vec::with_capacity(groups.len());
            let mut scanned = 0usize;
            for g in &groups {
                let (hits, stats) = execute_request(g, &request);
                scanned += stats.candidates_scanned;
                lists.push(hits);
            }
            (merge_sorted_hits(lists, &request.sort, request.limit), scanned)
        });

        let mut node = build_node(cfg.files, acgs, IndexNodeConfig::default().search_parallelism);
        let ((hits, stats), ms) = timed(|| {
            match node.handle(Request::Search {
                acgs: (1..=acgs).map(AcgId::new).collect(),
                request: request.clone(),
                now: Timestamp::EPOCH,
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchHits { hits, stats } => (hits, stats),
                other => panic!("{other:?}"),
            }
        });
        assert_eq!(hits, ref_hits, "global cutoff must be result-identical to per-ACG + merge");
        // The acceptance witness: scanned well below acgs * k, with the
        // merge-level skips recorded.
        assert!(
            stats.candidates_scanned < ref_scanned,
            "global cutoff must scan less than the per-ACG cutoff \
             ({} vs {ref_scanned})",
            stats.candidates_scanned
        );
        assert!(stats.merge_skipped > 0, "merge-level skips must be witnessed");
        if !cfg.smoke {
            assert!(
                stats.candidates_scanned < (acgs as usize) * K / 4,
                "acceptance: sorted top-{K} over {acgs} ACGs must scan well below acgs*k, \
                 scanned {}",
                stats.candidates_scanned
            );
        }
        table::row(&[
            format!("{acgs}"),
            format!("{ref_ms:.3} ms"),
            format!("{ms:.3} ms"),
            table::ratio(ref_ms / ms),
            format!("{ref_scanned}"),
            format!("{}", stats.candidates_scanned),
            format!("{}", stats.merge_skipped),
        ]);
        let _ = writeln!(json, "  \"node_{acgs}acg_peracg_cutoff_ms\": {ref_ms:.3},");
        let _ = writeln!(json, "  \"node_{acgs}acg_global_cutoff_ms\": {ms:.3},");
        let _ = writeln!(json, "  \"node_{acgs}acg_peracg_scanned\": {ref_scanned},");
        let _ =
            writeln!(json, "  \"node_{acgs}acg_global_scanned\": {},", stats.candidates_scanned);
        let _ = writeln!(json, "  \"node_{acgs}acg_merge_skipped\": {},", stats.merge_skipped);
    }
    println!(
        "\nper-ACG: every group walks its tree until k residual matches accumulate;\n\
         global: one merge admits k hits total and the streams stop where they stand"
    );
}

/// Experiment 5: the cross-node streaming cutoff. A cluster whose hot
/// range (the namespace's largest files) is concentrated on one node
/// serves a sorted top-100: the one-shot exchange ships `k` hits from
/// *every* node for the client merge to discard, while the streamed
/// session protocol pulls each node page by page and leaves the cold
/// nodes at ~one page. Sweeps node count at the default page size, then
/// page size at a fixed node count.
fn cross_node_streaming(json: &mut String, cfg: &Cfg) {
    table::banner("Cross-node streaming top-k: per-node session pages vs one-shot k-per-node");
    const K: usize = 100;
    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .with_limit(K)
        .sorted_by(SortKey::Descending(AttrName::Size));
    // Sizes fall with file id and the Master fills ACGs in arrival order,
    // so the global top-k lands on whichever node got the first ACG — the
    // worst case for a k-per-node exchange, the best for a streamed merge.
    let build = |nodes: usize| {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: nodes,
            group_capacity: (cfg.files as usize / nodes / 4).max(K),
            ..ClusterConfig::default()
        });
        let mut client = cluster.client();
        client
            .index_files(
                (0..cfg.files)
                    .map(|i| {
                        // Sizes fall monotonically (the hot-range layout);
                        // mtimes are scrambled for realistic spread. (The
                        // K-D monotone-insert degeneration this once
                        // dodged is fixed — inserts scapegoat-rebalance —
                        // but varied data keeps the bench honest.)
                        let scrambled = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
                        FileRecord::new(
                            FileId::new(i),
                            InodeAttrs::builder()
                                .size((cfg.files - i) << 20)
                                .mtime(Timestamp::from_secs(scrambled))
                                .build(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
        (cluster, client)
    };

    table::header(&[
        "nodes",
        "one-shot ms",
        "streamed ms",
        "shipped one-shot",
        "shipped streamed",
        "pages",
        "unsent",
    ]);
    let node_counts: &[usize] = if cfg.smoke { &[3] } else { &[2, 4, 8] };
    for &nodes in node_counts {
        let (cluster, client) = build(nodes);
        let (one_shot, oneshot_ms) = timed(|| client.search_one_shot(&request).unwrap());
        let (streamed, streamed_ms) = timed(|| client.search_streamed(&request).unwrap());
        assert_eq!(streamed.hits, one_shot.hits, "streamed must be result-identical");
        assert_eq!(
            one_shot.stats.hits_shipped,
            K * nodes,
            "the one-shot exchange ships k hits from every node"
        );
        // The acceptance witness: the streamed wire traffic must scale
        // sub-linearly with node count — cold nodes stop at ~one page.
        assert!(
            streamed.stats.hits_shipped < one_shot.stats.hits_shipped,
            "streaming must ship fewer hits ({} vs {})",
            streamed.stats.hits_shipped,
            one_shot.stats.hits_shipped
        );
        assert!(streamed.stats.node_hits_unsent > 0, "unshipped entitlement witnessed");
        table::row(&[
            format!("{nodes}"),
            format!("{oneshot_ms:.3}"),
            format!("{streamed_ms:.3}"),
            format!("{}", one_shot.stats.hits_shipped),
            format!("{}", streamed.stats.hits_shipped),
            format!("{}", streamed.stats.pages_pulled),
            format!("{}", streamed.stats.node_hits_unsent),
        ]);
        let _ = writeln!(json, "  \"cluster_{nodes}node_top100_oneshot_ms\": {oneshot_ms:.3},");
        let _ = writeln!(json, "  \"cluster_{nodes}node_top100_streamed_ms\": {streamed_ms:.3},");
        let _ = writeln!(
            json,
            "  \"cluster_{nodes}node_top100_oneshot_hits_shipped\": {},",
            one_shot.stats.hits_shipped
        );
        let _ = writeln!(
            json,
            "  \"cluster_{nodes}node_top100_streamed_hits_shipped\": {},",
            streamed.stats.hits_shipped
        );
        let _ = writeln!(
            json,
            "  \"cluster_{nodes}node_top100_streamed_pages_pulled\": {},",
            streamed.stats.pages_pulled
        );
        let _ = writeln!(
            json,
            "  \"cluster_{nodes}node_top100_streamed_hits_unsent\": {},",
            streamed.stats.node_hits_unsent
        );
        cluster.shutdown();
    }

    // Page-size sweep at a fixed node count: smaller pages tighten the
    // cutoff (cold nodes ship less) at the cost of more round trips.
    let sweep_nodes = if cfg.smoke { 3 } else { 4 };
    let (cluster, client) = build(sweep_nodes);
    let baseline = client.search_one_shot(&request).unwrap();
    table::header(&["page", "shipped", "pages pulled", "unsent"]);
    let pages: &[usize] = if cfg.smoke { &[16] } else { &[16, 64, 256] };
    for &page in pages {
        let paged_client = cluster.client().with_search_page_size(page);
        let streamed = paged_client.search_streamed(&request).unwrap();
        assert_eq!(streamed.hits, baseline.hits, "page {page} must be result-identical");
        table::row(&[
            format!("{page}"),
            format!("{}", streamed.stats.hits_shipped),
            format!("{}", streamed.stats.pages_pulled),
            format!("{}", streamed.stats.node_hits_unsent),
        ]);
        let _ = writeln!(
            json,
            "  \"cluster_{sweep_nodes}node_page{page}_hits_shipped\": {},",
            streamed.stats.hits_shipped
        );
        let _ = writeln!(
            json,
            "  \"cluster_{sweep_nodes}node_page{page}_pages_pulled\": {},",
            streamed.stats.pages_pulled
        );
    }
    // Adaptive sizing: open at the smallest fixed page (tight cutoff for
    // searches that stop early), double per accepted page toward the
    // largest (few round trips for deep walks) — the sweep's two ends at
    // once, without picking a fixed point on the curve per workload.
    let (lo, hi) = if cfg.smoke { (8, 64) } else { (16, 256) };
    let adaptive_client = cluster.client().with_adaptive_paging(lo, hi);
    let streamed = adaptive_client.search_streamed(&request).unwrap();
    assert_eq!(streamed.hits, baseline.hits, "adaptive paging must be result-identical");
    table::row(&[
        format!("{lo}..{hi}"),
        format!("{}", streamed.stats.hits_shipped),
        format!("{}", streamed.stats.pages_pulled),
        format!("{}", streamed.stats.node_hits_unsent),
    ]);
    let _ = writeln!(
        json,
        "  \"cluster_{sweep_nodes}node_adaptive{lo}to{hi}_hits_shipped\": {},",
        streamed.stats.hits_shipped
    );
    let _ = writeln!(
        json,
        "  \"cluster_{sweep_nodes}node_adaptive{lo}to{hi}_pages_pulled\": {},",
        streamed.stats.pages_pulled
    );
    cluster.shutdown();
    println!(
        "\none-shot: every node computes and ships its full k for the client merge to discard;\n\
         streamed: the client merge pulls per-node pages and cold nodes stop at ~one page"
    );
}

/// Experiment 6: crash recovery — cold full-WAL replay vs snapshot-anchored
/// recovery (newest checkpoint + WAL-suffix replay). The history is
/// update-heavy (every file re-upserted ~5x), so the full replay re-applies
/// every op while the snapshot holds only the net record set — the shape a
/// long-lived Index Node's log actually has.
fn recovery_replay(json: &mut String, cfg: &Cfg) {
    table::banner("Crash recovery: cold full-WAL replay vs snapshot + WAL-suffix");
    let ops = cfg.files; // >= 100k-op history in full mode (acceptance bar)
    let distinct = (ops / 5).max(1);
    let suffix_ops = (ops / 50).max(1); // ~2% of the history lands past the snapshot
    let dir = std::env::temp_dir().join(format!("propeller-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let acg = AcgId::new(1);
    let wal_path = dir.join("acg-1.wal");
    let full_cfg =
        || GroupConfig { wal: Wal::open(&wal_path).expect("open wal"), ..GroupConfig::default() };
    let snap_cfg = || GroupConfig {
        wal: Wal::open(&wal_path).expect("open wal"),
        snapshot_dir: Some(dir.clone()),
        ..GroupConfig::default()
    };

    // Write the history: group-committed batches, committed as they land
    // (the file-backed WAL retains every frame until a snapshot covers it).
    {
        let mut g = AcgIndexGroup::new(acg, full_cfg());
        let mut batch = Vec::with_capacity(1_000);
        for i in 0..ops {
            batch.push(IndexOp::Upsert(FileRecord::new(FileId::new(i % distinct), attrs(i))));
            if batch.len() == 1_000 {
                g.enqueue_batch(std::mem::take(&mut batch), Timestamp::EPOCH).expect("enqueue");
                g.commit(Timestamp::EPOCH).expect("commit");
            }
        }
        if !batch.is_empty() {
            g.enqueue_batch(batch, Timestamp::EPOCH).expect("enqueue");
            g.commit(Timestamp::EPOCH).expect("commit");
        }
        g.sync_wal().expect("sync");
    }

    // Cold recovery: the whole history replays op by op.
    let (cold, cold_ms) = timed(|| AcgIndexGroup::recover(acg, full_cfg()).expect("cold recovery"));
    assert_eq!(cold.0.len() as u64, distinct, "replay nets out the re-upserts");
    assert_eq!(cold.1 as u64, ops, "full replay touches every op");

    // Checkpoint the recovered state twice (the second snapshot is what
    // truncates the log to the keep-2 retention window), then land a small
    // post-snapshot suffix and crash.
    {
        let (mut g, _) = AcgIndexGroup::recover(acg, snap_cfg()).expect("recover for snapshot");
        g.snapshot().expect("first snapshot").expect("snapshot dir set");
        g.enqueue(IndexOp::Upsert(FileRecord::new(FileId::new(0), attrs(1))), Timestamp::EPOCH)
            .expect("enqueue");
        g.commit(Timestamp::EPOCH).expect("commit");
        g.snapshot().expect("second snapshot").expect("snapshot dir set");
        for i in 0..suffix_ops {
            g.enqueue(
                IndexOp::Upsert(FileRecord::new(FileId::new(i % distinct), attrs(ops + i))),
                Timestamp::EPOCH,
            )
            .expect("enqueue suffix");
        }
        g.commit(Timestamp::EPOCH).expect("commit suffix");
        g.sync_wal().expect("sync");
    }

    // Snapshot-anchored recovery: newest checkpoint + the ~2% suffix.
    let (snap, snap_ms) =
        timed(|| AcgIndexGroup::recover_with_report(acg, snap_cfg()).expect("snapshot recovery"));
    assert_eq!(snap.0.len() as u64, distinct, "snapshot + suffix reassembles the full state");
    assert!(snap.1.snapshot_lsn.is_some(), "recovery must anchor to the snapshot");
    assert_eq!(snap.1.replayed_ops as u64, suffix_ops, "only the suffix replays");

    table::header(&["recovery", "ops replayed", "records", "avg ms"]);
    table::row(&[
        "full-WAL replay".into(),
        format!("{ops}"),
        format!("{}", cold.0.len()),
        format!("{cold_ms:.2}"),
    ]);
    table::row(&[
        "snapshot + suffix".into(),
        format!("{}", snap.1.replayed_ops),
        format!("{}", snap.0.len()),
        format!("{snap_ms:.2}"),
    ]);
    let _ = writeln!(json, "  \"recovery_history_ops\": {ops},");
    let _ = writeln!(json, "  \"recovery_full_replay_ms\": {cold_ms:.3},");
    let _ = writeln!(json, "  \"recovery_snapshot_suffix_ms\": {snap_ms:.3},");
    let _ = writeln!(json, "  \"recovery_speedup\": {:.2},", cold_ms / snap_ms);
    if !cfg.smoke {
        assert!(
            snap_ms < cold_ms,
            "acceptance: snapshot + suffix ({snap_ms:.2} ms) must beat full replay \
             ({cold_ms:.2} ms) on a {ops}-op history"
        );
    }
    println!(
        "\nfull replay decodes and re-applies every logged op; the snapshot restores the\n\
         net record set in one pass and replays only the post-checkpoint suffix"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Experiment 10: Master recovery. The control plane is a WAL-backed
/// state machine checkpointed every few dozen ops; recovery loads the
/// newest checkpoint and replays the O(delta) suffix. Measures how
/// recovery time grows with metadata size (placements + ACG catalogue),
/// and the end-to-end restart-to-first-correct-search latency of a
/// durable cluster.
fn master_recovery(json: &mut String, cfg: &Cfg) {
    table::banner("Master recovery: checkpoint + WAL-suffix replay, restart-to-first-search");
    use propeller_cluster::{MasterConfig, MasterNode};
    let nodes: Vec<NodeId> = (1..=4).map(NodeId::new).collect();
    const MASTER_GROUP_CAPACITY: u64 = 100;
    table::header(&["placements", "acgs", "avg recovery ms"]);
    for (label, n) in [("small", cfg.files / 20), ("medium", cfg.files / 5), ("large", cfg.files)] {
        let dir = std::env::temp_dir()
            .join(format!("propeller-bench-master-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || MasterConfig {
            group_capacity: MASTER_GROUP_CAPACITY as usize,
            data_dir: Some(dir.clone()),
            ..MasterConfig::default()
        };
        // Build the metadata: every resolve batch logs its placements and
        // ACG creations, checkpointing as the op count crosses the
        // snapshot trigger. Then crash.
        {
            let mut m = MasterNode::open(nodes.clone(), config()).expect("open master");
            let mut start = 0u64;
            while start < n {
                let end = (start + 1_000).min(n);
                let files: Vec<FileId> = (start..end).map(FileId::new).collect();
                match m.handle(Request::ResolveFiles {
                    files,
                    hints_since: 0,
                    ctx: propeller_obs::TraceContext::NONE,
                }) {
                    Response::Resolved { .. } => {}
                    other => panic!("{other:?}"),
                }
                start = end;
            }
        }
        let (acgs, ms) = timed(|| {
            let mut m = MasterNode::open(nodes.clone(), config()).expect("recover master");
            match m.handle(Request::LocateAcgs) {
                Response::Located(rows) => rows.len() as u64,
                other => panic!("{other:?}"),
            }
        });
        assert_eq!(acgs, n.div_ceil(MASTER_GROUP_CAPACITY), "recovery lost or invented ACGs");
        table::row(&[format!("{n}"), format!("{acgs}"), format!("{ms:.2}")]);
        let _ = writeln!(json, "  \"master_recovery_{label}_placements\": {n},");
        let _ = writeln!(json, "  \"master_recovery_{label}_ms\": {ms:.3},");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Restart-to-first-correct-search: a whole durable cluster — Master
    // metadata plus every Index Node's groups — power-cycled, timed until
    // a client gets the full pre-crash answer back.
    let cluster_files = cfg.files / 20;
    let dir = std::env::temp_dir().join(format!("propeller-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = Cluster::start(ClusterConfig {
        index_nodes: 4,
        group_capacity: (cluster_files as usize / 64).max(100),
        data_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    });
    let mut client = cluster.client();
    client
        .index_files(
            (0..cluster_files).map(|i| FileRecord::new(FileId::new(i), attrs(i))).collect(),
        )
        .unwrap();
    let expect = client.search_text(MATCHING).unwrap().len();
    drop(client);
    let rounds = 3;
    let mut total_ms = 0.0;
    for _ in 0..rounds {
        let start = Instant::now();
        cluster = cluster.restart();
        let client = cluster.client();
        assert_eq!(
            client.search_text(MATCHING).unwrap().len(),
            expect,
            "the first post-restart search must already be correct"
        );
        total_ms += start.elapsed().as_secs_f64() * 1e3;
    }
    let restart_ms = total_ms / rounds as f64;
    table::header(&["cluster files", "restarts", "avg restart-to-first-search ms"]);
    table::row(&[format!("{cluster_files}"), format!("{rounds}"), format!("{restart_ms:.2}")]);
    let _ = writeln!(json, "  \"master_recovery_cluster_files\": {cluster_files},");
    let _ = writeln!(json, "  \"master_recovery_restart_to_first_search_ms\": {restart_ms:.3},");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nthe Master recovers its placements, spec catalogue and routing generation from\n\
         the newest checkpoint plus an O(delta) WAL suffix; a restarted cluster serves\n\
         the full pre-crash answer on the first search, before any maintenance runs"
    );
}

/// Experiment 7: ranked content search. One ACG carrying a Zipf-skewed
/// keyword corpus serves BM25-ranked `contains` / `contains-any` top-k
/// through the inverted-index postings merge (WAND max-score pruning)
/// and through the brute-force scoring scan, which tokenizes and scores
/// every record per query. The two must rank bit-identically — the
/// streaming scorer replicates the oracle's summation order exactly.
fn ranked_content_search(json: &mut String, cfg: &Cfg) {
    table::banner("Ranked content top-k: postings + WAND pruning vs brute-force BM25 scan");
    let vocab = ZipfTerms::new(10_000, 1.1);
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut group = AcgIndexGroup::new(AcgId::new(1), GroupConfig::default());
    for i in 0..cfg.files {
        // Lengths sweep 8..64 words so BM25's length normalisation spreads
        // the scores the WAND bounds prune against.
        let len = 8 + (i % 57) as usize;
        group
            .enqueue(
                IndexOp::Upsert(
                    FileRecord::new(FileId::new(i), attrs(i))
                        .with_content(vocab.document(&mut rng, len)),
                ),
                Timestamp::EPOCH,
            )
            .unwrap();
    }
    group.commit(Timestamp::EPOCH).unwrap();

    // One head term (in most files, tf varies) and one deep-tail term
    // (rare, high idf). Conjunctively the rare postings list leads the
    // merge, so the candidate count collapses to ~its df; disjunctively
    // the rare hits set a θ the head term's max-score bound cannot reach,
    // and the WAND pivot skips the entire low-score tail block by block.
    let common = ZipfTerms::term(3);
    let rare = ZipfTerms::term(500);
    table::header(&["query", "k", "brute", "postings", "speedup", "scanned", "pruned", "blk skip"]);
    for (label, text) in [
        ("all", format!("contains:\"{common} {rare}\"")),
        ("any", format!("contains-any:\"{common} {rare}\"")),
    ] {
        for k in [10usize, 100] {
            let req = SearchRequest::parse(&text, Timestamp::EPOCH)
                .unwrap()
                .with_limit(k)
                .sorted_by(SortKey::Relevance);
            let ((ref_hits, _), ref_ms) = timed(|| execute_request_reference(&group, &req));
            let ((hits, stats), ms) = timed(|| execute_request(&group, &req));
            assert_eq!(hits, ref_hits, "postings + WAND must match the brute oracle exactly");
            assert!(!hits.is_empty() && hits.len() <= k, "got {} hits for k {k}", hits.len());
            // The SearchStats pruning witness. At k=100 the smoke corpus
            // holds fewer rare-term docs than k, so θ never clears the
            // head term's bound — witnessed there in full mode only.
            if label == "any" && (k == 10 || !cfg.smoke) {
                assert!(stats.wand_docs_pruned > 0, "WAND doc pruning witnessed: {stats:?}");
                assert!(stats.wand_blocks_skipped > 0, "WAND block skips witnessed: {stats:?}");
            }
            let speedup = ref_ms / ms;
            if !cfg.smoke {
                assert!(
                    (stats.candidates_scanned as u64) < cfg.files / 2,
                    "postings merge must evaluate a fraction of the corpus, scanned {}",
                    stats.candidates_scanned
                );
                assert!(
                    speedup >= 10.0,
                    "acceptance: ranked contains top-{k} ({label}) must be >=10x over the \
                     brute scoring scan, got {speedup:.2}x"
                );
            }
            table::row(&[
                label.into(),
                format!("{k}"),
                format!("{ref_ms:.2} ms"),
                format!("{ms:.3} ms"),
                table::ratio(speedup),
                format!("{}", stats.candidates_scanned),
                format!("{}", stats.wand_docs_pruned),
                format!("{}", stats.wand_blocks_skipped),
            ]);
            let _ = writeln!(json, "  \"content_top{k}_{label}_brute_ms\": {ref_ms:.3},");
            let _ = writeln!(json, "  \"content_top{k}_{label}_postings_ms\": {ms:.3},");
            let _ = writeln!(json, "  \"content_top{k}_{label}_speedup\": {speedup:.2},");
            let _ = writeln!(
                json,
                "  \"content_top{k}_{label}_scanned\": {},",
                stats.candidates_scanned
            );
            let _ = writeln!(
                json,
                "  \"content_top{k}_{label}_wand_docs_pruned\": {},",
                stats.wand_docs_pruned
            );
            let _ = writeln!(
                json,
                "  \"content_top{k}_{label}_wand_blocks_skipped\": {},",
                stats.wand_blocks_skipped
            );
        }
    }
    println!(
        "\nthe brute scan tokenizes and scores every record per query; the postings merge\n\
         walks the rare list and WAND's max-score bounds skip the provably outranked tail"
    );
}

/// Experiment 9: ingest interference — the epoch-pinned read path's
/// headline number. One durable Index Node behind its deferred actor loop
/// serves sorted top-k searches twice: with the node **idle**, and with a
/// second thread hammering `IndexBatch` commits at max rate (snapshot
/// thresholds firing along the way). Searches execute on the worker pool
/// against pinned epochs while the actor keeps committing, so the
/// acceptance bar is the saturated p99 staying within 2x the idle p99 —
/// and the stats witness the mechanism: every search pinned its epochs,
/// commits landed *during* searches, and snapshots went through the
/// background writer without stalling anything.
fn ingest_interference(json: &mut String, cfg: &Cfg) {
    table::banner("Ingest interference: search latency, idle node vs max-rate IndexBatch commits");
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::mpsc::{channel, Sender};
    use std::sync::Arc;
    const K: usize = 100;
    let files: u64 = if cfg.smoke { 8_000 } else { 50_000 };
    let acgs: u64 = 16;
    let iters = if cfg.smoke { 200 } else { 400 };

    // An in-memory node, like the other single-node experiments: the
    // latency comparison isolates the epoch mechanics from disk fsync
    // noise (the durable snapshot-offload witness runs as a coda below).
    let mut node = IndexNode::new(NodeId::new(1), IndexNodeConfig::default());
    let per_acg = files / acgs;
    for acg in 0..acgs {
        node.handle(Request::IndexBatch {
            acg: AcgId::new(acg + 1),
            ops: (0..per_acg)
                .map(|i| {
                    let id = acg * per_acg + i;
                    IndexOp::Upsert(FileRecord::new(FileId::new(id), attrs(id)))
                })
                .collect(),
            now: Timestamp::EPOCH,
            ctx: propeller_obs::TraceContext::NONE,
        });
    }

    // The cluster's deferred actor loop in miniature: batches commit on
    // the actor thread, searches reply from pool jobs.
    type Envelope = (Request, Sender<Response>);
    let (tx, rx) = channel::<Envelope>();
    let actor = std::thread::spawn(move || {
        while let Ok((req, reply)) = rx.recv() {
            if matches!(req, Request::Shutdown) {
                let _ = reply.send(Response::Ok);
                break;
            }
            node.handle_deferred(req, move |resp| {
                let _ = reply.send(resp);
            });
        }
    });
    let call = |req: Request| -> Response {
        let (rtx, rrx) = channel();
        tx.send((req, rtx)).expect("actor alive");
        rrx.recv().expect("reply delivered")
    };

    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .with_limit(K)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let percentile = |sorted: &[f64], p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    let all_acgs: Vec<AcgId> = (1..=acgs).map(AcgId::new).collect();
    let measure = |label: &str| -> (f64, f64, usize) {
        let mut samples = Vec::with_capacity(iters);
        let mut commits_seen = 0usize;
        for i in 0..iters {
            let start = Instant::now();
            match call(Request::Search {
                acgs: all_acgs.clone(),
                request: request.clone(),
                now: Timestamp::from_secs(1_000 + i as u64),
                ctx: propeller_obs::TraceContext::NONE,
            }) {
                Response::SearchHits { hits, stats } => {
                    samples.push(start.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(hits.len(), K, "{label}: top-k must stay complete");
                    assert_eq!(
                        stats.epoch_pins, acgs as usize,
                        "{label}: every searched group must be a pinned epoch"
                    );
                    commits_seen += stats.commits_during_search;
                }
                other => panic!("{label}: {other:?}"),
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (percentile(&samples, 0.50), percentile(&samples, 0.99), commits_seen)
    };

    let (idle_p50, idle_p99, _) = measure("idle");

    // Max-rate ingest: a writer thread round-robins update batches through
    // the actor as fast as it acknowledges them, until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0u64;
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let acg = round % acgs;
                let ops: Vec<IndexOp> = (0..16)
                    .map(|i| {
                        let id = acg * per_acg + (round + i) % per_acg;
                        IndexOp::Upsert(FileRecord::new(FileId::new(id), attrs(id + round)))
                    })
                    .collect();
                let now = Timestamp::from_secs(10_000 + round * 10);
                let (rtx, rrx) = channel();
                if tx
                    .send((
                        Request::IndexBatch {
                            acg: AcgId::new(acg + 1),
                            ops,
                            now,
                            ctx: propeller_obs::TraceContext::NONE,
                        },
                        rtx,
                    ))
                    .is_err()
                {
                    break;
                }
                let _ = rrx.recv();
                // Drive the 5 s lazy-commit timeout: the batch's group
                // commits — publishing a fresh epoch — while any in-flight
                // search keeps reading its pins.
                let (ttx, trx) = channel();
                if tx
                    .send((
                        Request::Tick { now: Timestamp::from_secs(10_000 + round * 10 + 6) },
                        ttx,
                    ))
                    .is_err()
                {
                    break;
                }
                let _ = trx.recv();
                round += 1;
                batches += 1;
            }
            batches
        })
    };
    let (busy_p50, busy_p99, commits_during) = measure("saturated");
    stop.store(true, Ordering::Relaxed);
    let batches_committed = writer.join().expect("writer");

    let commits_published = match call(Request::NodeStats) {
        Response::NodeStatsReport { commits_published, .. } => commits_published,
        other => panic!("{other:?}"),
    };
    call(Request::Shutdown);
    actor.join().expect("actor");

    // Coda: the same ingest pressure on a *durable* node must push its
    // snapshot work through the background writer, never the actor.
    let dir = std::env::temp_dir().join(format!("propeller-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut durable = IndexNode::open(
        NodeId::new(1),
        IndexNodeConfig {
            data_dir: Some(dir.clone()),
            snapshot_wal_ops: 512,
            ..IndexNodeConfig::default()
        },
    )
    .expect("open durable node");
    durable.handle(Request::IndexBatch {
        acg: AcgId::new(1),
        ops: (0..1_024)
            .map(|i| IndexOp::Upsert(FileRecord::new(FileId::new(i), attrs(i))))
            .collect(),
        now: Timestamp::EPOCH,
        ctx: propeller_obs::TraceContext::NONE,
    });
    let snapshots_offloaded = match durable.handle(Request::NodeStats) {
        Response::NodeStatsReport { snapshots_offloaded, .. } => snapshots_offloaded,
        other => panic!("{other:?}"),
    };
    durable.flush_snapshots();
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);

    table::header(&["phase", "p50 ms", "p99 ms", "commits during searches"]);
    table::row(&["idle".into(), format!("{idle_p50:.3}"), format!("{idle_p99:.3}"), "-".into()]);
    table::row(&[
        "max-rate ingest".into(),
        format!("{busy_p50:.3}"),
        format!("{busy_p99:.3}"),
        format!("{commits_during}"),
    ]);
    let _ = writeln!(json, "  \"ingest_idle_p50_ms\": {idle_p50:.3},");
    let _ = writeln!(json, "  \"ingest_idle_p99_ms\": {idle_p99:.3},");
    let _ = writeln!(json, "  \"ingest_busy_p50_ms\": {busy_p50:.3},");
    let _ = writeln!(json, "  \"ingest_busy_p99_ms\": {busy_p99:.3},");
    let _ = writeln!(json, "  \"ingest_batches_committed\": {batches_committed},");
    let _ = writeln!(json, "  \"ingest_commits_during_search\": {commits_during},");
    let _ = writeln!(json, "  \"ingest_snapshots_offloaded\": {snapshots_offloaded},");

    // The mechanism witnesses hold in smoke as much as in the full run:
    // ingest really ran, commits really landed while searches executed on
    // their pins, and snapshot writes really rode the background writer.
    assert!(batches_committed > 0, "the ingest hammer must have committed");
    assert!(commits_published > 0, "commits must have been published");
    assert!(
        commits_during > 0,
        "at least one commit must land during a pinned search — that overlap is the point"
    );
    assert!(
        snapshots_offloaded >= 1,
        "max-rate ingest must cross the snapshot threshold and offload the write"
    );
    // The acceptance bar. Both modes add an absolute floor on top of the
    // 2x ratio: with sub-ms idle p99s, a single scheduler preemption (the
    // writer thread timeslicing in on a small host) lands ~0.1 ms in the
    // tail and would fail the ratio on noise alone. The regression this
    // bound exists to catch — searches queueing behind commits on the
    // actor — shows up at whole-commit scale (milliseconds), far beyond
    // either floor.
    let bound = if cfg.smoke { idle_p99 * 2.0 + 10.0 } else { idle_p99 * 2.0 + 0.25 };
    assert!(
        busy_p99 <= bound,
        "saturated p99 ({busy_p99:.3} ms) must stay within 2x idle p99 ({idle_p99:.3} ms)"
    );
    println!(
        "\nsearches pin their epochs and execute on the pool while the actor keeps\n\
         committing: saturated-ingest p99 {busy_p99:.3} ms vs idle {idle_p99:.3} ms"
    );
}

/// One Index Node hosting `files` records evenly over `acgs` ACGs.
fn build_node(files: u64, acgs: u64, parallelism: usize) -> IndexNode {
    let mut node = IndexNode::new(
        NodeId::new(1),
        IndexNodeConfig { search_parallelism: parallelism, ..IndexNodeConfig::default() },
    );
    let per_acg = files / acgs;
    for acg in 0..acgs {
        node.handle(Request::IndexBatch {
            acg: AcgId::new(acg + 1),
            ops: (0..per_acg)
                .map(|i| {
                    let id = acg * per_acg + i;
                    IndexOp::Upsert(FileRecord::new(FileId::new(id), attrs(id)))
                })
                .collect(),
            now: Timestamp::EPOCH,
            ctx: propeller_obs::TraceContext::NONE,
        });
    }
    node
}

/// Deterministic attribute synthesis for the benchmark namespace.
fn attrs(i: u64) -> InodeAttrs {
    InodeAttrs::builder()
        .size((i % 4096) << 20)
        .mtime(Timestamp::from_secs(i % 100_000))
        .uid((i % 16) as u32)
        .build()
}

/// Experiment 8: replicated tail latency — a straggler Index Node (every
/// RPC to it stalls) vs R=1, R=2 unhedged, and R=2 with hedged opens.
/// R=2 alone does nothing for the tail: the client still opens on the
/// (slow) primary. The hedged client fires a tied open at the follower
/// when the primary misses the latency budget, and the first answer wins
/// — so the tail collapses to roughly the budget plus a healthy open.
fn replicated_tail_latency(json: &mut String, cfg: &Cfg) {
    table::banner("Replicated tail latency: straggler node, R=1 vs R=2 vs R=2 + hedged opens");
    use propeller_sim::Latency;
    use propeller_types::Duration;
    const K: usize = 100;
    let files: u64 = if cfg.smoke { 4_000 } else { 50_000 };
    let iters = if cfg.smoke { 30 } else { 150 };
    // The stall must dominate ambient scheduler noise (tens of ms in CI
    // containers) or the p99 comparison measures the machine, not the design.
    let stall_ms: u64 = if cfg.smoke { 20 } else { 30 };
    let budget_ms: u64 = 2;
    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .with_limit(K)
        .sorted_by(SortKey::Descending(AttrName::Size));

    let percentile = |sorted: &[f64], p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };

    table::header(&["nodes", "config", "p50 ms", "p99 ms", "p999 ms", "hedges fired/won"]);
    let node_counts: &[usize] = if cfg.smoke { &[4] } else { &[8, 16, 32] };
    for &nodes in node_counts {
        let mut p99_by_label: Vec<(&str, f64)> = Vec::new();
        for (label, replication, hedged) in
            [("r1", 1usize, false), ("r2", 2, false), ("r2_hedged", 2, true)]
        {
            let cluster = Cluster::start(ClusterConfig {
                index_nodes: nodes,
                group_capacity: (files as usize / nodes / 2).max(K),
                replication,
                hedge_budget: if hedged { Some(Duration::from_millis(budget_ms)) } else { None },
                ..ClusterConfig::default()
            });
            let mut client = cluster.client();
            client
                .index_files(
                    (0..files)
                        .map(|i| {
                            FileRecord::new(
                                FileId::new(i),
                                InodeAttrs::builder().size((files - i) << 20).build(),
                            )
                        })
                        .collect(),
                )
                .unwrap();
            // The straggler is the primary of the hot ACG (the lowest id:
            // sizes fall with file id, so it holds the global top-k) — the
            // worst node to slow down for this search.
            let placed = match cluster.rpc().call(cluster.master_id(), Request::LocateAcgs) {
                Ok(Response::Located(rows)) => rows,
                other => panic!("{other:?}"),
            };
            let hot = placed.iter().min_by_key(|(acg, _)| *acg).expect("placements");
            let straggler = hot.1[0];
            cluster
                .rpc()
                .slowdowns()
                .set(straggler, Latency::constant(Duration::from_millis(stall_ms)));

            let mut samples = Vec::with_capacity(iters);
            let mut fired = 0usize;
            let mut won = 0usize;
            let mut resp = None;
            for _ in 0..iters {
                let start = Instant::now();
                let r = client.search_streamed(&request).unwrap();
                samples.push(start.elapsed().as_secs_f64() * 1e3);
                assert_eq!(r.hits.len(), K);
                fired += r.stats.hedges_fired;
                won += r.stats.hedges_won;
                resp = Some(r);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (p50, p99, p999) = (
                percentile(&samples, 0.50),
                percentile(&samples, 0.99),
                percentile(&samples, 0.999),
            );
            table::row(&[
                format!("{nodes}"),
                label.to_string(),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
                format!("{p999:.3}"),
                format!("{fired}/{won}"),
            ]);
            let _ = writeln!(json, "  \"tail_{nodes}node_{label}_p50_ms\": {p50:.3},");
            let _ = writeln!(json, "  \"tail_{nodes}node_{label}_p99_ms\": {p99:.3},");
            let _ = writeln!(json, "  \"tail_{nodes}node_{label}_p999_ms\": {p999:.3},");
            if hedged {
                let _ = writeln!(json, "  \"tail_{nodes}node_hedges_fired\": {fired},");
                let _ = writeln!(json, "  \"tail_{nodes}node_hedges_won\": {won},");
                // The hedging path must actually run — opens at the
                // straggler miss the budget and the follower's tied open
                // wins — in smoke as much as in the full run.
                assert!(fired > 0, "straggler opens must miss the hedge budget");
                assert!(won > 0, "the follower's tied open must win at least once");
                // Failover coverage: kill the straggler outright; the
                // stream opens on the surviving replica of every group and
                // the answer stays complete and identical.
                let before = resp.expect("ran");
                cluster.rpc().deregister(straggler);
                let after = client.search_streamed(&request).unwrap();
                assert!(after.complete, "R=2 survives losing one replica of the hot ACG");
                assert_eq!(after.hits, before.hits, "failover answer must be identical");
            }
            p99_by_label.push((label, p99));
            cluster.shutdown();
        }
        if !cfg.smoke {
            let p99_of = |want: &str| {
                p99_by_label.iter().find(|(l, _)| *l == want).expect("all configs ran").1
            };
            // The acceptance bar: hedged R=2 beats unhedged R=1 at the tail.
            assert!(
                p99_of("r2_hedged") < p99_of("r1"),
                "hedged R=2 p99 ({:.3} ms) must beat unhedged R=1 p99 ({:.3} ms)",
                p99_of("r2_hedged"),
                p99_of("r1")
            );
        }
    }
    println!(
        "\nR=2 alone leaves the tail at the straggler's stall (opens still go to the primary);\n\
         hedged opens cap it near the budget: the follower's tied request wins the race"
    );
}

/// Experiment 11: what does cluster-wide observability cost on the hot
/// path? The same one-shot search runs with node metrics disabled, with
/// the metrics registry recording, and with metrics plus 1%-sampled
/// propagated traces. Counters and histograms are lock-free atomics and
/// unsampled requests carry an inert `TraceContext`, so the p50 must not
/// move: within 3% of the disabled baseline in the full run, within 10%
/// in CI smoke (where this gate runs on every push, on noisier machines).
fn observability_overhead(json: &mut String, cfg: &Cfg) {
    table::banner("Observability overhead: metrics registry + 1% trace sampling vs disabled");
    const K: usize = 100;
    let files: u64 = if cfg.smoke { 8_000 } else { 50_000 };
    let nodes: usize = if cfg.smoke { 2 } else { 4 };
    let iters = if cfg.smoke { 400 } else { 800 };
    let warmup = iters / 10;
    let request = SearchRequest::parse(MATCHING, Timestamp::EPOCH)
        .unwrap()
        .with_limit(K)
        .sorted_by(SortKey::Descending(AttrName::Size));
    let percentile = |sorted: &[f64], p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };

    table::header(&["config", "p50 ms", "p99 ms", "traces sampled"]);
    let mut p50_by_label: Vec<(&str, f64)> = Vec::new();
    for (label, obs_enabled, trace_every) in
        [("disabled", false, 0u64), ("metrics", true, 0), ("metrics_traced", true, 100)]
    {
        let cluster = Cluster::start(ClusterConfig {
            index_nodes: nodes,
            group_capacity: (files as usize / nodes / 2).max(K),
            obs_enabled,
            trace_sample_every: trace_every,
            ..ClusterConfig::default()
        });
        let mut client = cluster.client();
        client
            .index_files(
                (0..files)
                    .map(|i| {
                        FileRecord::new(
                            FileId::new(i),
                            InodeAttrs::builder().size((files - i) << 20).build(),
                        )
                    })
                    .collect(),
            )
            .unwrap();

        let mut samples = Vec::with_capacity(iters);
        for it in 0..warmup + iters {
            let start = Instant::now();
            let r = client.search_one_shot(&request).unwrap();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(r.hits.len(), K);
            if it >= warmup {
                samples.push(elapsed);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));

        let mut traces_sampled = 0u64;
        if trace_every > 0 {
            // Sampled traces must actually assemble: the last sampled
            // request's spans come back from every lane as one tree.
            let trace = client.last_trace_id().expect("1% of requests are sampled");
            let tree = client.dump_trace(trace).expect("sampled trace assembles");
            tree.check_well_formed().expect("assembled trace is well-formed");
            traces_sampled =
                (iters as u64 + warmup as u64).checked_div(trace_every).map_or(0, |n| n + 1);
            let report = cluster.metrics_report();
            assert!(report.contains("searches_served"), "merged report carries node counters");
        }

        table::row(&[
            label.to_string(),
            format!("{p50:.4}"),
            format!("{p99:.4}"),
            format!("{traces_sampled}"),
        ]);
        let _ = writeln!(json, "  \"obs_{label}_p50_ms\": {p50:.4},");
        let _ = writeln!(json, "  \"obs_{label}_p99_ms\": {p99:.4},");
        p50_by_label.push((label, p50));
        cluster.shutdown();
    }

    let p50_of =
        |want: &str| p50_by_label.iter().find(|(l, _)| *l == want).expect("all configs ran").1;
    let overhead_pct = (p50_of("metrics_traced") / p50_of("disabled") - 1.0) * 100.0;
    let _ = writeln!(json, "  \"obs_traced_overhead_pct\": {overhead_pct:.2},");
    // The gate: recording must be effectively free. Smoke runs on shared
    // CI machines, so the bound is looser there; the epsilon absorbs
    // timer quantization on sub-millisecond medians.
    let (bound, eps_ms) = if cfg.smoke { (1.10, 0.05) } else { (1.03, 0.02) };
    assert!(
        p50_of("metrics_traced") <= p50_of("disabled") * bound + eps_ms,
        "observability overhead too high: traced p50 {:.4} ms vs disabled p50 {:.4} ms ({:+.2}%)",
        p50_of("metrics_traced"),
        p50_of("disabled"),
        overhead_pct
    );
    println!(
        "\natomic counters + log-linear histogram buckets + inert unsampled TraceContexts:\n\
         the hot path pays a few relaxed atomics, so enabling observability is ~free \
         ({overhead_pct:+.2}% p50)"
    );
}
