//! Runs every experiment binary in sequence (quick variants where they
//! exist). Build first: `cargo build --release -p propeller-bench`, then
//! `cargo run --release -p propeller-bench --bin run_all`.

use std::process::Command;

const EXPERIMENTS: &[(&str, &[&str])] = &[
    ("table1_app_overlap", &[]),
    ("fig2a_partition_size", &[]),
    ("fig2b_inter_partition", &[]),
    ("fig7_thrift_acg", &[]),
    ("table2_partitioning", &["--quick"]),
    ("fig1_spotlight_recall", &[]),
    ("fig8_indexing_scale", &[]),
    ("table3_global_search", &[]),
    ("table4_cluster_scaling", &[]),
    ("fig10_mixed_workload", &[]),
    ("table5_spotlight_static", &["--quick"]),
    ("fig11_dynamic_namespace", &["--quick"]),
    ("table6_postmark", &[]),
    ("ablation_partitioning", &[]),
    ("ablation_cache", &[]),
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for (name, args) in EXPERIMENTS {
        let path = bin_dir.join(name);
        if !path.exists() {
            eprintln!("[skip] {name}: binary not built ({})", path.display());
            failures.push(*name);
            continue;
        }
        let status = Command::new(&path).args(*args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("[fail] {name}: {other:?}");
                failures.push(*name);
            }
        }
    }
    println!();
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("{} experiment(s) failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
