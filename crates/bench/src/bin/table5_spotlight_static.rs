//! Table V: static-namespace comparison of Propeller, a Spotlight-like
//! crawler and brute force on Dataset 1 (138 k files) and Dataset 2
//! (487 k files) for the query "find files larger than 16 MB".
//!
//! Propeller and brute force run for real (wall-clock); the crawler's
//! recall ceiling is configured per dataset to the paper's measured plugin
//! coverage (60.6% / 13.86%). Pass `--quick` for 1/10-scale datasets.

use std::sync::Arc;
use std::time::Instant;

use propeller_baselines::{recall, BruteForce, SpotlightConfig, SpotlightEngine};
use propeller_bench::table;
use propeller_core::{FileRecord, Propeller, PropellerConfig};
use propeller_query::SearchRequest;
use propeller_storage::SharedStorage;
use propeller_types::{Duration, Timestamp};
use propeller_workloads::NamespaceSpec;

struct Row {
    system: &'static str,
    cold_s: f64,
    warm_s: f64,
    recall_pct: f64,
}

fn run_dataset(name: &str, files: usize, supported_fraction: f64, seed: u64) -> Vec<Row> {
    let rows = NamespaceSpec::with_files(files).generate(seed);
    let storage = Arc::new(SharedStorage::new());
    storage.import(rows.clone());
    let request = SearchRequest::parse("size>16m", Timestamp::EPOCH).unwrap();

    // Ground truth via brute force (also the baseline row).
    let brute = BruteForce::new(storage.clone());
    let start = Instant::now();
    let truth = brute.search_with(&request).file_ids();
    let brute_cold = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..5 {
        let _ = brute.search_with(&request);
    }
    let brute_warm = start.elapsed().as_secs_f64() / 5.0;

    // Propeller: index everything inline, then 1 cold + 59 warm queries.
    let mut service = Propeller::new(PropellerConfig::default());
    service
        .index_batch(
            storage
                .snapshot()
                .into_iter()
                .map(|(id, _, attrs)| FileRecord::new(id, attrs))
                .collect(),
        )
        .unwrap();
    let start = Instant::now();
    let pp_hits = service.search_with(&request).unwrap().file_ids();
    let pp_cold = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..59 {
        let _ = service.search_with(&request).unwrap();
    }
    let pp_warm = start.elapsed().as_secs_f64() / 59.0;

    // Spotlight: crawler fully settled on a static namespace; its recall
    // ceiling comes from type-plugin coverage.
    let mut spotlight = SpotlightEngine::new(SpotlightConfig {
        supported_fraction,
        crawl_rate: 5_000.0,
        ..Default::default()
    });
    for (id, _, attrs) in storage.snapshot() {
        spotlight.notify(FileRecord::new(id, attrs), Timestamp::EPOCH);
    }
    let settled = Timestamp::EPOCH + Duration::from_secs(3_600);
    spotlight.pump(settled);
    let start = Instant::now();
    let sl_hits = spotlight.search_with(&request, settled).file_ids();
    let sl_cold = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..59 {
        let _ = spotlight.search_with(&request, settled);
    }
    let sl_warm = start.elapsed().as_secs_f64() / 59.0;

    println!("[{name}] truth = {} files > 16 MB of {files}", truth.len());
    vec![
        Row { system: "Brute-Force", cold_s: brute_cold, warm_s: brute_warm, recall_pct: 100.0 },
        Row {
            system: "Spotlight",
            cold_s: sl_cold,
            warm_s: sl_warm,
            recall_pct: recall(&sl_hits, &truth) * 100.0,
        },
        Row {
            system: "Propeller",
            cold_s: pp_cold,
            warm_s: pp_warm,
            recall_pct: recall(&pp_hits, &truth) * 100.0,
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 10 } else { 1 };
    table::banner("Table V: Propeller vs Spotlight vs brute force (size>16m)");
    for (name, files, coverage, seed) in
        [("Dataset 1", 138_000 / scale, 0.606, 51), ("Dataset 2", 487_000 / scale, 0.1386, 52)]
    {
        let rows = run_dataset(name, files, coverage, seed);
        table::header(&[name, "cold (s)", "warm (s)", "recall"]);
        for r in rows {
            table::row(&[
                r.system.to_string(),
                format!("{:.4}", r.cold_s),
                format!("{:.6}", r.warm_s),
                format!("{:.1}%", r.recall_pct),
            ]);
        }
    }
    println!(
        "\npaper shape: Propeller 100% recall with the fastest warm queries \
         (paper: 14-22x faster than Spotlight warm); Spotlight capped at \
         60.6% / 13.86% recall; brute force correct but slowest"
    );
}
